//! Dymond-like baseline (Zeno et al., WWW 2021): dynamic **motif**-based
//! generation.
//!
//! Mechanism preserved: enumerate temporal motif instances (edges, wedges,
//! triangles) per snapshot, fit per-type time-independent arrival rates,
//! and generate by re-instantiating motifs at the fitted rates. Like the
//! original — which the VRDAG paper could only run on the smallest dataset
//! "due to its requirement for the storage of millions of motif structures
//! across time" — this implementation enforces a motif storage budget and
//! reports [`GeneratorError::ResourceLimit`] when exceeded.

use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct DymondConfig {
    /// Maximum number of stored motif instances across all timesteps; the
    /// fit aborts with `ResourceLimit` beyond this (Dymond's practical
    /// memory wall).
    pub motif_budget: usize,
}

impl Default for DymondConfig {
    fn default() -> Self {
        DymondConfig { motif_budget: 2_000_000 }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MotifKind {
    Edge,
    Wedge,
    Triangle,
}

#[derive(Clone, Debug)]
struct Motif {
    kind: MotifKind,
    nodes: [u32; 3],
}

impl Motif {
    fn edges(&self) -> Vec<(u32, u32)> {
        match self.kind {
            MotifKind::Edge => vec![(self.nodes[0], self.nodes[1])],
            MotifKind::Wedge => {
                vec![(self.nodes[0], self.nodes[1]), (self.nodes[1], self.nodes[2])]
            }
            MotifKind::Triangle => vec![
                (self.nodes[0], self.nodes[1]),
                (self.nodes[1], self.nodes[2]),
                (self.nodes[2], self.nodes[0]),
            ],
        }
    }
}

/// See module docs.
pub struct DymondLike {
    cfg: DymondConfig,
    state: Option<Fitted>,
}

struct Fitted {
    motifs: Vec<Motif>,
    /// Mean activations per timestep for (edge, wedge, triangle).
    rates: [f64; 3],
    n: usize,
    f: usize,
    t_train: usize,
}

impl DymondLike {
    pub fn new(cfg: DymondConfig) -> Self {
        DymondLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(DymondConfig::default())
    }
}

impl DynamicGraphGenerator for DymondLike {
    fn name(&self) -> &str {
        "Dymond"
    }

    fn supports_attributes(&self) -> bool {
        false
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        _rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let mut motifs: Vec<Motif> = Vec::new();
        let mut counts = [0f64; 3];
        for (_, s) in graph.iter() {
            // Single edges.
            for &(u, v) in s.edges() {
                motifs.push(Motif { kind: MotifKind::Edge, nodes: [u, v, 0] });
                counts[0] += 1.0;
                if motifs.len() > self.cfg.motif_budget {
                    return Err(GeneratorError::ResourceLimit(format!(
                        "motif storage exceeded {} instances",
                        self.cfg.motif_budget
                    )));
                }
            }
            // Wedges u -> v -> w and triangles u -> v -> w -> u.
            let adj = s.out_adj();
            for u in 0..s.n_nodes() as u32 {
                for &v in adj.neighbors(u as usize) {
                    for &w in adj.neighbors(v as usize) {
                        if w == u {
                            continue;
                        }
                        let kind = if s.has_edge(w, u) {
                            counts[2] += 1.0;
                            MotifKind::Triangle
                        } else {
                            counts[1] += 1.0;
                            MotifKind::Wedge
                        };
                        motifs.push(Motif { kind, nodes: [u, v, w] });
                        if motifs.len() > self.cfg.motif_budget {
                            return Err(GeneratorError::ResourceLimit(format!(
                                "motif storage exceeded {} instances",
                                self.cfg.motif_budget
                            )));
                        }
                    }
                }
            }
        }
        if motifs.is_empty() {
            return Err(GeneratorError::Other("no motifs observed".into()));
        }
        let t = graph.t_len() as f64;
        self.state = Some(Fitted {
            motifs,
            rates: [counts[0] / t, counts[1] / t, counts[2] / t],
            n: graph.n_nodes(),
            f: graph.n_attrs(),
            t_train: graph.t_len(),
        });
        Ok(FitReport { train_seconds: started.elapsed().as_secs_f64(), epochs: 1, final_loss: 0.0 })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let _ = fitted.t_train;
        // Partition stored motifs by kind for rate-faithful sampling.
        let by_kind: [Vec<&Motif>; 3] = {
            let mut e = Vec::new();
            let mut w = Vec::new();
            let mut t = Vec::new();
            for m in &fitted.motifs {
                match m.kind {
                    MotifKind::Edge => e.push(m),
                    MotifKind::Wedge => w.push(m),
                    MotifKind::Triangle => t.push(m),
                }
            }
            [e, w, t]
        };
        let mut snapshots = Vec::with_capacity(t_len);
        for _t in 0..t_len {
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for k in 0..3 {
                if by_kind[k].is_empty() {
                    continue;
                }
                // Each motif type activates `rate` instances per step.
                let target = fitted.rates[k].round() as usize;
                for _ in 0..target {
                    let m = by_kind[k][(rng.next_u64() % by_kind[k].len() as u64) as usize];
                    edges.extend(m.edges());
                }
            }
            snapshots.push(Snapshot::new(fitted.n, edges, Matrix::zeros(fitted.n, fitted.f)));
        }
        Ok(DynamicGraph::new(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 6)
    }

    #[test]
    fn fit_and_generate() {
        let g = toy();
        let mut gen = DymondLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        assert!(out.temporal_edge_count() > 0);
    }

    #[test]
    fn motif_budget_enforced() {
        let g = toy();
        let mut gen = DymondLike::new(DymondConfig { motif_budget: 10 });
        let mut rng = StdRng::seed_from_u64(2);
        match gen.fit(&g, &mut rng) {
            Err(GeneratorError::ResourceLimit(_)) => {}
            other => panic!("expected ResourceLimit, got {other:?}"),
        }
    }

    #[test]
    fn motif_edges_shapes() {
        let e = Motif { kind: MotifKind::Edge, nodes: [1, 2, 0] };
        assert_eq!(e.edges(), vec![(1, 2)]);
        let w = Motif { kind: MotifKind::Wedge, nodes: [1, 2, 3] };
        assert_eq!(w.edges().len(), 2);
        let t = Motif { kind: MotifKind::Triangle, nodes: [1, 2, 3] };
        assert_eq!(t.edges().len(), 3);
    }

    #[test]
    fn metadata() {
        let gen = DymondLike::with_defaults();
        assert_eq!(gen.name(), "Dymond");
        assert!(!gen.supports_attributes());
        assert!(gen.is_dynamic());
    }
}

//! GenCAT-like baseline (Maekawa et al., Information Systems 2023): static
//! **attributed** graph generation with controlled class / attribute /
//! topology relationships.
//!
//! Mechanism preserved: (1) latent node classes (label propagation on the
//! aggregated graph); (2) a class preference matrix `M[K][K]` of edge
//! proportions between classes; (3) per-class attribute distributions
//! (Gaussian per dimension, GenCAT's default); (4) degree-weighted edge
//! placement inside sampled class pairs. Snapshots are generated
//! independently — GenCAT models a single static graph, which is why it
//! cannot track dynamic metrics (Table I) or temporal attribute evolution
//! (Fig. 3 / Fig. 10 of the paper).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct GenCatConfig {
    /// Number of latent classes `K`.
    pub classes: usize,
    /// Label-propagation iterations for class recovery.
    pub lp_iters: usize,
}

impl Default for GenCatConfig {
    fn default() -> Self {
        GenCatConfig { classes: 8, lp_iters: 6 }
    }
}

/// See module docs.
pub struct GenCatLike {
    cfg: GenCatConfig,
    state: Option<Fitted>,
}

struct Fitted {
    class_of: Vec<usize>,
    members: Vec<Vec<u32>>,
    /// Class preference matrix: probability mass of an edge joining class
    /// pair `(i, j)`.
    pref: Vec<Vec<f64>>,
    /// Per-class, per-dimension attribute mean and std.
    attr_mean: Vec<Vec<f64>>,
    attr_std: Vec<Vec<f64>>,
    w_out: Vec<f64>,
    w_in: Vec<f64>,
    edges_per_step: f64,
    n: usize,
    f: usize,
}

impl GenCatLike {
    pub fn new(cfg: GenCatConfig) -> Self {
        GenCatLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(GenCatConfig::default())
    }

    /// Label propagation on the aggregated undirected graph, seeded by
    /// degree-ranked nodes.
    fn recover_classes(&self, graph: &DynamicGraph) -> Vec<usize> {
        let n = graph.n_nodes();
        let k = self.cfg.classes.max(1).min(n);
        // Aggregate undirected adjacency.
        let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (_, s) in graph.iter() {
            for &(u, v) in s.edges() {
                nbrs[u as usize].push(v);
                nbrs[v as usize].push(u);
            }
        }
        for l in nbrs.iter_mut() {
            l.sort_unstable();
            l.dedup();
        }
        // Seed: top-degree nodes get distinct labels; everyone else starts
        // with node_id % k.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(nbrs[i].len()));
        let mut label: Vec<usize> = (0..n).map(|i| i % k).collect();
        for (c, &i) in order.iter().take(k).enumerate() {
            label[i] = c;
        }
        let mut votes = vec![0usize; k];
        for _ in 0..self.cfg.lp_iters {
            for &i in &order {
                if nbrs[i].is_empty() {
                    continue;
                }
                votes.iter_mut().for_each(|v| *v = 0);
                for &j in &nbrs[i] {
                    votes[label[j as usize]] += 1;
                }
                let best = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(c, _)| c)
                    .unwrap_or(label[i]);
                if votes[best] > 0 {
                    label[i] = best;
                }
            }
        }
        label
    }
}

impl DynamicGraphGenerator for GenCatLike {
    fn name(&self) -> &str {
        "GenCAT"
    }

    fn supports_attributes(&self) -> bool {
        true
    }

    fn is_dynamic(&self) -> bool {
        false
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        _rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let n = graph.n_nodes();
        let f = graph.n_attrs();
        let k = self.cfg.classes.max(1).min(n);
        let class_of = self.recover_classes(graph);
        let mut members = vec![Vec::new(); k];
        for (i, &c) in class_of.iter().enumerate() {
            members[c].push(i as u32);
        }
        for list in members.iter_mut() {
            if list.is_empty() {
                list.push(0);
            }
        }
        // Class preference matrix from edge class pairs.
        let mut pref = vec![vec![1e-9f64; k]; k];
        let mut total = 0.0f64;
        for (_, s) in graph.iter() {
            for &(u, v) in s.edges() {
                pref[class_of[u as usize]][class_of[v as usize]] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for row in pref.iter_mut() {
                for p in row.iter_mut() {
                    *p /= total;
                }
            }
        }
        // Per-class attribute moments (pooled across timesteps — GenCAT
        // fits a single static attribute distribution).
        let mut attr_mean = vec![vec![0.0f64; f]; k];
        let mut attr_sq = vec![vec![0.0f64; f]; k];
        let mut counts = vec![0.0f64; k];
        for (_, s) in graph.iter() {
            for i in 0..n {
                let c = class_of[i];
                counts[c] += 1.0;
                for d in 0..f {
                    let x = s.attrs().get(i, d) as f64;
                    attr_mean[c][d] += x;
                    attr_sq[c][d] += x * x;
                }
            }
        }
        let mut attr_std = vec![vec![0.0f64; f]; k];
        for c in 0..k {
            if counts[c] > 0.0 {
                for d in 0..f {
                    attr_mean[c][d] /= counts[c];
                    let var =
                        (attr_sq[c][d] / counts[c] - attr_mean[c][d] * attr_mean[c][d]).max(1e-9);
                    attr_std[c][d] = var.sqrt();
                }
            }
        }
        // Degree weights.
        let t = graph.t_len() as f64;
        let mut w_out = vec![0.0f64; n];
        let mut w_in = vec![0.0f64; n];
        for (_, s) in graph.iter() {
            for i in 0..n {
                w_out[i] += s.out_degree(i) as f64 / t;
                w_in[i] += s.in_degree(i) as f64 / t;
            }
        }
        self.state = Some(Fitted {
            class_of,
            members,
            pref,
            attr_mean,
            attr_std,
            w_out,
            w_in,
            edges_per_step: graph.mean_edges_per_snapshot(),
            n,
            f,
        });
        Ok(FitReport { train_seconds: started.elapsed().as_secs_f64(), epochs: 1, final_loss: 0.0 })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let k = fitted.pref.len();
        // Flatten the class-pair distribution for sampling.
        let mut pair_cum = Vec::with_capacity(k * k);
        let mut acc = 0.0;
        for i in 0..k {
            for j in 0..k {
                acc += fitted.pref[i][j];
                pair_cum.push(acc);
            }
        }
        let mut snapshots = Vec::with_capacity(t_len);
        for _t in 0..t_len {
            // Structure: degree-weighted placement inside sampled class
            // pairs, independent per snapshot.
            let m_target = fitted.edges_per_step.round() as usize;
            let mut edges = std::collections::HashSet::with_capacity(m_target * 2);
            let mut attempts = 0usize;
            while edges.len() < m_target && attempts < m_target * 30 + 100 {
                attempts += 1;
                let x = rand_f64(rng) * acc;
                let idx = pair_cum
                    .binary_search_by(|c| c.partial_cmp(&x).unwrap())
                    .unwrap_or_else(|e| e)
                    .min(k * k - 1);
                let (ci, cj) = (idx / k, idx % k);
                let u = weighted_pick(&fitted.members[ci], &fitted.w_out, rng);
                let v = weighted_pick(&fitted.members[cj], &fitted.w_in, rng);
                if u != v {
                    edges.insert((u, v));
                }
            }
            // Attributes: iid per snapshot from the class Gaussians.
            let mut attrs = Matrix::zeros(fitted.n, fitted.f);
            for i in 0..fitted.n {
                let c = fitted.class_of[i];
                for d in 0..fitted.f {
                    let z = gauss(rng);
                    attrs.set(i, d, (fitted.attr_mean[c][d] + fitted.attr_std[c][d] * z) as f32);
                }
            }
            snapshots.push(Snapshot::new(fitted.n, edges.into_iter().collect(), attrs));
        }
        Ok(DynamicGraph::new(snapshots))
    }
}

fn rand_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

fn gauss(rng: &mut dyn RngCore) -> f64 {
    let u1 = rand_f64(rng).max(1e-12);
    let u2 = rand_f64(rng);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn weighted_pick(members: &[u32], weights: &[f64], rng: &mut dyn RngCore) -> u32 {
    let total: f64 = members.iter().map(|&i| weights[i as usize] + 1e-6).sum();
    let mut x = rand_f64(rng) * total;
    for &i in members {
        let w = weights[i as usize] + 1e-6;
        if x < w {
            return i;
        }
        x -= w;
    }
    *members.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 9)
    }

    #[test]
    fn fit_and_generate_with_attributes() {
        let g = toy();
        let mut gen = GenCatLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        assert_eq!(out.n_attrs(), g.n_attrs());
        assert!(out.temporal_edge_count() > 0);
        // Attributes are non-trivial.
        let spread: f32 = out.snapshot(0).attrs().data().iter().map(|x| x.abs()).sum();
        assert!(spread > 0.0);
    }

    #[test]
    fn attribute_moments_roughly_preserved() {
        let g = toy();
        let mut gen = GenCatLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(4, &mut rng).unwrap();
        let mean_of = |g: &DynamicGraph| {
            let mut acc = 0.0f64;
            let mut cnt = 0.0f64;
            for (_, s) in g.iter() {
                for &x in s.attrs().data() {
                    acc += x as f64;
                    cnt += 1.0;
                }
            }
            acc / cnt
        };
        let mo = mean_of(&g);
        let mg = mean_of(&out);
        assert!((mo - mg).abs() < 0.5, "means {mo} vs {mg}");
    }

    #[test]
    fn class_count_respected() {
        let g = toy();
        let gen = GenCatLike::new(GenCatConfig { classes: 3, lp_iters: 4 });
        let labels = gen.recover_classes(&g);
        assert!(labels.iter().all(|&c| c < 3));
    }

    #[test]
    fn metadata() {
        let gen = GenCatLike::with_defaults();
        assert_eq!(gen.name(), "GenCAT");
        assert!(gen.supports_attributes());
        assert!(!gen.is_dynamic());
    }
}

//! GRAN-like baseline (Liao et al., NeurIPS 2019): **static** block-wise
//! autoregressive graph generation.
//!
//! Mechanism preserved at low capacity: nodes are processed in degree
//! order in blocks; each new block connects to already-generated nodes
//! with mixture-of-Bernoulli probabilities conditioned on the partial
//! graph (here: fitted block-pair densities × Chung–Lu degree weights).
//! Snapshots are generated independently — GRAN has no temporal model,
//! which is exactly why it underperforms on dynamic metrics in Table I.

use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct GranConfig {
    /// Number of degree-ordered blocks.
    pub blocks: usize,
}

impl Default for GranConfig {
    fn default() -> Self {
        GranConfig { blocks: 8 }
    }
}

/// See module docs.
pub struct GranLike {
    cfg: GranConfig,
    state: Option<Fitted>,
}

struct Fitted {
    /// Node order (degree-descending) fixed at fit time.
    order: Vec<u32>,
    /// Block id per ordered position.
    block_of_pos: Vec<usize>,
    /// Mean directed edge density between ordered blocks, `[b][b']` for an
    /// edge from a node in block `b` to a node in block `b'`.
    block_density: Vec<Vec<f64>>,
    /// Chung–Lu out/in weights (mean degrees across snapshots).
    w_out: Vec<f64>,
    w_in: Vec<f64>,
    n: usize,
    f: usize,
}

impl GranLike {
    pub fn new(cfg: GranConfig) -> Self {
        GranLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(GranConfig::default())
    }
}

impl DynamicGraphGenerator for GranLike {
    fn name(&self) -> &str {
        "GRAN"
    }

    fn supports_attributes(&self) -> bool {
        false
    }

    fn is_dynamic(&self) -> bool {
        false
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        _rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let n = graph.n_nodes();
        let t = graph.t_len() as f64;
        let mut w_out = vec![0.0f64; n];
        let mut w_in = vec![0.0f64; n];
        for (_, s) in graph.iter() {
            for i in 0..n {
                w_out[i] += s.out_degree(i) as f64 / t;
                w_in[i] += s.in_degree(i) as f64 / t;
            }
        }
        // Degree-descending node order, split into equal blocks.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let da = w_out[a as usize] + w_in[a as usize];
            let db = w_out[b as usize] + w_in[b as usize];
            db.partial_cmp(&da).unwrap()
        });
        let b = self.cfg.blocks.max(1).min(n);
        let block_size = n.div_ceil(b);
        let block_of_pos: Vec<usize> = (0..n).map(|p| (p / block_size).min(b - 1)).collect();
        let mut pos_of_node = vec![0usize; n];
        for (p, &node) in order.iter().enumerate() {
            pos_of_node[node as usize] = p;
        }
        // Mean block-pair densities across snapshots.
        let mut counts = vec![vec![0.0f64; b]; b];
        let mut sizes = vec![0.0f64; b];
        for p in 0..n {
            sizes[block_of_pos[p]] += 1.0;
        }
        for (_, s) in graph.iter() {
            for &(u, v) in s.edges() {
                let bu = block_of_pos[pos_of_node[u as usize]];
                let bv = block_of_pos[pos_of_node[v as usize]];
                counts[bu][bv] += 1.0 / t;
            }
        }
        let block_density: Vec<Vec<f64>> = (0..b)
            .map(|i| {
                (0..b)
                    .map(|j| {
                        let pairs = sizes[i] * sizes[j];
                        if pairs > 0.0 {
                            counts[i][j] / pairs
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        self.state =
            Some(Fitted { order, block_of_pos, block_density, w_out, w_in, n, f: graph.n_attrs() });
        Ok(FitReport { train_seconds: started.elapsed().as_secs_f64(), epochs: 1, final_loss: 0.0 })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let n = fitted.n;
        let mean_w_out: f64 = (fitted.w_out.iter().sum::<f64>() / n as f64).max(1e-9);
        let mean_w_in: f64 = (fitted.w_in.iter().sum::<f64>() / n as f64).max(1e-9);
        let mut snapshots = Vec::with_capacity(t_len);
        for _t in 0..t_len {
            let mut edges = Vec::new();
            // Blockwise autoregressive sweep: position p connects to all
            // earlier positions (both directions considered).
            for p in 0..n {
                let u = fitted.order[p] as usize;
                let bu = fitted.block_of_pos[p];
                for q in 0..p {
                    let v = fitted.order[q] as usize;
                    let bv = fitted.block_of_pos[q];
                    // u -> v
                    let p_uv = fitted.block_density[bu][bv]
                        * (fitted.w_out[u] / mean_w_out)
                        * (fitted.w_in[v] / mean_w_in);
                    if rand_f64(rng) < p_uv.min(1.0) {
                        edges.push((u as u32, v as u32));
                    }
                    // v -> u
                    let p_vu = fitted.block_density[bv][bu]
                        * (fitted.w_out[v] / mean_w_out)
                        * (fitted.w_in[u] / mean_w_in);
                    if rand_f64(rng) < p_vu.min(1.0) {
                        edges.push((v as u32, u as u32));
                    }
                }
            }
            snapshots.push(Snapshot::new(n, edges, Matrix::zeros(n, fitted.f)));
        }
        Ok(DynamicGraph::new(snapshots))
    }
}

fn rand_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 7)
    }

    #[test]
    fn fit_and_generate() {
        let g = toy();
        let mut gen = GranLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        let m_out = out.temporal_edge_count() as f64;
        let m_in = g.temporal_edge_count() as f64;
        assert!(m_out > 0.2 * m_in && m_out < 5.0 * m_in, "edge count {m_out} vs {m_in}");
    }

    #[test]
    fn static_method_metadata() {
        let gen = GranLike::with_defaults();
        assert_eq!(gen.name(), "GRAN");
        assert!(!gen.supports_attributes());
        assert!(!gen.is_dynamic());
    }

    #[test]
    fn snapshots_are_independent_draws() {
        let g = toy();
        let mut gen = GranLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(2, &mut rng).unwrap();
        // Two independent draws of a non-trivial model almost surely differ.
        assert_ne!(out.snapshot(0).edges(), out.snapshot(1).edges());
    }
}

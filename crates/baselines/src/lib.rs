//! # vrdag-baselines
//!
//! Mechanism-level reimplementations of every baseline the VRDAG paper
//! compares against (see DESIGN.md §4 for the fidelity contract — the
//! defining algorithmic skeleton and cost structure of each original is
//! preserved at reduced neural capacity):
//!
//! | Baseline | Original | Kind | Attributes |
//! |----------|----------|------|-----------|
//! | [`TagGenLike`]  | KDD 2020      | temporal walks + discriminator + merge | no |
//! | [`TgganLike`]   | WWW 2021      | truncated time-valid walks             | no |
//! | [`TiggerLike`]  | AAAI 2022     | pretrained walk sampler + point process| no |
//! | [`DymondLike`]  | WWW 2021      | motif arrival rates (memory-bounded)   | no |
//! | [`GranLike`]    | NeurIPS 2019  | blockwise autoregressive (static)      | no |
//! | [`GenCatLike`]  | Inf. Sys. 2023| class/attribute proportions (static)   | yes |
//! | [`NormalBaseline`] | — (Fig. 3) | fitted iid normal attributes           | yes |
//!
//! All implement [`vrdag_graph::DynamicGraphGenerator`], the same trait as
//! the VRDAG model itself, so the bench harness can sweep them uniformly.

pub mod dymond;
pub mod gencat;
pub mod gran;
pub mod merge;
pub mod normal;
pub mod taggen;
pub mod tggan;
pub mod tigger;
pub mod walks;

pub use dymond::{DymondConfig, DymondLike};
pub use gencat::{GenCatConfig, GenCatLike};
pub use gran::{GranConfig, GranLike};
pub use normal::NormalBaseline;
pub use taggen::{TagGenConfig, TagGenLike};
pub use tggan::{TgganConfig, TgganLike};
pub use tigger::{TiggerConfig, TiggerLike};

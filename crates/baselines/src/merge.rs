//! Walk-to-graph assembly: the "merging" stage shared by the walk-based
//! baselines. Sampled temporal walks deposit their edges into per-timestep
//! edge sets until each snapshot reaches its target edge budget — the
//! path-merging / graph-assembly process the VRDAG paper identifies as a
//! main cost driver of these methods.

use crate::walks::TemporalWalk;
use std::collections::HashSet;

/// Accumulates walk edges into per-timestep snapshots.
pub struct WalkAssembler {
    budgets: Vec<usize>,
    sets: Vec<HashSet<(u32, u32)>>,
}

impl WalkAssembler {
    /// `budgets[t]` is the target edge count of snapshot `t`.
    pub fn new(budgets: Vec<usize>) -> Self {
        let sets = budgets.iter().map(|_| HashSet::new()).collect();
        WalkAssembler { budgets, sets }
    }

    /// Deposit all edges of a walk whose timestep still has budget.
    /// Returns the number of edges actually absorbed.
    pub fn deposit(&mut self, walk: &TemporalWalk) -> usize {
        let mut absorbed = 0;
        for (u, v, t) in walk.edges() {
            if u == v {
                continue;
            }
            let t = t as usize;
            if t < self.sets.len()
                && self.sets[t].len() < self.budgets[t]
                && self.sets[t].insert((u, v))
            {
                absorbed += 1;
            }
        }
        absorbed
    }

    /// True when every snapshot has reached its budget.
    pub fn complete(&self) -> bool {
        self.sets.iter().zip(self.budgets.iter()).all(|(s, &b)| s.len() >= b)
    }

    /// Fraction of the total budget filled so far.
    pub fn fill_ratio(&self) -> f64 {
        let filled: usize = self.sets.iter().map(|s| s.len()).sum();
        let total: usize = self.budgets.iter().sum();
        if total == 0 {
            1.0
        } else {
            filled as f64 / total as f64
        }
    }

    /// Finish assembly, producing per-timestep edge lists.
    pub fn into_edge_lists(self) -> Vec<Vec<(u32, u32)>> {
        self.sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<(u32, u32)> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

/// Repeat or truncate the observed per-timestep budgets to `t_len` steps
/// (generation beyond the training horizon reuses the tail budget).
pub fn extend_budgets(observed: &[usize], t_len: usize) -> Vec<usize> {
    assert!(!observed.is_empty(), "need at least one observed budget");
    (0..t_len).map(|t| observed[t.min(observed.len() - 1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(nodes: &[u32], times: &[u32]) -> TemporalWalk {
        TemporalWalk { nodes: nodes.to_vec(), times: times.to_vec() }
    }

    #[test]
    fn deposit_respects_budget() {
        let mut asm = WalkAssembler::new(vec![1, 2]);
        let w = walk(&[0, 1, 2, 3], &[0, 0, 1, 1]);
        let got = asm.deposit(&w);
        assert_eq!(got, 3); // (0,1)@0, (1,2)@1, (2,3)@1
        assert!(asm.complete());
        let lists = asm.into_edge_lists();
        assert_eq!(lists[0], vec![(0, 1)]);
        assert_eq!(lists[1], vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn duplicate_edges_not_double_counted() {
        let mut asm = WalkAssembler::new(vec![5]);
        let w = walk(&[0, 1], &[0, 0]);
        assert_eq!(asm.deposit(&w), 1);
        assert_eq!(asm.deposit(&w), 0);
        assert!((asm.fill_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn self_loops_skipped() {
        let mut asm = WalkAssembler::new(vec![5]);
        let w = walk(&[2, 2], &[0, 0]);
        assert_eq!(asm.deposit(&w), 0);
    }

    #[test]
    fn extend_budgets_repeats_tail() {
        assert_eq!(extend_budgets(&[3, 7], 4), vec![3, 7, 7, 7]);
        assert_eq!(extend_budgets(&[3, 7, 9], 2), vec![3, 7]);
    }

    #[test]
    fn zero_budget_is_complete() {
        let asm = WalkAssembler::new(vec![0, 0]);
        assert!(asm.complete());
        assert_eq!(asm.fill_ratio(), 1.0);
    }
}

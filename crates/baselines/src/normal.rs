//! The "Normal" attribute baseline of Fig. 3: node attributes drawn iid
//! from a normal distribution whose mean and variance are estimated from
//! the ground-truth data. Structure is carried over from the observed
//! graph (the baseline only exists to compare *attribute* synthesis).

use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// See module docs.
pub struct NormalBaseline {
    state: Option<Fitted>,
}

struct Fitted {
    structure: DynamicGraph,
    /// Per-attribute-dimension mean and std pooled over nodes and time.
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl NormalBaseline {
    pub fn new() -> Self {
        NormalBaseline { state: None }
    }
}

impl Default for NormalBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl DynamicGraphGenerator for NormalBaseline {
    fn name(&self) -> &str {
        "Normal"
    }

    fn supports_attributes(&self) -> bool {
        true
    }

    fn is_dynamic(&self) -> bool {
        false
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        _rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let f = graph.n_attrs();
        let mut mean = vec![0.0f64; f];
        let mut sq = vec![0.0f64; f];
        let mut count = 0.0f64;
        for (_, s) in graph.iter() {
            for i in 0..s.n_nodes() {
                for d in 0..f {
                    let x = s.attrs().get(i, d) as f64;
                    mean[d] += x;
                    sq[d] += x * x;
                }
            }
            count += s.n_nodes() as f64;
        }
        let std: Vec<f64> = if count > 0.0 {
            (0..f)
                .map(|d| {
                    mean[d] /= count;
                    (sq[d] / count - mean[d] * mean[d]).max(1e-12).sqrt()
                })
                .collect()
        } else {
            vec![1.0; f]
        };
        self.state = Some(Fitted { structure: graph.clone(), mean, std });
        Ok(FitReport { train_seconds: started.elapsed().as_secs_f64(), epochs: 1, final_loss: 0.0 })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let src = &fitted.structure;
        let f = src.n_attrs();
        let snapshots = (0..t_len)
            .map(|t| {
                let s = src.snapshot(t.min(src.t_len() - 1));
                let mut attrs = Matrix::zeros(s.n_nodes(), f);
                for i in 0..s.n_nodes() {
                    for d in 0..f {
                        let u1 = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                        let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        attrs.set(i, d, (fitted.mean[d] + fitted.std[d] * z) as f32);
                    }
                }
                Snapshot::new(s.n_nodes(), s.edges().to_vec(), attrs)
            })
            .collect();
        Ok(DynamicGraph::new(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_structure_replaces_attributes() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 11);
        let mut gen = NormalBaseline::new();
        let mut rng = StdRng::seed_from_u64(1);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        for t in 0..g.t_len() {
            assert_eq!(out.snapshot(t).edges(), g.snapshot(t).edges());
            assert_ne!(out.snapshot(t).attrs().data(), g.snapshot(t).attrs().data());
        }
    }

    #[test]
    fn moments_match_training_data() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 12);
        let mut gen = NormalBaseline::new();
        let mut rng = StdRng::seed_from_u64(2);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        let moments = |g: &DynamicGraph| {
            let mut acc = 0.0f64;
            let mut cnt = 0.0;
            for (_, s) in g.iter() {
                for &x in s.attrs().data() {
                    acc += x as f64;
                    cnt += 1.0;
                }
            }
            acc / cnt
        };
        assert!((moments(&g) - moments(&out)).abs() < 0.2);
    }

    #[test]
    fn metadata() {
        let gen = NormalBaseline::new();
        assert_eq!(gen.name(), "Normal");
        assert!(gen.supports_attributes());
        assert!(!gen.is_dynamic());
    }
}

//! TagGen-like baseline (Zhou et al., KDD 2020): temporal random-walk
//! sampling with a plausibility **discriminator** and iterative assembly.
//!
//! Mechanism preserved from the original: (1) extract joint
//! structural-temporal context by sampling many temporal walks; (2) a
//! discriminator filters candidate walks before they are merged (here: an
//! empirical log-likelihood threshold learned from the training walks, in
//! place of the original's neural discriminator); (3) accepted walks are
//! merged into the output graph until per-timestep edge budgets are met.
//! The heavy candidate-sampling + discrimination + merging pipeline is
//! exactly what makes TagGen orders of magnitude slower at generation than
//! VRDAG (Fig. 9, Tables III/IV).

use crate::merge::{extend_budgets, WalkAssembler};
use crate::walks::{sample_walk, TemporalWalk, TransitionTable};
use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs (defaults follow the original's cost profile).
#[derive(Clone, Debug)]
pub struct TagGenConfig {
    /// Training/candidate walks per observed temporal edge.
    pub walks_per_edge: f64,
    /// Maximum walk length `l'`.
    pub walk_len: usize,
    /// Temporal window for time-respecting steps.
    pub window: usize,
    /// Quantile of training-walk log-likelihoods used as the acceptance
    /// threshold (higher = pickier discriminator = more rejections).
    pub accept_quantile: f64,
    /// Hard cap on candidate walks per generation call.
    pub max_candidates_factor: usize,
}

impl Default for TagGenConfig {
    fn default() -> Self {
        TagGenConfig {
            walks_per_edge: 4.0,
            walk_len: 16,
            window: 2,
            accept_quantile: 0.3,
            max_candidates_factor: 40,
        }
    }
}

/// See module docs.
pub struct TagGenLike {
    cfg: TagGenConfig,
    state: Option<Fitted>,
}

struct Fitted {
    table: TransitionTable,
    starts: Vec<(u32, u32)>,
    budgets: Vec<usize>,
    threshold: f64,
    n: usize,
    f: usize,
}

impl TagGenLike {
    pub fn new(cfg: TagGenConfig) -> Self {
        TagGenLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(TagGenConfig::default())
    }

    fn sample_from_table(fitted: &Fitted, walk_len: usize, rng: &mut dyn RngCore) -> TemporalWalk {
        let (n0, t0) = fitted.starts[(rng.next_u64() % fitted.starts.len() as u64) as usize];
        let mut nodes = vec![n0];
        let mut times = vec![t0];
        let (mut cur, mut cur_t) = (n0, t0);
        for _ in 1..walk_len {
            match fitted.table.sample_smoothed(cur, cur_t, 0.15, &fitted.starts, rng) {
                Some((nxt, nt)) => {
                    nodes.push(nxt);
                    times.push(nt);
                    cur = nxt;
                    cur_t = nt;
                }
                None => break,
            }
        }
        TemporalWalk { nodes, times }
    }
}

impl DynamicGraphGenerator for TagGenLike {
    fn name(&self) -> &str {
        "TagGen"
    }

    fn supports_attributes(&self) -> bool {
        false
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let m = graph.temporal_edge_count();
        if m == 0 {
            return Err(GeneratorError::Other("empty edge stream".into()));
        }
        let n_walks = ((m as f64 * self.cfg.walks_per_edge) as usize).max(100);
        let mut table = TransitionTable::new(graph.n_nodes(), graph.t_len());
        let mut walks = Vec::with_capacity(n_walks);
        for _ in 0..n_walks {
            let w = sample_walk(graph, self.cfg.walk_len, self.cfg.window, rng);
            if w.len() >= 2 {
                table.absorb(&w);
                walks.push(w);
            }
        }
        // Discriminator training surrogate: score every training walk and
        // set the acceptance threshold at the configured quantile.
        let mut scores: Vec<f64> =
            walks.iter().map(|w| table.walk_log_prob(w) / w.len().max(1) as f64).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((scores.len() as f64 * self.cfg.accept_quantile) as usize)
            .min(scores.len().saturating_sub(1));
        let threshold = scores.get(idx).copied().unwrap_or(f64::NEG_INFINITY);
        let starts = table.active_states();
        if starts.is_empty() {
            return Err(GeneratorError::Other("no transitions learned".into()));
        }
        self.state = Some(Fitted {
            table,
            starts,
            budgets: graph.iter().map(|(_, s)| s.n_edges()).collect(),
            threshold,
            n: graph.n_nodes(),
            f: graph.n_attrs(),
        });
        Ok(FitReport {
            train_seconds: started.elapsed().as_secs_f64(),
            epochs: 1,
            final_loss: -threshold,
        })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let budgets = extend_budgets(&fitted.budgets, t_len.max(1));
        let budgets = budgets[..t_len].to_vec();
        let mut asm = WalkAssembler::new(budgets);
        let total_budget: usize = fitted.budgets.iter().sum::<usize>().max(1);
        let max_candidates = total_budget * self.cfg.max_candidates_factor;
        let mut candidates = 0usize;
        while !asm.complete() && candidates < max_candidates {
            candidates += 1;
            let w = Self::sample_from_table(fitted, self.cfg.walk_len, rng);
            if w.len() < 2 {
                continue;
            }
            // Discrimination stage: reject implausible candidate walks.
            let score = fitted.table.walk_log_prob(&w) / w.len() as f64;
            if score < fitted.threshold {
                continue;
            }
            asm.deposit(&w);
        }
        let lists = asm.into_edge_lists();
        let snapshots = lists
            .into_iter()
            .map(|edges| Snapshot::new(fitted.n, edges, Matrix::zeros(fitted.n, fitted.f)))
            .collect();
        Ok(DynamicGraph::new(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 2)
    }

    #[test]
    fn fit_and_generate() {
        let g = toy();
        let mut gen = TagGenLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        assert_eq!(out.n_nodes(), g.n_nodes());
        let m = out.temporal_edge_count();
        assert!(m > 0, "no edges generated");
        // Assembly targets the observed per-snapshot budgets.
        assert!(m <= g.temporal_edge_count());
    }

    #[test]
    fn generate_without_fit_errors() {
        let gen = TagGenLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(gen.generate(3, &mut rng).is_err());
    }

    #[test]
    fn longer_horizon_reuses_tail_budget() {
        let g = toy();
        let mut gen = TagGenLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(g.t_len() + 3, &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len() + 3);
    }

    #[test]
    fn is_structure_only_dynamic_method() {
        let gen = TagGenLike::with_defaults();
        assert_eq!(gen.name(), "TagGen");
        assert!(!gen.supports_attributes());
        assert!(gen.is_dynamic());
    }
}

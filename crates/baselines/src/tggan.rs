//! TGGAN-like baseline (Zhang et al., WWW 2021): **truncated** temporal
//! walks with time-validity constraints.
//!
//! Mechanism preserved: short time-increasing walks capture the joint
//! time/topology distribution; training is cheap (short walks, no
//! discriminator — mirroring the paper's observation that TGGAN has the
//! lowest training cost, Fig. 9a) while generation still pays the
//! walk-sampling + assembly price (faster than TagGen, slower than
//! TIGGER).

use crate::merge::{extend_budgets, WalkAssembler};
use crate::walks::{sample_walk, TemporalWalk, TransitionTable};
use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct TgganConfig {
    /// Training walks per observed temporal edge (fewer than TagGen).
    pub walks_per_edge: f64,
    /// Truncated walk length.
    pub walk_len: usize,
    /// Strictly time-increasing steps when true (the time-validity
    /// constraint of the original).
    pub strict_increase: bool,
    /// Hard cap on candidate walks per generation call.
    pub max_candidates_factor: usize,
}

impl Default for TgganConfig {
    fn default() -> Self {
        TgganConfig {
            walks_per_edge: 1.5,
            walk_len: 6,
            strict_increase: true,
            max_candidates_factor: 60,
        }
    }
}

/// See module docs.
pub struct TgganLike {
    cfg: TgganConfig,
    state: Option<Fitted>,
}

struct Fitted {
    table: TransitionTable,
    starts: Vec<(u32, u32)>,
    budgets: Vec<usize>,
    n: usize,
    f: usize,
}

impl TgganLike {
    pub fn new(cfg: TgganConfig) -> Self {
        TgganLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(TgganConfig::default())
    }

    /// Enforce the time-validity constraint on a raw walk by truncating at
    /// the first non-increasing timestep.
    fn truncate_valid(&self, w: TemporalWalk) -> TemporalWalk {
        if !self.cfg.strict_increase || w.len() <= 2 {
            return w;
        }
        let mut end = w.len();
        for i in 2..w.len() {
            if w.times[i] <= w.times[i - 1] {
                end = i;
                break;
            }
        }
        TemporalWalk { nodes: w.nodes[..end].to_vec(), times: w.times[..end].to_vec() }
    }
}

impl DynamicGraphGenerator for TgganLike {
    fn name(&self) -> &str {
        "TGGAN"
    }

    fn supports_attributes(&self) -> bool {
        false
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let m = graph.temporal_edge_count();
        if m == 0 {
            return Err(GeneratorError::Other("empty edge stream".into()));
        }
        let n_walks = ((m as f64 * self.cfg.walks_per_edge) as usize).max(50);
        let mut table = TransitionTable::new(graph.n_nodes(), graph.t_len());
        for _ in 0..n_walks {
            let w = self.truncate_valid(sample_walk(graph, self.cfg.walk_len, 1, rng));
            if w.len() >= 2 {
                table.absorb(&w);
            }
        }
        let starts = table.active_states();
        if starts.is_empty() {
            return Err(GeneratorError::Other("no transitions learned".into()));
        }
        self.state = Some(Fitted {
            table,
            starts,
            budgets: graph.iter().map(|(_, s)| s.n_edges()).collect(),
            n: graph.n_nodes(),
            f: graph.n_attrs(),
        });
        Ok(FitReport { train_seconds: started.elapsed().as_secs_f64(), epochs: 1, final_loss: 0.0 })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let budgets = extend_budgets(&fitted.budgets, t_len.max(1))[..t_len].to_vec();
        let mut asm = WalkAssembler::new(budgets);
        let total_budget: usize = fitted.budgets.iter().sum::<usize>().max(1);
        let max_candidates = total_budget * self.cfg.max_candidates_factor;
        let mut candidates = 0usize;
        while !asm.complete() && candidates < max_candidates {
            candidates += 1;
            let (n0, t0) = fitted.starts[(rng.next_u64() % fitted.starts.len() as u64) as usize];
            let mut nodes = vec![n0];
            let mut times = vec![t0];
            let (mut cur, mut cur_t) = (n0, t0);
            for _ in 1..self.cfg.walk_len {
                match fitted.table.sample_smoothed(cur, cur_t, 0.2, &fitted.starts, rng) {
                    Some((nxt, nt)) => {
                        if self.cfg.strict_increase && !times.is_empty() && nt < cur_t {
                            break;
                        }
                        nodes.push(nxt);
                        times.push(nt);
                        cur = nxt;
                        cur_t = nt;
                    }
                    None => break,
                }
            }
            let w = TemporalWalk { nodes, times };
            if w.len() >= 2 {
                asm.deposit(&w);
            }
        }
        let lists = asm.into_edge_lists();
        let snapshots = lists
            .into_iter()
            .map(|edges| Snapshot::new(fitted.n, edges, Matrix::zeros(fitted.n, fitted.f)))
            .collect();
        Ok(DynamicGraph::new(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 3)
    }

    #[test]
    fn fit_and_generate() {
        let g = toy();
        let mut gen = TgganLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let report = gen.fit(&g, &mut rng).unwrap();
        assert!(report.train_seconds >= 0.0);
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        assert!(out.temporal_edge_count() > 0);
    }

    #[test]
    fn truncation_enforces_time_validity() {
        let gen = TgganLike::with_defaults();
        let w = TemporalWalk { nodes: vec![0, 1, 2, 3], times: vec![0, 1, 1, 2] };
        let t = gen.truncate_valid(w);
        assert_eq!(t.len(), 2); // cut where time stalls
    }

    #[test]
    fn training_is_cheaper_than_taggen() {
        // Structural check: TGGAN samples fewer, shorter walks.
        let tg = TgganConfig::default();
        let tag = crate::taggen::TagGenConfig::default();
        assert!(tg.walks_per_edge < tag.walks_per_edge);
        assert!(tg.walk_len < tag.walk_len);
    }

    #[test]
    fn metadata() {
        let gen = TgganLike::with_defaults();
        assert_eq!(gen.name(), "TGGAN");
        assert!(!gen.supports_attributes());
        assert!(gen.is_dynamic());
    }
}

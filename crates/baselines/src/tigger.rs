//! TIGGER-like baseline (Gupta et al., AAAI 2022): a pre-trained
//! autoregressive walk sampler combined with an inter-event time model.
//!
//! Mechanism preserved: (1) an expensive **pre-training** phase fits an
//! autoregressive next-(node,time) model over many epochs of temporal
//! walks (here a count-based first-order model re-estimated across epochs,
//! standing in for the original's LSTM — TIGGER's training is the most
//! expensive of the walk methods at scale, Table III); (2) inter-event
//! gaps are modeled per source node (a geometric surrogate of the
//! original's temporal point process); (3) generation samples relatively
//! few long walks without any discriminator, making TIGGER the fastest
//! walk-based generator (Table IV) — though still orders of magnitude
//! slower than VRDAG's one-shot decoding.

use crate::merge::{extend_budgets, WalkAssembler};
use crate::walks::{sample_walk, TemporalWalk, TransitionTable};
use rand::RngCore;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct TiggerConfig {
    /// Walks per observed temporal edge sampled per pre-training epoch.
    pub walks_per_edge: f64,
    /// Pre-training epochs (the autoregressive model surrogate).
    pub pretrain_epochs: usize,
    /// Walk length at generation (long walks amortize start-up cost).
    pub walk_len: usize,
    /// Temporal window for time-respecting steps.
    pub window: usize,
    /// Hard cap on candidate walks per generation call.
    pub max_candidates_factor: usize,
}

impl Default for TiggerConfig {
    fn default() -> Self {
        TiggerConfig {
            walks_per_edge: 1.0,
            pretrain_epochs: 8,
            walk_len: 24,
            window: 2,
            max_candidates_factor: 30,
        }
    }
}

/// See module docs.
pub struct TiggerLike {
    cfg: TiggerConfig,
    state: Option<Fitted>,
}

struct Fitted {
    table: TransitionTable,
    starts: Vec<(u32, u32)>,
    budgets: Vec<usize>,
    /// Per-node geometric continuation probability of the inter-event time
    /// model (probability that the next event of the node falls in the same
    /// snapshot rather than a later one).
    same_step_prob: Vec<f64>,
    n: usize,
    f: usize,
}

impl TiggerLike {
    pub fn new(cfg: TiggerConfig) -> Self {
        TiggerLike { cfg, state: None }
    }

    pub fn with_defaults() -> Self {
        Self::new(TiggerConfig::default())
    }
}

impl DynamicGraphGenerator for TiggerLike {
    fn name(&self) -> &str {
        "TIGGER"
    }

    fn supports_attributes(&self) -> bool {
        false
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let m = graph.temporal_edge_count();
        if m == 0 {
            return Err(GeneratorError::Other("empty edge stream".into()));
        }
        let n = graph.n_nodes();
        let mut table = TransitionTable::new(n, graph.t_len());
        // Pre-training: multiple epochs of walk extraction feed the
        // autoregressive model (dominant training cost, cf. Table III).
        let per_epoch = ((m as f64 * self.cfg.walks_per_edge) as usize).max(50);
        for _epoch in 0..self.cfg.pretrain_epochs {
            for _ in 0..per_epoch {
                let w = sample_walk(graph, self.cfg.walk_len, self.cfg.window, rng);
                if w.len() >= 2 {
                    table.absorb(&w);
                }
            }
        }
        // Inter-event time model: per-node probability that consecutive
        // activity stays within the same snapshot.
        let mut same = vec![1.0f64; n];
        let mut total = vec![1.0f64; n];
        for (t, s) in graph.iter() {
            for &(u, _) in s.edges() {
                total[u as usize] += 1.0;
                if t + 1 < graph.t_len() && s.out_adj().degree(u as usize) > 1 {
                    same[u as usize] += 1.0;
                }
            }
        }
        let same_step_prob: Vec<f64> =
            same.iter().zip(total.iter()).map(|(s, t)| (s / t).clamp(0.05, 0.95)).collect();
        let starts = table.active_states();
        if starts.is_empty() {
            return Err(GeneratorError::Other("no transitions learned".into()));
        }
        self.state = Some(Fitted {
            table,
            starts,
            budgets: graph.iter().map(|(_, s)| s.n_edges()).collect(),
            same_step_prob,
            n,
            f: graph.n_attrs(),
        });
        Ok(FitReport {
            train_seconds: started.elapsed().as_secs_f64(),
            epochs: self.cfg.pretrain_epochs,
            final_loss: 0.0,
        })
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let fitted = self.state.as_ref().ok_or(GeneratorError::NotFitted)?;
        let budgets = extend_budgets(&fitted.budgets, t_len.max(1))[..t_len].to_vec();
        let mut asm = WalkAssembler::new(budgets);
        let total_budget: usize = fitted.budgets.iter().sum::<usize>().max(1);
        let max_candidates = total_budget * self.cfg.max_candidates_factor;
        let mut candidates = 0usize;
        while !asm.complete() && candidates < max_candidates {
            candidates += 1;
            let (n0, t0) = fitted.starts[(rng.next_u64() % fitted.starts.len() as u64) as usize];
            let mut nodes = vec![n0];
            let mut times = vec![t0];
            let (mut cur, mut cur_t) = (n0, t0);
            for _ in 1..self.cfg.walk_len {
                match fitted.table.sample_smoothed(cur, cur_t, 0.15, &fitted.starts, rng) {
                    Some((nxt, mut nt)) => {
                        // Inter-event time model: with probability
                        // 1 − same_step_prob the event is pushed to a later
                        // snapshot.
                        let p_same = fitted.same_step_prob[cur as usize];
                        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                        if u > p_same && (nt as usize) + 1 < t_len {
                            nt += 1;
                        }
                        nodes.push(nxt);
                        times.push(nt);
                        cur = nxt;
                        cur_t = nt;
                    }
                    None => break,
                }
            }
            let w = TemporalWalk { nodes, times };
            if w.len() >= 2 {
                asm.deposit(&w);
            }
        }
        let lists = asm.into_edge_lists();
        let snapshots = lists
            .into_iter()
            .map(|edges| Snapshot::new(fitted.n, edges, Matrix::zeros(fitted.n, fitted.f)))
            .collect();
        Ok(DynamicGraph::new(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 4)
    }

    #[test]
    fn fit_and_generate() {
        let g = toy();
        let mut gen = TiggerLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(1);
        let report = gen.fit(&g, &mut rng).unwrap();
        assert_eq!(report.epochs, TiggerConfig::default().pretrain_epochs);
        let out = gen.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.t_len(), g.t_len());
        assert!(out.temporal_edge_count() > 0);
        // Budgets bound the output size.
        assert!(out.temporal_edge_count() <= g.temporal_edge_count());
    }

    #[test]
    fn inter_event_probabilities_are_bounded() {
        let g = toy();
        let mut gen = TiggerLike::with_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        gen.fit(&g, &mut rng).unwrap();
        for &p in &gen.state.as_ref().unwrap().same_step_prob {
            assert!((0.05..=0.95).contains(&p));
        }
    }

    #[test]
    fn metadata() {
        let gen = TiggerLike::with_defaults();
        assert_eq!(gen.name(), "TIGGER");
        assert!(!gen.supports_attributes());
        assert!(gen.is_dynamic());
    }
}

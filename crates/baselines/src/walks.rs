//! Shared temporal random-walk machinery for the walk-based baselines
//! (TagGen, TGGAN, TIGGER). A temporal walk visits `(node, timestep)`
//! states with non-decreasing timesteps, following observed edges — the
//! joint structural/temporal context extraction these methods rely on.

use rand::RngCore;
use vrdag_graph::DynamicGraph;

/// One temporal random walk: aligned node / timestep sequences.
#[derive(Clone, Debug, PartialEq)]
pub struct TemporalWalk {
    pub nodes: Vec<u32>,
    pub times: Vec<u32>,
}

impl TemporalWalk {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over the temporal edges `(u, v, t_v)` traversed by the walk.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (1..self.nodes.len()).map(move |i| (self.nodes[i - 1], self.nodes[i], self.times[i]))
    }
}

/// Flat index of a `(node, time)` state.
#[inline]
pub fn state_index(node: u32, t: u32, t_len: usize) -> usize {
    node as usize * t_len + t as usize
}

/// Sample one temporal walk of at most `max_len` hops starting from a
/// uniformly chosen observed temporal edge. At each hop the walk moves to
/// an out-neighbor in a timestep within `[t, t + window]` (time-respecting
/// constraint).
pub fn sample_walk(
    g: &DynamicGraph,
    max_len: usize,
    window: usize,
    rng: &mut dyn RngCore,
) -> TemporalWalk {
    let t_len = g.t_len();
    // Uniform start edge: pick a timestep weighted by edge count.
    let total: usize = g.temporal_edge_count();
    if total == 0 {
        return TemporalWalk { nodes: Vec::new(), times: Vec::new() };
    }
    let mut pick = (rng.next_u64() % total as u64) as usize;
    let mut start = None;
    for (t, s) in g.iter() {
        if pick < s.n_edges() {
            let (u, v) = s.edges()[pick];
            start = Some((u, v, t as u32));
            break;
        }
        pick -= s.n_edges();
    }
    let (u0, v0, t0) = start.expect("non-empty edge stream");
    let mut nodes = vec![u0, v0];
    let mut times = vec![t0, t0];
    let mut cur = v0;
    let mut cur_t = t0;
    for _ in 2..max_len {
        // Candidate (neighbor, t') pairs in the time window.
        let hi = ((cur_t as usize) + window).min(t_len - 1);
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for t in cur_t as usize..=hi {
            for &nb in g.snapshot(t).out_adj().neighbors(cur as usize) {
                candidates.push((nb, t as u32));
            }
        }
        if candidates.is_empty() {
            break;
        }
        let (nxt, nt) = candidates[(rng.next_u64() % candidates.len() as u64) as usize];
        nodes.push(nxt);
        times.push(nt);
        cur = nxt;
        cur_t = nt;
    }
    TemporalWalk { nodes, times }
}

/// Transition statistics over `(node, time)` states extracted from walks —
/// the count-based surrogate for the neural sequence models of the
/// original baselines (their defining cost structure is the walk sampling
/// and assembly, which is preserved exactly).
#[derive(Clone, Debug)]
pub struct TransitionTable {
    t_len: usize,
    /// `counts[state] = Vec<(next_node, next_t, count)>`
    counts: Vec<Vec<(u32, u32, f32)>>,
}

impl TransitionTable {
    pub fn new(n: usize, t_len: usize) -> Self {
        TransitionTable { t_len, counts: vec![Vec::new(); n * t_len] }
    }

    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// Accumulate the transitions of a walk.
    pub fn absorb(&mut self, w: &TemporalWalk) {
        for i in 1..w.len() {
            let s = state_index(w.nodes[i - 1], w.times[i - 1], self.t_len);
            let entry =
                self.counts[s].iter_mut().find(|(n, t, _)| *n == w.nodes[i] && *t == w.times[i]);
            match entry {
                Some((_, _, c)) => *c += 1.0,
                None => self.counts[s].push((w.nodes[i], w.times[i], 1.0)),
            }
        }
    }

    /// Sample a successor state, or `None` for absorbing states.
    pub fn sample(&self, node: u32, t: u32, rng: &mut dyn RngCore) -> Option<(u32, u32)> {
        let opts = &self.counts[state_index(node, t, self.t_len)];
        if opts.is_empty() {
            return None;
        }
        let total: f32 = opts.iter().map(|(_, _, c)| c).sum();
        let mut x = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32 * total;
        for &(n, tt, c) in opts {
            if x < c {
                return Some((n, tt));
            }
            x -= c;
        }
        opts.last().map(|&(n, tt, _)| (n, tt))
    }

    /// Sample a successor with model-noise smoothing: with probability
    /// `epsilon` the chain teleports through a random active state's
    /// successor distribution instead. This stands in for the sampling
    /// stochasticity of the original methods' neural generators — a pure
    /// count table would deterministically replay the observed graph,
    /// which none of the neural walk models do.
    pub fn sample_smoothed(
        &self,
        node: u32,
        t: u32,
        epsilon: f64,
        starts: &[(u32, u32)],
        rng: &mut dyn RngCore,
    ) -> Option<(u32, u32)> {
        let coin = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if coin < epsilon && !starts.is_empty() {
            let (n0, t0) = starts[(rng.next_u64() % starts.len() as u64) as usize];
            return self.sample(n0, t0, rng);
        }
        self.sample(node, t, rng)
    }

    /// Empirical log-probability of a walk under the table (used by the
    /// TagGen-style discriminator).
    pub fn walk_log_prob(&self, w: &TemporalWalk) -> f64 {
        let mut lp = 0.0f64;
        for i in 1..w.len() {
            let opts = &self.counts[state_index(w.nodes[i - 1], w.times[i - 1], self.t_len)];
            let total: f32 = opts.iter().map(|(_, _, c)| c).sum();
            let hit = opts
                .iter()
                .find(|(n, t, _)| *n == w.nodes[i] && *t == w.times[i])
                .map(|(_, _, c)| *c)
                .unwrap_or(0.0);
            lp += ((hit + 1e-3) / (total + 1.0)).ln() as f64;
        }
        lp
    }

    /// All states with at least one outgoing transition (walk start pool).
    pub fn active_states(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (s, opts) in self.counts.iter().enumerate() {
            if !opts.is_empty() {
                out.push(((s / self.t_len) as u32, (s % self.t_len) as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 1)
    }

    #[test]
    fn walks_respect_time_ordering() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let w = sample_walk(&g, 12, 2, &mut rng);
            assert!(w.len() >= 2);
            for i in 1..w.len() {
                assert!(w.times[i] >= w.times[i - 1], "time went backwards");
                assert!((w.times[i] - w.times[i - 1]) as usize <= 2, "window violated");
            }
        }
    }

    #[test]
    fn walk_edges_exist_in_graph() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let w = sample_walk(&g, 8, 1, &mut rng);
            for (u, v, t) in w.edges() {
                assert!(g.snapshot(t as usize).has_edge(u, v), "walk used non-edge");
            }
        }
    }

    #[test]
    fn transition_table_round_trip() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let mut table = TransitionTable::new(g.n_nodes(), g.t_len());
        for _ in 0..200 {
            let w = sample_walk(&g, 10, 2, &mut rng);
            table.absorb(&w);
        }
        let states = table.active_states();
        assert!(!states.is_empty());
        let (n0, t0) = states[0];
        let nxt = table.sample(n0, t0, &mut rng);
        assert!(nxt.is_some());
    }

    #[test]
    fn plausible_walks_score_higher() {
        let g = toy_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let mut table = TransitionTable::new(g.n_nodes(), g.t_len());
        let mut walks = Vec::new();
        for _ in 0..300 {
            let w = sample_walk(&g, 8, 2, &mut rng);
            table.absorb(&w);
            walks.push(w);
        }
        let real = table.walk_log_prob(&walks[0]);
        // A walk over random node ids is implausible.
        let fake = TemporalWalk { nodes: vec![0, 1, 2, 3], times: vec![0, 0, 1, 2] };
        let fake_lp = table.walk_log_prob(&fake);
        assert!(real >= fake_lp, "real {real} fake {fake_lp}");
    }

    #[test]
    fn state_index_is_bijective() {
        let t_len = 7;
        let mut seen = std::collections::HashSet::new();
        for n in 0..5u32 {
            for t in 0..7u32 {
                assert!(seen.insert(state_index(n, t, t_len)));
            }
        }
    }
}

//! Snapshot-cache throughput: the same repeated seed-addressed workload
//! drained cold (cache disabled — every job regenerates) versus warm
//! (bounded LRU enabled — later rounds replay cached sequences). The gap
//! between the two is the win the determinism contract buys; the warm
//! run asserts nonzero cache-hit and batch-size stats.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag::{Vrdag, VrdagConfig};
use vrdag_serve::{CacheBudget, GenRequest, GenSink, ModelRegistry, Scheduler, SchedulerConfig};

const DISTINCT_SEEDS: u64 = 4;
const ROUNDS: usize = 4;
const T_LEN: usize = 4;
const WORKERS: usize = 2;

fn registry() -> ModelRegistry {
    let spec = vrdag_datasets::tiny();
    let graph = vrdag_datasets::generate(&spec, 17);
    let mut model = Vrdag::new(VrdagConfig { epochs: 2, ..VrdagConfig::test_small() });
    let mut rng = StdRng::seed_from_u64(1);
    model.fit(&graph, &mut rng).unwrap();
    let registry = ModelRegistry::new();
    registry.register("bench", &model).unwrap();
    registry
}

/// Drain `ROUNDS` repetitions of the same `DISTINCT_SEEDS` requests and
/// return jobs/sec. With the cache enabled only the first round pays for
/// generation.
fn drain_repeated(registry: &ModelRegistry, cache: CacheBudget) -> f64 {
    let mut scheduler = Scheduler::with_config(
        registry.clone(),
        SchedulerConfig { workers: WORKERS, cache, ..Default::default() },
    )
    .unwrap();
    for _round in 0..ROUNDS {
        for seed in 0..DISTINCT_SEEDS {
            scheduler.submit(GenRequest::new("bench", T_LEN, seed, GenSink::InMemory)).unwrap();
        }
    }
    let report = scheduler.join().unwrap();
    assert!(report.all_ok());
    if cache.is_enabled() {
        // The whole point of the bench: repeated requests actually hit,
        // and same-model jobs actually batch onto shared instantiations.
        assert!(report.cache.hits > 0, "warm run produced no cache hits");
        assert!(report.affinity.max_batch_len > 1, "no batching observed");
    } else {
        assert_eq!(report.cache.hits, 0);
    }
    report.jobs_per_sec
}

fn bench_cache_throughput(c: &mut Criterion) {
    // Pin intra-op tensor parallelism to one thread (must happen before
    // the first tensor op caches the count), so the comparison isolates
    // caching, not kernel-level threading.
    std::env::set_var("VRDAG_THREADS", "1");
    let registry = registry();
    let mut group = c.benchmark_group("cache_throughput");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("repeated_16_jobs", "cold"),
        &CacheBudget::disabled(),
        |b, &budget| b.iter(|| black_box(drain_repeated(&registry, budget))),
    );
    group.bench_with_input(
        BenchmarkId::new("repeated_16_jobs", "warm"),
        &CacheBudget::entries(16),
        |b, &budget| b.iter(|| black_box(drain_repeated(&registry, budget))),
    );
    group.finish();
}

criterion_group!(benches, bench_cache_throughput);
criterion_main!(benches);

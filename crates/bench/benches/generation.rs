//! The headline comparison at micro scale: VRDAG's one-shot snapshot
//! decode vs. walk-based sampling + merging (TIGGER-like) for the same
//! edge budget — the algorithmic asymmetry behind Fig. 9 and Tables
//! III/IV.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag::{Vrdag, VrdagConfig};
use vrdag_baselines::TiggerLike;
use vrdag_graph::DynamicGraphGenerator;

fn bench_generation(c: &mut Criterion) {
    let spec = vrdag_datasets::email().scaled(0.05);
    let graph = vrdag_datasets::generate(&spec, 11);

    // Pre-fit both models outside the measured region.
    let mut vrdag = Vrdag::new(VrdagConfig { epochs: 3, ..VrdagConfig::test_small() });
    let mut rng = StdRng::seed_from_u64(1);
    vrdag.fit(&graph, &mut rng).unwrap();

    let mut tigger = TiggerLike::with_defaults();
    DynamicGraphGenerator::fit(&mut tigger, &graph, &mut rng).unwrap();

    let mut group = c.benchmark_group("generation_per_sequence");
    group.sample_size(10);
    group.bench_function("vrdag_one_shot", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(vrdag.generate(graph.t_len(), &mut r).unwrap())
        });
    });
    group.bench_function("tigger_walk_merge", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(DynamicGraphGenerator::generate(&tigger, graph.t_len(), &mut r).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);

//! Serving-layer throughput: jobs/sec of the `vrdag-serve` scheduler
//! draining a fixed batch of seed-addressed generation requests at 1, 2,
//! and 4 workers (the scaling knob every future async-frontend PR will
//! push on).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag::{Vrdag, VrdagConfig};
use vrdag_serve::{GenRequest, GenSink, ModelRegistry, Scheduler};

const JOBS: usize = 8;
const T_LEN: usize = 4;

fn registry() -> ModelRegistry {
    let spec = vrdag_datasets::tiny();
    let graph = vrdag_datasets::generate(&spec, 17);
    let mut model = Vrdag::new(VrdagConfig { epochs: 2, ..VrdagConfig::test_small() });
    let mut rng = StdRng::seed_from_u64(1);
    model.fit(&graph, &mut rng).unwrap();
    let registry = ModelRegistry::new();
    registry.register("bench", &model).unwrap();
    registry
}

fn drain_batch(registry: &ModelRegistry, workers: usize) -> f64 {
    let mut scheduler = Scheduler::new(registry.clone(), workers).unwrap();
    for seed in 0..JOBS as u64 {
        scheduler.submit(GenRequest::new("bench", T_LEN, seed, GenSink::Discard)).unwrap();
    }
    let report = scheduler.join().unwrap();
    assert!(report.all_ok());
    report.jobs_per_sec
}

fn bench_generation_throughput(c: &mut Criterion) {
    // Pin intra-op tensor parallelism to one thread (must happen before
    // the first tensor op caches the count), so what this bench measures
    // is the scheduler's inter-job scaling, not kernel-level threading.
    std::env::set_var("VRDAG_THREADS", "1");
    let registry = registry();
    let mut group = c.benchmark_group("generation_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("scheduler_drain_8_jobs", workers),
            &workers,
            |b, &workers| {
                b.iter(|| black_box(drain_batch(&registry, workers)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation_throughput);
criterion_main!(benches);

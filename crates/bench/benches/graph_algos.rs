//! Micro-benchmarks for the graph algorithm substrate (the metric hot
//! paths: components, clustering, coreness).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vrdag_graph::algo;
use vrdag_graph::Snapshot;

fn synthetic_snapshot(scale: f64) -> Snapshot {
    let spec = vrdag_datasets::email().scaled(scale);
    let g = vrdag_datasets::generate(&spec, 7);
    g.snapshot(0).clone()
}

fn bench_algos(c: &mut Criterion) {
    for &scale in &[0.05f64, 0.2] {
        let s = synthetic_snapshot(scale);
        let label = format!("n={}", s.n_nodes());
        let mut group = c.benchmark_group(format!("graph_algos/{label}"));
        group.bench_with_input(BenchmarkId::new("components", &label), &s, |b, s| {
            b.iter(|| black_box(algo::weakly_connected_components(s)));
        });
        group.bench_with_input(BenchmarkId::new("clustering", &label), &s, |b, s| {
            b.iter(|| black_box(algo::local_clustering(s)));
        });
        group.bench_with_input(BenchmarkId::new("coreness", &label), &s, |b, s| {
            b.iter(|| black_box(algo::coreness(s)));
        });
        group.bench_with_input(BenchmarkId::new("wedges", &label), &s, |b, s| {
            b.iter(|| black_box(algo::wedge_count(s)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_algos);
criterion_main!(benches);

//! Micro-benchmarks for the evaluation metrics (they run once per
//! timestep per method per dataset in the Table I harness, so their cost
//! matters).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vrdag_metrics::{attribute_report, emd_1d, jsd, mmd_gaussian, structure_report};

fn bench_metrics(c: &mut Criterion) {
    let spec = vrdag_datasets::email().scaled(0.08);
    let a = vrdag_datasets::generate(&spec, 3);
    let b = vrdag_datasets::generate(&spec, 4);

    c.bench_function("structure_report_email_small", |bch| {
        bch.iter(|| black_box(structure_report(&a, &b)));
    });
    c.bench_function("attribute_report_email_small", |bch| {
        bch.iter(|| black_box(attribute_report(&a, &b)));
    });

    let xs: Vec<f64> = (0..2000).map(|i| ((i * 37) % 100) as f64).collect();
    let ys: Vec<f64> = (0..2000).map(|i| ((i * 53) % 120) as f64).collect();
    c.bench_function("mmd_gaussian_2k_samples", |bch| {
        bch.iter(|| black_box(mmd_gaussian(&xs, &ys, 64, 0.1)));
    });
    c.bench_function("jsd_2k_samples", |bch| {
        bch.iter(|| black_box(jsd(&xs, &ys, 50)));
    });
    c.bench_function("emd_2k_samples", |bch| {
        bch.iter(|| black_box(emd_1d(&xs, &ys)));
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);

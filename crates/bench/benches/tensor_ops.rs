//! Micro-benchmarks for the tensor substrate: matmul kernels, sparse
//! aggregation, and autograd overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;
use vrdag_tensor::ops::{self, SparseAdj};
use vrdag_tensor::{Matrix, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 256] {
        let a = Matrix::rand_uniform(n, n, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(n, n, -1.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_nt(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_tn(&b)));
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm_sum");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[1000usize, 4000] {
        // ~8 neighbors per node.
        let lists: Vec<Vec<u32>> =
            (0..n).map(|i| (0..8).map(|k| ((i * 7 + k * 131) % n) as u32).collect()).collect();
        let adj = Rc::new(SparseAdj::from_lists(&lists));
        let x = Tensor::constant(Matrix::rand_uniform(n, 32, -1.0, 1.0, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(ops::spmm_sum(Rc::clone(&adj), &x)));
        });
    }
    group.finish();
}

fn bench_autograd_overhead(c: &mut Criterion) {
    // Forward+backward of a small MLP step: measures tape cost.
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = vrdag_tensor::nn::Mlp::new(
        &[32, 64, 32],
        vrdag_tensor::nn::Activation::LeakyRelu(0.2),
        vrdag_tensor::nn::Activation::Identity,
        &mut rng,
    );
    let x = Tensor::constant(Matrix::rand_uniform(256, 32, -1.0, 1.0, &mut rng));
    c.bench_function("mlp_forward_backward_256x32", |b| {
        b.iter(|| {
            let loss = ops::sum_all(&mlp.forward(&x));
            loss.backward();
            for p in mlp.parameters() {
                p.zero_grad();
            }
            black_box(loss.item())
        });
    });
    c.bench_function("mlp_forward_no_grad_256x32", |b| {
        b.iter(|| vrdag_tensor::no_grad(|| black_box(mlp.forward(&x).value().sum())));
    });
}

criterion_group!(benches, bench_matmul, bench_spmm, bench_autograd_overhead);
criterion_main!(benches);

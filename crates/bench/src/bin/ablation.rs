//! **Appendix A-E ablation study** — impact of VRDAG's design choices on
//! Email: bi-flow vs. uni-flow message passing, Time2Vec, the recurrence
//! state updater, the SCE vs. MSE attribute loss, the number of mixture
//! components K, and density calibration.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag::{AttrLoss, Vrdag, VrdagConfig};
use vrdag_bench::harness::{load_dataset, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_metrics::attribute::attribute_report;
use vrdag_metrics::structure::structure_report;

fn variant(name: &str, scale_epochs: usize, seed: u64) -> (String, VrdagConfig) {
    let mut cfg = VrdagConfig { epochs: scale_epochs, seed, ..VrdagConfig::default() };
    match name {
        "full" => {}
        "uni-flow" => cfg.bi_flow = false,
        "no-time2vec" => cfg.use_time2vec = false,
        "no-recurrence" => cfg.use_recurrence = false,
        "mse-attr" => cfg.attr_loss = AttrLoss::Mse,
        "k=1" => cfg.k_mix = 1,
        "k=5" => cfg.k_mix = 5,
        "no-calibration" => cfg.calibrate_density = false,
        other => panic!("unknown variant {other}"),
    }
    (name.to_string(), cfg)
}

const VARIANTS: [&str; 8] = [
    "full",
    "uni-flow",
    "no-time2vec",
    "no-recurrence",
    "mse-attr",
    "k=1",
    "k=5",
    "no-calibration",
];

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email"]);
    println!("Appendix A-E ablation | scale={} seed={}\n", opts.scale.name(), opts.seed);
    let headers = ["In-deg dist", "Out-deg dist", "Clus dist", "Wedge count", "NC", "JSD", "EMD"];
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let mut table = Table::new(format!("Ablation — {}", spec.name), &headers);
        for v in VARIANTS {
            let (name, cfg) = variant(v, opts.scale.vrdag_epochs(), opts.seed);
            let mut model = Vrdag::new(cfg);
            let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xAB1A);
            model.fit(&graph, &mut rng).expect("fit");
            let generated = model.generate(graph.t_len(), &mut rng).expect("generate");
            let s = structure_report(&graph, &generated);
            let a = attribute_report(&graph, &generated);
            table.push_row(
                name,
                vec![s.in_deg_dist, s.out_deg_dist, s.clus_dist, s.wedge_count, s.nc, a.jsd, a.emd],
            );
        }
        table.print();
        println!();
        table
            .write_tsv(results_dir().join(format!("ablation_{}.tsv", spec.name.replace('@', "_"))))
            .expect("write results");
    }
    println!("wrote {}/ablation_*.tsv", results_dir().display());
}

//! **Fig. 10** — application to downstream data augmentation: train a
//! CoEvoGNN-like forecaster on the original sequence with and without
//! synthetic augmentation ({VRDAG, GenCAT}) and compare link-prediction F1
//! and attribute-prediction RMSE on the held-out final snapshot, averaged
//! over multiple runs (the paper uses 5).

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_downstream::{evaluate_augmentation, CoEvoConfig};

const CONDITIONS: [&str; 3] = ["VRDAG", "GenCAT", "NoAug"];
const RUNS: usize = 3;

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email", "Wiki", "GDELT"]);
    println!(
        "Fig. 10 reproduction (downstream augmentation, {} runs) | scale={} seed={}\n",
        RUNS,
        opts.scale.name(),
        opts.seed
    );
    let mut f1_table = Table::new("Fig. 10(a) — link prediction F1", &CONDITIONS);
    let mut rmse_table = Table::new("Fig. 10(b) — attribute prediction RMSE", &CONDITIONS);
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        // Fit the two augmenters once per dataset.
        let mut augmentations: Vec<(&str, Option<vrdag_graph::DynamicGraph>)> = Vec::new();
        for method in ["VRDAG", "GenCAT"] {
            let mut gen = make_method(method, opts.scale, opts.seed);
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ 0xF10)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", spec.name));
            augmentations.push((method, Some(run.generated)));
        }
        augmentations.push(("NoAug", None));
        let mut f1_row = Vec::new();
        let mut rmse_row = Vec::new();
        for (name, aug) in &augmentations {
            let mut f1 = 0.0;
            let mut rmse = 0.0;
            for run in 0..RUNS {
                let cfg = CoEvoConfig {
                    seed: opts.seed ^ (run as u64 * 7919),
                    epochs: 20,
                    ..CoEvoConfig::default()
                };
                let r = evaluate_augmentation(&graph, aug.as_ref(), cfg);
                f1 += r.f1 / RUNS as f64;
                rmse += r.rmse / RUNS as f64;
            }
            println!("   {} + {name}: F1={f1:.4} RMSE={rmse:.4}", spec.name);
            f1_row.push(f1);
            rmse_row.push(rmse);
        }
        f1_table.push_row(spec.name.clone(), f1_row);
        rmse_table.push_row(spec.name.clone(), rmse_row);
    }
    println!();
    f1_table.print();
    println!();
    rmse_table.print();
    f1_table.write_tsv(results_dir().join("fig10a_f1.tsv")).expect("write results");
    rmse_table.write_tsv(results_dir().join("fig10b_rmse.tsv")).expect("write results");
    println!("\nwrote {}/fig10[a|b]_*.tsv", results_dir().display());
}

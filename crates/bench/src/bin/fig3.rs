//! **Fig. 3** — node attribute distribution quality: average JSD and EMD
//! between synthetic and original attribute distributions for
//! {VRDAG, GenCAT, Normal} on all six datasets.

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_metrics::attribute::attribute_report;

const METHODS: [&str; 3] = ["VRDAG", "GenCAT", "Normal"];
const ALL_DATASETS: [&str; 6] = ["Email", "Bitcoin", "Wiki", "Guarantee", "Brain", "GDELT"];

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &ALL_DATASETS);
    println!(
        "Fig. 3 reproduction (attribute JSD / EMD) | scale={} seed={}\n",
        opts.scale.name(),
        opts.seed
    );
    let mut jsd_table = Table::new("Fig. 3(a) — JSD", &METHODS);
    let mut emd_table = Table::new("Fig. 3(b) — EMD", &METHODS);
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let mut jsd_row = Vec::new();
        let mut emd_row = Vec::new();
        for method in METHODS {
            let mut gen = make_method(method, opts.scale, opts.seed);
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ 0xF16)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", spec.name));
            let rep = attribute_report(&graph, &run.generated);
            jsd_row.push(rep.jsd);
            emd_row.push(rep.emd);
        }
        jsd_table.push_row(spec.name.clone(), jsd_row);
        emd_table.push_row(spec.name.clone(), emd_row);
    }
    jsd_table.print();
    println!();
    emd_table.print();
    jsd_table.write_tsv(results_dir().join("fig3_jsd.tsv")).expect("write results");
    emd_table.write_tsv(results_dir().join("fig3_emd.tsv")).expect("write results");
    println!("\nwrote {}/fig3_[jsd|emd].tsv", results_dir().display());
}

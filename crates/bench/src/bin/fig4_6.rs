//! **Figures 4–6** — temporal structure difference between consecutive
//! snapshots (Eq. 20) in degree, clustering coefficient, and coreness, for
//! {Original, VRDAG, TIGGER} on Email, Wiki, and GDELT.

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, SeriesSet};
use vrdag_metrics::dynamic::{
    series_alignment_error, structure_difference_series, StructuralProperty,
};

const PROPS: [(StructuralProperty, &str); 3] = [
    (StructuralProperty::Degree, "fig4_degree"),
    (StructuralProperty::Clustering, "fig5_clustering"),
    (StructuralProperty::Coreness, "fig6_coreness"),
];

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email", "Wiki", "GDELT"]);
    println!(
        "Figures 4–6 reproduction (temporal structure differences) | scale={} seed={}\n",
        opts.scale.name(),
        opts.seed
    );
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let mut vrdag = make_method("VRDAG", opts.scale, opts.seed);
        let vrdag_run = fit_and_generate(&mut vrdag, &graph, opts.seed ^ 0x46).expect("VRDAG run");
        let mut tigger = make_method("TIGGER", opts.scale, opts.seed);
        let tigger_run =
            fit_and_generate(&mut tigger, &graph, opts.seed ^ 0x46).expect("TIGGER run");
        for (prop, stem) in PROPS {
            let orig = structure_difference_series(&graph, prop);
            let v = structure_difference_series(&vrdag_run.generated, prop);
            let t = structure_difference_series(&tigger_run.generated, prop);
            let mut series = SeriesSet::new(format!(
                "{} — {} difference (VRDAG align {:.4}, TIGGER align {:.4})",
                spec.name,
                prop.name(),
                series_alignment_error(&orig, &v),
                series_alignment_error(&orig, &t),
            ));
            series.push("Original", orig);
            series.push("VRDAG", v);
            series.push("TIGGER", t);
            series.print();
            println!();
            series
                .write_tsv(
                    results_dir().join(format!("{stem}_{}.tsv", spec.name.replace('@', "_"))),
                )
                .expect("write results");
        }
    }
    println!("wrote {}/fig[4|5|6]_*.tsv", results_dir().display());
}

//! **Figures 7–8** — temporal attribute difference between consecutive
//! snapshots (Eq. 21): MAE (Fig. 7) and RMSE (Fig. 8) for {Original,
//! VRDAG} on Email, Wiki, and GDELT (no attribute-capable dynamic baseline
//! exists, as the paper notes).

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, SeriesSet};
use vrdag_metrics::dynamic::{
    attribute_difference_series, series_alignment_error, AttributeDifference,
};

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email", "Wiki", "GDELT"]);
    println!(
        "Figures 7–8 reproduction (temporal attribute differences) | scale={} seed={}\n",
        opts.scale.name(),
        opts.seed
    );
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let mut vrdag = make_method("VRDAG", opts.scale, opts.seed);
        let run = fit_and_generate(&mut vrdag, &graph, opts.seed ^ 0x78).expect("VRDAG run");
        for (kind, stem, label) in [
            (AttributeDifference::Mae, "fig7_mae", "MAE"),
            (AttributeDifference::Rmse, "fig8_rmse", "RMSE"),
        ] {
            let orig = attribute_difference_series(&graph, kind);
            let gen = attribute_difference_series(&run.generated, kind);
            let mut series = SeriesSet::new(format!(
                "{} — attribute {} difference (align {:.4})",
                spec.name,
                label,
                series_alignment_error(&orig, &gen),
            ));
            series.push("Original", orig);
            series.push("VRDAG", gen);
            series.print();
            println!();
            series
                .write_tsv(
                    results_dir().join(format!("{stem}_{}.tsv", spec.name.replace('@', "_"))),
                )
                .expect("write results");
        }
    }
    println!("wrote {}/fig[7|8]_*.tsv", results_dir().display());
}

//! **Fig. 9** — efficiency evaluation: (a) training and (b) generation
//! wall time of {VRDAG, TIGGER, TGGAN, TagGen} on all six datasets; with
//! `--trend`, (c)/(d) time vs. number of timesteps on Bitcoin.

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};

const METHODS: [&str; 4] = ["VRDAG", "TIGGER", "TGGAN", "TagGen"];
const ALL_DATASETS: [&str; 6] = ["Email", "Bitcoin", "Wiki", "Guarantee", "Brain", "GDELT"];

fn main() {
    let opts = RunOpts::from_env();
    println!("Fig. 9 reproduction (efficiency) | scale={} seed={}\n", opts.scale.name(), opts.seed);
    if opts.has_flag("--trend") {
        trend(&opts);
        return;
    }
    let specs = selected_specs(&opts, &ALL_DATASETS);
    let mut train_table = Table::new("Fig. 9(a) — training time (s)", &METHODS);
    let mut gen_table = Table::new("Fig. 9(b) — generation time (s)", &METHODS);
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let mut train_row = Vec::new();
        let mut gen_row = Vec::new();
        for method in METHODS {
            let mut gen = make_method(method, opts.scale, opts.seed);
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ 0xF9)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", spec.name));
            train_row.push(run.fit_seconds);
            gen_row.push(run.generate_seconds);
        }
        train_table.push_row(spec.name.clone(), train_row);
        gen_table.push_row(spec.name.clone(), gen_row);
    }
    train_table.print();
    println!();
    gen_table.print();
    train_table.write_tsv(results_dir().join("fig9a_train.tsv")).expect("write results");
    gen_table.write_tsv(results_dir().join("fig9b_generate.tsv")).expect("write results");
    println!("\nwrote {}/fig9[a|b]_*.tsv", results_dir().display());
}

/// Fig. 9(c)/(d): running time against the number of timesteps on Bitcoin.
fn trend(opts: &RunOpts) {
    let base = vrdag_datasets::bitcoin().scaled(opts.scale.factor());
    let t_values = [5usize, 10, 15, 20, 25, 30, 35];
    let headers: Vec<String> = t_values.iter().map(|t| format!("T={t}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut train_table = Table::new("Fig. 9(c) — training time vs T (s), Bitcoin", &header_refs);
    let mut gen_table = Table::new("Fig. 9(d) — generation time vs T (s), Bitcoin", &header_refs);
    for method in METHODS {
        let mut train_row = Vec::new();
        let mut gen_row = Vec::new();
        for &t in &t_values {
            let spec = base.with_t(t);
            let graph = load_dataset(&spec, opts.seed);
            let mut gen = make_method(method, opts.scale, opts.seed);
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ t as u64)
                .unwrap_or_else(|e| panic!("{method} T={t}: {e}"));
            train_row.push(run.fit_seconds);
            gen_row.push(run.generate_seconds);
        }
        train_table.push_row(method, train_row);
        gen_table.push_row(method, gen_row);
    }
    train_table.print();
    println!();
    gen_table.print();
    train_table.write_tsv(results_dir().join("fig9c_train_trend.tsv")).expect("write results");
    gen_table.write_tsv(results_dir().join("fig9d_generate_trend.tsv")).expect("write results");
    println!("\nwrote {}/fig9[c|d]_*.tsv", results_dir().display());
}

//! **Appendix A-F parameter analysis** — sensitivity of VRDAG to its key
//! hyperparameters on Email: latent size `d_z`, hidden size `d_h`, mixture
//! components `K`, and GNN depth `L`. Reports the headline structure
//! metrics plus training time per configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vrdag::{Vrdag, VrdagConfig};
use vrdag_bench::harness::{load_dataset, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_metrics::attribute::attribute_report;
use vrdag_metrics::structure::structure_report;

fn run_config(
    label: &str,
    cfg: VrdagConfig,
    graph: &vrdag_graph::DynamicGraph,
    table: &mut Table,
    seed: u64,
) {
    let mut model = Vrdag::new(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let started = std::time::Instant::now();
    model.fit(graph, &mut rng).expect("fit");
    let train_s = started.elapsed().as_secs_f64();
    let generated = model.generate(graph.t_len(), &mut rng).expect("generate");
    let s = structure_report(graph, &generated);
    let a = attribute_report(graph, &generated);
    table.push_row(label, vec![s.in_deg_dist, s.out_deg_dist, s.clus_dist, a.jsd, train_s]);
}

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email"]);
    println!("Appendix A-F parameter analysis | scale={} seed={}\n", opts.scale.name(), opts.seed);
    let headers = ["In-deg dist", "Out-deg dist", "Clus dist", "JSD", "train (s)"];
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        let base = VrdagConfig {
            epochs: opts.scale.vrdag_epochs(),
            seed: opts.seed,
            ..VrdagConfig::default()
        };
        let mut table = Table::new(format!("Parameter analysis — {}", spec.name), &headers);
        for d_z in [4usize, 16, 32] {
            run_config(
                &format!("d_z={d_z}"),
                VrdagConfig { d_z, ..base.clone() },
                &graph,
                &mut table,
                opts.seed,
            );
        }
        for d_h in [16usize, 32, 64] {
            run_config(
                &format!("d_h={d_h}"),
                VrdagConfig { d_h, ..base.clone() },
                &graph,
                &mut table,
                opts.seed,
            );
        }
        for k in [1usize, 3, 5] {
            run_config(
                &format!("K={k}"),
                VrdagConfig { k_mix: k, ..base.clone() },
                &graph,
                &mut table,
                opts.seed,
            );
        }
        for l in [1usize, 2, 3] {
            run_config(
                &format!("L={l}"),
                VrdagConfig { gnn_layers: l, ..base.clone() },
                &graph,
                &mut table,
                opts.seed,
            );
        }
        table.print();
        println!();
        table
            .write_tsv(
                results_dir().join(format!("param_analysis_{}.tsv", spec.name.replace('@', "_"))),
            )
            .expect("write results");
    }
    println!("wrote {}/param_analysis_*.tsv", results_dir().display());
}

//! **Table I** — network structure generation performance: eight structure
//! metrics × six datasets × {GRAN, GenCAT, TagGen, Dymond, TGGAN, TIGGER,
//! VRDAG}. Dymond rows that hit the motif budget are reported as missing,
//! matching the paper's note that Dymond only runs on the smallest dataset.

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_graph::GeneratorError;
use vrdag_metrics::structure::{structure_report, StructureReport};

const METHODS: [&str; 7] = ["GRAN", "GenCAT", "TagGen", "Dymond", "TGGAN", "TIGGER", "VRDAG"];
const ALL_DATASETS: [&str; 6] = ["Email", "Bitcoin", "Wiki", "Guarantee", "Brain", "GDELT"];

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &ALL_DATASETS);
    println!(
        "Table I reproduction | scale={} seed={} ({} datasets)\n",
        opts.scale.name(),
        opts.seed,
        specs.len()
    );
    let headers = StructureReport::headers();
    let mut combined = Table::new("Table I (all datasets)", &headers);
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        println!(
            "-- {}: N={} M={} X={} T={}",
            spec.name,
            graph.n_nodes(),
            graph.temporal_edge_count(),
            graph.n_attrs(),
            graph.t_len()
        );
        let mut table = Table::new(format!("Table I — {}", spec.name), &headers);
        for method in METHODS {
            let mut gen = make_method(method, opts.scale, opts.seed);
            match fit_and_generate(&mut gen, &graph, opts.seed ^ 0x1AB1) {
                Ok(run) => {
                    let rep = structure_report(&graph, &run.generated);
                    table.push_row(method, rep.as_row().to_vec());
                    combined.push_row(format!("{}/{}", spec.name, method), rep.as_row().to_vec());
                }
                Err(GeneratorError::ResourceLimit(msg)) => {
                    eprintln!("   {method}: resource limit ({msg}) — skipped, as in the paper");
                    table.push_row_opt(method, vec![None; headers.len()]);
                    combined.push_row_opt(
                        format!("{}/{}", spec.name, method),
                        vec![None; headers.len()],
                    );
                }
                Err(e) => {
                    eprintln!("   {method}: failed: {e}");
                    table.push_row_opt(method, vec![None; headers.len()]);
                    combined.push_row_opt(
                        format!("{}/{}", spec.name, method),
                        vec![None; headers.len()],
                    );
                }
            }
        }
        table.print();
        println!();
    }
    let out = results_dir().join("table1.tsv");
    combined.write_tsv(&out).expect("write results");
    println!("wrote {}", out.display());
}

//! **Table II** — mean absolute error across Spearman's correlation
//! coefficients of attributes on Email and Guarantee (the two datasets
//! with ≥ 2 attribute dimensions), for {Normal, GenCAT, VRDAG}.

use vrdag_bench::harness::{fit_and_generate, load_dataset, make_method, selected_specs, RunOpts};
use vrdag_bench::report::{results_dir, Table};
use vrdag_metrics::attribute::spearman_mae;

const METHODS: [&str; 3] = ["Normal", "GenCAT", "VRDAG"];

fn main() {
    let opts = RunOpts::from_env();
    let specs = selected_specs(&opts, &["Email", "Guarantee"]);
    println!(
        "Table II reproduction (Spearman correlation MAE) | scale={} seed={}\n",
        opts.scale.name(),
        opts.seed
    );
    let mut table = Table::new("Table II", &METHODS);
    for spec in &specs {
        let graph = load_dataset(spec, opts.seed);
        assert!(graph.n_attrs() >= 2, "{} needs ≥2 attributes for correlation analysis", spec.name);
        let mut row = Vec::new();
        for method in METHODS {
            // VRDAG gets a 3x epoch budget here: correlation structure is
            // the slowest-converging part of the attribute decoder.
            let mut gen: Box<dyn vrdag_graph::DynamicGraphGenerator> = if method == "VRDAG" {
                Box::new(vrdag_bench::harness::vrdag_long(opts.scale, opts.seed, 3))
            } else {
                make_method(method, opts.scale, opts.seed)
            };
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ 0x7AB2)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", spec.name));
            row.push(spearman_mae(&graph, &run.generated));
        }
        table.push_row(spec.name.clone(), row);
    }
    table.print();
    let out = results_dir().join("table2.tsv");
    table.write_tsv(&out).expect("write results");
    println!("\nwrote {}", out.display());
}

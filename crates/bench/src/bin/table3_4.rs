//! **Tables III & IV** — scalability against the number of temporal edges
//! on GDELT: training time (Table III) and generation time (Table IV) for
//! {TagGen, TGGAN, TIGGER, VRDAG} as the edge stream is truncated to
//! increasing budgets (the paper uses 1k / 10k / 100k / 500k; scaled runs
//! use the same 1:10:100:500 ratio of the scaled stream).

use vrdag_bench::harness::{fit_and_generate, make_method, RunOpts};
use vrdag_bench::report::{results_dir, Table};

const METHODS: [&str; 4] = ["TagGen", "TGGAN", "TIGGER", "VRDAG"];

fn main() {
    let opts = RunOpts::from_env();
    let spec = vrdag_datasets::gdelt().scaled(opts.scale.factor());
    let full = vrdag_datasets::generate(&spec, opts.seed);
    let m_full = full.temporal_edge_count();
    // Paper budgets 1k/10k/100k/500k, proportionally rescaled.
    let budgets: Vec<usize> = [1_000f64, 10_000.0, 100_000.0, 500_000.0]
        .iter()
        .map(|&b| ((b / 566_735.0) * m_full as f64).round().max(64.0) as usize)
        .collect();
    println!(
        "Tables III/IV reproduction (scalability on GDELT) | scale={} seed={} M={}\n",
        opts.scale.name(),
        opts.seed,
        m_full
    );
    let headers: Vec<String> = budgets.iter().map(|b| format!("{b} edges")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut train_table = Table::new("Table III — training time (s)", &header_refs);
    let mut gen_table = Table::new("Table IV — generation time (s)", &header_refs);
    for method in METHODS {
        let mut train_row = Vec::new();
        let mut gen_row = Vec::new();
        for &budget in &budgets {
            let graph = full.truncate_temporal_edges(budget);
            let mut gen = make_method(method, opts.scale, opts.seed);
            let run = fit_and_generate(&mut gen, &graph, opts.seed ^ budget as u64)
                .unwrap_or_else(|e| panic!("{method} @{budget}: {e}"));
            train_row.push(run.fit_seconds);
            gen_row.push(run.generate_seconds);
        }
        train_table.push_row(method, train_row);
        gen_table.push_row(method, gen_row);
    }
    train_table.print();
    println!();
    gen_table.print();
    train_table.write_tsv(results_dir().join("table3_train.tsv")).expect("write results");
    gen_table.write_tsv(results_dir().join("table4_generate.tsv")).expect("write results");
    println!("\nwrote {}/table[3|4]_*.tsv", results_dir().display());
}

//! Shared experiment plumbing: scales, CLI options, dataset loading, the
//! method registry, and timed fit/generate runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use vrdag::{Vrdag, VrdagConfig};
use vrdag_baselines::{
    DymondLike, GenCatLike, GranLike, NormalBaseline, TagGenLike, TgganLike, TiggerLike,
};
use vrdag_datasets::DatasetSpec;
use vrdag_graph::{DynamicGraph, DynamicGraphGenerator, GeneratorError};

/// Experiment scale: fraction of the paper's dataset sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~8% of paper scale — seconds per experiment; the default.
    Small,
    /// ~25% of paper scale — minutes.
    Medium,
    /// Full Table I sizes — expect long runs on a laptop.
    Paper,
}

impl Scale {
    pub fn factor(&self) -> f64 {
        match self {
            Scale::Small => 0.08,
            Scale::Medium => 0.25,
            Scale::Paper => 1.0,
        }
    }

    /// VRDAG training epochs appropriate for the scale.
    pub fn vrdag_epochs(&self) -> usize {
        match self {
            Scale::Small => 12,
            Scale::Medium => 8,
            Scale::Paper => 5,
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Parsed command line shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct RunOpts {
    pub scale: Scale,
    pub seed: u64,
    /// Dataset name filter (empty = experiment default).
    pub datasets: Vec<String>,
    /// Extra flag bucket (e.g. `--trend` for fig9).
    pub flags: Vec<String>,
}

impl RunOpts {
    /// Parse `std::env::args()`. Unknown `--key value` pairs go to `flags`.
    pub fn from_env() -> RunOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    pub fn parse(args: &[String]) -> RunOpts {
        let mut opts =
            RunOpts { scale: Scale::Small, seed: 42, datasets: Vec::new(), flags: Vec::new() };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    opts.scale = Scale::parse(&args[i + 1])
                        .unwrap_or_else(|| panic!("unknown scale: {}", args[i + 1]));
                    i += 2;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--datasets" if i + 1 < args.len() => {
                    opts.datasets = args[i + 1].split(',').map(|s| s.trim().to_string()).collect();
                    i += 2;
                }
                other => {
                    opts.flags.push(other.to_string());
                    i += 1;
                }
            }
        }
        opts
    }

    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

/// The six paper datasets, filtered by the CLI and scaled.
pub fn selected_specs(opts: &RunOpts, default_names: &[&str]) -> Vec<DatasetSpec> {
    let names: Vec<String> = if opts.datasets.is_empty() {
        default_names.iter().map(|s| s.to_string()).collect()
    } else {
        opts.datasets.clone()
    };
    names
        .iter()
        .map(|n| {
            vrdag_datasets::by_name(n)
                .unwrap_or_else(|| panic!("unknown dataset: {n}"))
                .scaled(opts.scale.factor())
        })
        .collect()
}

/// Generate the "observed" graph for a spec (deterministic per seed).
pub fn load_dataset(spec: &DatasetSpec, seed: u64) -> DynamicGraph {
    vrdag_datasets::generate(spec, seed)
}

/// VRDAG configured for a scale.
pub fn vrdag_for_scale(scale: Scale, seed: u64) -> Vrdag {
    let cfg = VrdagConfig { epochs: scale.vrdag_epochs(), seed, ..VrdagConfig::default() };
    Vrdag::new(cfg)
}

/// VRDAG with an extended epoch budget (the attribute-focused experiments
/// — Table II, Fig. 3 — need the attribute decoder trained closer to
/// convergence; the Table I grid uses the shorter default).
pub fn vrdag_long(scale: Scale, seed: u64, epochs_multiplier: usize) -> Vrdag {
    let cfg = VrdagConfig {
        epochs: scale.vrdag_epochs() * epochs_multiplier.max(1),
        seed,
        ..VrdagConfig::default()
    };
    Vrdag::new(cfg)
}

/// Instantiate a generator by table name.
pub fn make_method(name: &str, scale: Scale, seed: u64) -> Box<dyn DynamicGraphGenerator> {
    match name {
        "VRDAG" => Box::new(vrdag_for_scale(scale, seed)),
        "TagGen" => Box::new(TagGenLike::with_defaults()),
        "TGGAN" => Box::new(TgganLike::with_defaults()),
        "TIGGER" => Box::new(TiggerLike::with_defaults()),
        "Dymond" => Box::new(DymondLike::with_defaults()),
        "GRAN" => Box::new(GranLike::with_defaults()),
        "GenCAT" => Box::new(GenCatLike::with_defaults()),
        "Normal" => Box::new(NormalBaseline::new()),
        other => panic!("unknown method: {other}"),
    }
}

/// Outcome of one timed fit + generate run.
pub struct TimedRun {
    pub generated: DynamicGraph,
    pub fit_seconds: f64,
    pub generate_seconds: f64,
}

/// Fit `method` on `graph` and generate a same-length sequence, timing both
/// stages. Errors (e.g. Dymond's motif budget) are passed through.
pub fn fit_and_generate(
    method: &mut Box<dyn DynamicGraphGenerator>,
    graph: &DynamicGraph,
    seed: u64,
) -> Result<TimedRun, GeneratorError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fit_started = Instant::now();
    method.fit(graph, &mut rng)?;
    let fit_seconds = fit_started.elapsed().as_secs_f64();
    let gen_started = Instant::now();
    let generated = method.generate(graph.t_len(), &mut rng)?;
    let generate_seconds = gen_started.elapsed().as_secs_f64();
    Ok(TimedRun { generated, fit_seconds, generate_seconds })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = RunOpts::parse(&[]);
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.seed, 42);
        assert!(o.datasets.is_empty());
    }

    #[test]
    fn parse_full_command_line() {
        let o = RunOpts::parse(&args(&[
            "--scale",
            "medium",
            "--seed",
            "7",
            "--datasets",
            "Email,Wiki",
            "--trend",
        ]));
        assert_eq!(o.scale, Scale::Medium);
        assert_eq!(o.seed, 7);
        assert_eq!(o.datasets, vec!["Email", "Wiki"]);
        assert!(o.has_flag("--trend"));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.factor() < Scale::Medium.factor());
        assert!(Scale::Medium.factor() < Scale::Paper.factor());
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn method_registry_knows_all_methods() {
        for name in ["VRDAG", "TagGen", "TGGAN", "TIGGER", "Dymond", "GRAN", "GenCAT", "Normal"] {
            let m = make_method(name, Scale::Small, 1);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn selected_specs_respects_filter() {
        let mut o = RunOpts::parse(&[]);
        o.datasets = vec!["Email".into()];
        let specs = selected_specs(&o, &["Email", "Wiki"]);
        assert_eq!(specs.len(), 1);
        assert!(specs[0].name.starts_with("Email"));
    }

    #[test]
    fn timed_run_produces_graph() {
        let spec = vrdag_datasets::tiny();
        let g = load_dataset(&spec, 3);
        let mut m = make_method("GenCAT", Scale::Small, 1);
        let run = fit_and_generate(&mut m, &g, 5).unwrap();
        assert_eq!(run.generated.t_len(), g.t_len());
        assert!(run.fit_seconds >= 0.0 && run.generate_seconds >= 0.0);
    }
}

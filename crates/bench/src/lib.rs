//! # vrdag-bench
//!
//! Experiment harness regenerating **every table and figure** of the VRDAG
//! paper's evaluation (§IV), plus Criterion micro-benchmarks.
//!
//! One binary per experiment (see DESIGN.md §3 for the full index):
//!
//! | Binary      | Paper artifact |
//! |-------------|----------------|
//! | `table1`    | Table I — 8 structure metrics × 6 datasets × 7 methods |
//! | `fig3`      | Fig. 3 — attribute JSD / EMD |
//! | `table2`    | Table II — Spearman correlation MAE |
//! | `fig4_6`    | Figs. 4–6 — temporal degree / clustering / coreness differences |
//! | `fig7_8`    | Figs. 7–8 — temporal attribute MAE / RMSE |
//! | `fig9`      | Fig. 9 — training / generation wall time (+ timestep trend) |
//! | `table3_4`  | Tables III/IV — scalability vs. temporal edge count |
//! | `fig10`     | Fig. 10 — data-augmentation case study |
//! | `ablation`  | Appendix A-E — component ablations |
//!
//! All binaries accept `--scale {small|medium|paper}` (default `small`),
//! `--seed N`, and `--datasets a,b,c`; results are printed as aligned
//! tables and written as TSV under `results/`.

pub mod harness;
pub mod report;

//! Result tables: aligned stdout rendering + TSV artifacts under
//! `results/`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple result table: a label column followed by numeric columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a fully populated row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.headers.len(), "row width mismatch");
        self.rows.push((label.into(), values.into_iter().map(Some).collect()));
    }

    /// Add a row that may contain missing entries (rendered as `—`, e.g.
    /// Dymond hitting its motif budget as in the paper's Table I).
    pub fn push_row_opt(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.headers.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    fn fmt_value(v: Option<f64>) -> String {
        match v {
            None => "—".to_string(),
            Some(x) => {
                if x == 0.0 {
                    "0".into()
                } else if x.abs() >= 1000.0 || (x.abs() < 0.001 && x != 0.0) {
                    format!("{x:.3e}")
                } else {
                    format!("{x:.4}")
                }
            }
        }
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let mut label_w = "".len();
        let mut cells: Vec<(String, Vec<String>)> = Vec::new();
        for (label, vals) in &self.rows {
            label_w = label_w.max(label.len());
            let rendered: Vec<String> = vals.iter().map(|&v| Self::fmt_value(v)).collect();
            for (w, c) in widths.iter_mut().zip(rendered.iter()) {
                *w = (*w).max(c.len());
            }
            cells.push((label.clone(), rendered));
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:label_w$}", "");
        for (h, w) in self.headers.iter().zip(widths.iter()) {
            let _ = write!(out, "  {h:>w$}");
        }
        let _ = writeln!(out);
        for (label, rendered) in &cells {
            let _ = write!(out, "{label:label_w$}");
            for (c, w) in rendered.iter().zip(widths.iter()) {
                let _ = write!(out, "  {c:>w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as TSV (tab-separated, `NA` for missing).
    pub fn write_tsv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "label")?;
        for h in &self.headers {
            write!(f, "\t{h}")?;
        }
        writeln!(f)?;
        for (label, vals) in &self.rows {
            write!(f, "{label}")?;
            for v in vals {
                match v {
                    Some(x) => write!(f, "\t{x}")?,
                    None => write!(f, "\tNA")?,
                }
            }
            writeln!(f)?;
        }
        f.flush()
    }
}

/// Canonical results directory (`results/` at the workspace root, or the
/// `VRDAG_RESULTS` override).
pub fn results_dir() -> PathBuf {
    std::env::var("VRDAG_RESULTS").map(PathBuf::from).unwrap_or_else(|_| PathBuf::from("results"))
}

/// A per-timestep series artifact (for the figure reproductions).
pub struct SeriesSet {
    pub title: String,
    /// (series name, values per timestep)
    pub series: Vec<(String, Vec<f64>)>,
}

impl SeriesSet {
    pub fn new(title: impl Into<String>) -> Self {
        SeriesSet { title: title.into(), series: Vec::new() }
    }

    pub fn push(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.series.push((name.into(), values));
    }

    /// Render aligned columns: timestep index + one column per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let t_max = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let _ = write!(out, "{:>4}", "t");
        for (name, _) in &self.series {
            let _ = write!(out, "  {name:>12}");
        }
        let _ = writeln!(out);
        for t in 0..t_max {
            let _ = write!(out, "{t:>4}");
            for (_, vals) in &self.series {
                match vals.get(t) {
                    Some(v) => {
                        let _ = write!(out, "  {v:>12.5}");
                    }
                    None => {
                        let _ = write!(out, "  {:>12}", "—");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// TSV with a `t` column.
    pub fn write_tsv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "t")?;
        for (name, _) in &self.series {
            write!(f, "\t{name}")?;
        }
        writeln!(f)?;
        let t_max = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        for t in 0..t_max {
            write!(f, "{t}")?;
            for (_, vals) in &self.series {
                match vals.get(t) {
                    Some(v) => write!(f, "\t{v}")?,
                    None => write!(f, "\tNA")?,
                }
            }
            writeln!(f)?;
        }
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row("x", vec![1.0, 0.00001]);
        t.push_row_opt("y", vec![None, Some(2.0)]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains('—'));
        assert!(r.contains("1.000e-5") || r.contains("1e-5") || r.contains("1.0000e-5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_width() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row("x", vec![1.0]);
    }

    #[test]
    fn tsv_round_trip_format() {
        let dir = std::env::temp_dir().join("vrdag_bench_test");
        let mut t = Table::new("demo", &["a"]);
        t.push_row("x", vec![0.5]);
        let path = dir.join("t.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "label\ta\nx\t0.5\n");
    }

    #[test]
    fn series_renders_and_writes() {
        let mut s = SeriesSet::new("series");
        s.push("orig", vec![1.0, 2.0]);
        s.push("gen", vec![1.5]);
        let r = s.render();
        assert!(r.contains("orig"));
        let dir = std::env::temp_dir().join("vrdag_bench_test");
        s.write_tsv(dir.join("s.tsv")).unwrap();
        let content = std::fs::read_to_string(dir.join("s.tsv")).unwrap();
        assert!(content.contains("NA"));
    }
}

//! Offline API-compatible subset of `bytes` 1.x (vendored; see
//! `crates/compat/README.md`): just the little-endian cursor surface the
//! binary graph format uses.

use std::sync::Arc;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            off += n;
            self.advance(n);
        }
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side extension for growable buffers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()), pos: 0 }
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: Arc::new(s.to_vec()), pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v), pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

/// Growable byte buffer (write side), frozen into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f32_le(1.5);
        b.put_u64_le(7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 16);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.get_u64_le(), 7);
        assert!(!frozen.has_remaining());
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32_le();
    }
}

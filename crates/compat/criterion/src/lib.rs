//! Offline API-compatible subset of `criterion` 0.5 (vendored; see
//! `crates/compat/README.md`).
//!
//! A simple wall-clock sampler: each benchmark is calibrated to a target
//! per-sample duration, run for `sample_size` samples, and reported as
//! min / mean / max nanoseconds per iteration on stdout. No statistical
//! analysis, no HTML reports — just enough to keep `cargo bench` useful
//! offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const TARGET_SAMPLE: Duration = Duration::from_millis(50);

/// Runs one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
}

#[derive(Clone, Copy, Debug)]
struct Stats {
    iters_per_sample: u64,
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

impl Bencher {
    fn run<O>(&self, mut f: impl FnMut() -> O) -> Stats {
        // Calibrate: how many iterations fit in the target sample time?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        Stats { iters_per_sample: iters, min_ns: min, mean_ns: mean, max_ns: max }
    }

    /// Measure `f`, criterion-style.
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        let stats = self.run(f);
        report(CURRENT_LABEL.with(|l| l.borrow().clone()), stats);
    }
}

thread_local! {
    static CURRENT_LABEL: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(label: String, s: Stats) {
    println!(
        "{label:<48} time: [{} {} {}]  ({} iters/sample)",
        fmt_ns(s.min_ns),
        fmt_ns(s.mean_ns),
        fmt_ns(s.max_ns),
        s.iters_per_sample
    );
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn bench_inner(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        CURRENT_LABEL.with(|l| *l.borrow_mut() = format!("{}/{}", self.name, label));
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b);
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.bench_inner(id.label, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let id = id.into();
        self.bench_inner(id.label, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        CURRENT_LABEL.with(|l| *l.borrow_mut() = name.to_string());
        let mut b = Bencher { samples: self.sample_size };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}

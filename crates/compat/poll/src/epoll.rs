//! Level-triggered `epoll(7)` backend through a thin hand-rolled FFI
//! layer. No `libc` crate is available offline, so the four syscall
//! wrappers the backend needs are declared directly; `std` already links
//! the C library on Linux, so the symbols resolve without any build
//! script. Cross-thread wakeups ride an `eventfd` registered under
//! [`crate::WAKE_TOKEN`].

use std::io;
use std::sync::Arc;
use std::time::Duration;

use crate::{Event, Interest, OsFd, Poller, Token, Waker, WAKE_TOKEN};

#[allow(non_camel_case_types)]
type c_int = i32;

// The kernel packs `struct epoll_event` on x86-64 (EPOLL_PACKED); other
// architectures use natural alignment. Getting this wrong corrupts the
// token on the way back out.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Owned `eventfd` descriptor shared between the poller and its
/// [`Waker`] clones; closed when the last handle drops.
pub(crate) struct EventFd {
    fd: OsFd,
}

impl EventFd {
    fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// Add 1 to the counter; wakes any `epoll_wait` watching the fd.
    /// Repeated signals coalesce (the counter saturates long before
    /// overflow matters) so this never blocks.
    pub(crate) fn signal(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the counter after a wakeup so level-triggered epoll stops
    /// reporting it.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

fn interest_mask(interest: Interest) -> u32 {
    let mut mask = EPOLLRDHUP;
    if interest.readable {
        mask |= EPOLLIN;
    }
    if interest.writable {
        mask |= EPOLLOUT;
    }
    mask
}

/// The Linux production backend: one `epoll` instance, level-triggered.
pub struct EpollPoller {
    epfd: OsFd,
    wake: Arc<EventFd>,
    buf: Vec<EpollEvent>,
}

// Capacity of the kernel-event staging buffer per poll call; more ready
// descriptors than this simply surface on the next (immediate) poll.
const EVENT_BATCH: usize = 1024;

impl EpollPoller {
    pub fn new() -> io::Result<EpollPoller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let wake = match EventFd::new() {
            Ok(w) => Arc::new(w),
            Err(e) => {
                unsafe {
                    close(epfd);
                }
                return Err(e);
            }
        };
        let mut poller =
            EpollPoller { epfd, wake, buf: vec![EpollEvent { events: 0, data: 0 }; EVENT_BATCH] };
        poller.ctl(EPOLL_CTL_ADD, poller.wake.fd, WAKE_TOKEN, Interest::READABLE)?;
        Ok(poller)
    }

    fn ctl(&mut self, op: c_int, fd: OsFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest_mask(interest), data: token as u64 };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }
}

impl Poller for EpollPoller {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: OsFd, token: Token, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved for the waker");
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: OsFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: OsFd, _token: Token) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round a sub-millisecond wait up so a short timeout never
            // degenerates into a busy spin.
            Some(d) => d.as_millis().clamp(1, c_int::MAX as u128) as c_int,
        };
        let n = loop {
            let ret = unsafe {
                epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as c_int, timeout_ms)
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let mask = raw.events;
            let token = raw.data as Token;
            if token == WAKE_TOKEN {
                self.wake.drain();
                events.push(Event { token, readable: true, writable: false });
                continue;
            }
            // Error/hangup conditions surface as ready-in-both-directions
            // so the caller attempts IO and observes the failure there.
            let broken = mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            events.push(Event {
                token,
                readable: broken || mask & EPOLLIN != 0,
                writable: broken || mask & EPOLLOUT != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker::from_eventfd(Arc::clone(&self.wake))
    }
}

impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

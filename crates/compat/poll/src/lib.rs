//! Minimal vendored readiness poller (the offline stand-in for `mio`).
//!
//! The serve frontend drives every connection off a single non-blocking
//! event loop; this crate supplies the readiness primitive under it. Two
//! interchangeable backends implement the same [`Poller`] trait:
//!
//! * [`epoll`] — level-triggered `epoll(7)` through a thin hand-rolled
//!   FFI layer (no `libc` crate; `std` already links the C library on
//!   Linux). A cross-thread [`Waker`] rides an `eventfd`.
//! * [`scan`] — a portable sharded scan loop with **advisory** readiness:
//!   every registered token is reported maybe-ready once per shard
//!   rotation, and correctness relies on callers doing non-blocking IO
//!   that tolerates `WouldBlock`. No OS facilities beyond `std`, so it
//!   compiles anywhere and doubles as the paranoia backend in CI.
//!
//! Backend choice: [`Backend::Auto`] picks epoll on Linux and the scan
//! loop elsewhere; the `VRDAG_POLLER` environment variable (`epoll` /
//! `scan`) overrides `Auto` at runtime so CI can force the fallback.
//!
//! The [`os`] module carries the small pieces of OS glue a C10K frontend
//! wants alongside the poller: raising `RLIMIT_NOFILE`, reading resident
//! set size, and widening a listener's accept backlog.

use std::fmt;
use std::io;
use std::time::Duration;

pub mod os;
pub mod scan;

#[cfg(target_os = "linux")]
pub mod epoll;

/// Identifies a registered source in readiness events. Callers pick the
/// values (the serve reactor uses slab indices); [`WAKE_TOKEN`] is
/// reserved for the cross-thread waker.
pub type Token = usize;

/// Token reserved for [`Waker`] wakeups; never register a source with it.
pub const WAKE_TOKEN: Token = usize::MAX;

/// Raw OS descriptor as a plain integer, so the trait stays portable.
/// The scan backend ignores it entirely; pass `-1` where no descriptor
/// exists (non-unix builds).
pub type OsFd = i32;

/// Extract the raw descriptor from a socket-like object.
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(s: &T) -> OsFd {
    s.as_raw_fd()
}

/// Non-unix fallback: there is no raw descriptor; the scan backend never
/// looks at it.
#[cfg(not(unix))]
pub fn raw_fd<T>(_s: &T) -> OsFd {
    -1
}

/// Which readiness directions a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness notification. Under the scan backend readiness is
/// advisory (the source may still return `WouldBlock`); under epoll a
/// closed/errored peer reports both directions so the caller attempts IO
/// and observes the error.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
}

/// A readiness poller. One thread owns the poller and calls
/// [`Poller::poll`] in a loop; [`Waker`] handles obtained via
/// [`Poller::waker`] may interrupt that wait from any thread.
pub trait Poller: Send {
    /// Backend name for logs and startup output (`"epoll"` / `"scan"`).
    fn name(&self) -> &'static str;

    /// Start watching `fd` under `token`.
    fn register(&mut self, fd: OsFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Change the interest set of an existing registration.
    fn reregister(&mut self, fd: OsFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Must be called before the descriptor closes.
    fn deregister(&mut self, fd: OsFd, token: Token) -> io::Result<()>;

    /// Wait for readiness, appending into `events` (cleared first).
    /// `None` blocks until an event or wakeup; `Some(d)` bounds the wait.
    /// A [`Waker::wake`] surfaces as an event with [`WAKE_TOKEN`].
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;

    /// A cheap cloneable handle that interrupts [`Poller::poll`] from
    /// other threads.
    fn waker(&self) -> Waker;
}

/// Cross-thread wakeup handle for a [`Poller`]. Cloning is cheap; waking
/// an already-pending waker coalesces.
#[derive(Clone)]
pub struct Waker {
    inner: WakerInner,
}

#[derive(Clone)]
enum WakerInner {
    #[cfg(target_os = "linux")]
    Eventfd(std::sync::Arc<epoll::EventFd>),
    Flag(std::sync::Arc<scan::WakeFlag>),
}

impl Waker {
    #[cfg(target_os = "linux")]
    pub(crate) fn from_eventfd(fd: std::sync::Arc<epoll::EventFd>) -> Waker {
        Waker { inner: WakerInner::Eventfd(fd) }
    }

    pub(crate) fn from_flag(flag: std::sync::Arc<scan::WakeFlag>) -> Waker {
        Waker { inner: WakerInner::Flag(flag) }
    }

    /// Interrupt the owning poller's current (or next) `poll` call.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Eventfd(fd) => fd.signal(),
            WakerInner::Flag(flag) => flag.raise(),
        }
    }
}

impl fmt::Debug for Waker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            #[cfg(target_os = "linux")]
            WakerInner::Eventfd(_) => f.write_str("Waker(eventfd)"),
            WakerInner::Flag(_) => f.write_str("Waker(flag)"),
        }
    }
}

/// Poller backend selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Platform default (epoll on Linux, scan loop elsewhere), still
    /// overridable by `VRDAG_POLLER`.
    #[default]
    Auto,
    Epoll,
    Scan,
}

impl Backend {
    /// Parse a backend name (`auto` / `epoll` / `scan`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Backend::Auto),
            "epoll" => Some(Backend::Epoll),
            "scan" => Some(Backend::Scan),
            _ => None,
        }
    }

    /// Apply the `VRDAG_POLLER` environment override on top of `self`.
    /// An explicit (non-`Auto`) selection wins over the environment; an
    /// unparseable variable is ignored.
    pub fn env_resolved(self) -> Backend {
        if self != Backend::Auto {
            return self;
        }
        match std::env::var("VRDAG_POLLER") {
            Ok(v) => Backend::parse(&v).unwrap_or(Backend::Auto),
            Err(_) => Backend::Auto,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Epoll => "epoll",
            Backend::Scan => "scan",
        })
    }
}

/// Client-side half of the readiness story: dial `addr` with a
/// deadline and hand back a stream already prepared for event-loop use
/// — `TCP_NODELAY` set (line protocols are one small write per
/// request) and the socket switched to non-blocking, ready to
/// [`Poller::register`]. The connect itself uses the OS timeout
/// (`TcpStream::connect_timeout`), so a dead backend costs at most
/// `timeout`, never a TCP-retry eternity.
pub fn connect_ready(
    addr: &std::net::SocketAddr,
    timeout: Duration,
) -> io::Result<std::net::TcpStream> {
    let stream = std::net::TcpStream::connect_timeout(addr, timeout)?;
    let _ = stream.set_nodelay(true);
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// One-shot client-side readiness wait: park the calling thread until
/// `fd` reports `interest`, returning `false` on timeout. A throwaway
/// poller is built per call — this is for *connection setup* paths
/// (waiting for a freshly dialed socket's first greeting or
/// writability), not per-request hot loops, which should own a
/// long-lived [`Poller`]. Under the scan backend readiness is advisory,
/// so a `true` return still requires `WouldBlock`-tolerant IO.
pub fn wait_ready(fd: OsFd, interest: Interest, timeout: Duration) -> io::Result<bool> {
    let mut poller = create(Backend::Auto)?;
    poller.register(fd, 0, interest)?;
    let deadline = std::time::Instant::now() + timeout;
    let mut events = Vec::new();
    let ready = loop {
        let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
            break false;
        };
        poller.poll(&mut events, Some(left))?;
        if events.iter().any(|e| {
            e.token == 0 && (e.readable && interest.readable || e.writable && interest.writable)
        }) {
            break true;
        }
    };
    poller.deregister(fd, 0)?;
    Ok(ready)
}

/// Construct a poller for `backend` (after [`Backend::env_resolved`]).
/// `Auto` resolves to epoll on Linux and the scan loop elsewhere.
/// Requesting epoll on a platform without it is an error rather than a
/// silent substitution.
pub fn create(backend: Backend) -> io::Result<Box<dyn Poller>> {
    match backend.env_resolved() {
        Backend::Scan => Ok(Box::new(scan::ScanPoller::new())),
        #[cfg(target_os = "linux")]
        Backend::Auto | Backend::Epoll => Ok(Box::new(epoll::EpollPoller::new()?)),
        #[cfg(not(target_os = "linux"))]
        Backend::Auto => Ok(Box::new(scan::ScanPoller::new())),
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll poller is only available on linux; use the scan backend",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn exercise_poller(mut poller: Box<dyn Poller>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(raw_fd(&listener), 7, Interest::READABLE).unwrap();

        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();

        // The listener must become readable (accept-ready) within the
        // deadline under either backend.
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut accepted = None;
        while accepted.is_none() {
            assert!(std::time::Instant::now() < deadline, "no accept readiness before deadline");
            poller.poll(&mut events, Some(Duration::from_millis(50))).unwrap();
            for ev in &events {
                if ev.token == 7 && ev.readable {
                    match listener.accept() {
                        Ok((s, _)) => accepted = Some(s),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("accept: {e}"),
                    }
                }
            }
        }
        let server = accepted.unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(raw_fd(&server), 9, Interest::BOTH).unwrap();

        // Data from the client surfaces as read readiness on the server
        // side of the pair.
        let mut client = client;
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut server = server;
        while got.len() < 4 {
            assert!(std::time::Instant::now() < deadline, "no data before deadline");
            poller.poll(&mut events, Some(Duration::from_millis(50))).unwrap();
            for ev in &events {
                if ev.token == 9 && ev.readable {
                    let mut buf = [0u8; 16];
                    match server.read(&mut buf) {
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read: {e}"),
                    }
                }
            }
        }
        assert_eq!(&got, b"ping");

        poller.deregister(raw_fd(&server), 9).unwrap();
        poller.deregister(raw_fd(&listener), 7).unwrap();
    }

    #[test]
    fn scan_poller_delivers_readiness() {
        exercise_poller(Box::new(scan::ScanPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_delivers_readiness() {
        exercise_poller(Box::new(epoll::EpollPoller::new().unwrap()));
    }

    fn exercise_waker(mut poller: Box<dyn Poller>) {
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        let deadline = start + Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "waker never fired");
            poller.poll(&mut events, Some(Duration::from_secs(2))).unwrap();
            if events.iter().any(|e| e.token == WAKE_TOKEN) {
                break;
            }
        }
        // A wake must cut the 2s wait short, not ride it out.
        assert!(start.elapsed() < Duration::from_secs(2), "wake did not interrupt the wait");
        handle.join().unwrap();
    }

    #[test]
    fn scan_waker_interrupts_poll() {
        exercise_waker(Box::new(scan::ScanPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_waker_interrupts_poll() {
        exercise_waker(Box::new(epoll::EpollPoller::new().unwrap()));
    }

    #[test]
    fn connect_ready_dials_and_waits() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = connect_ready(&addr, Duration::from_secs(5)).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        // The fresh connection must report writable promptly…
        assert!(wait_ready(raw_fd(&client), Interest::WRITABLE, Duration::from_secs(5)).unwrap());
        // …and readable once the server greets it. (Advisory under the
        // scan backend; both backends converge on the actual read.)
        server.write_all(b"hi\n").unwrap();
        assert!(wait_ready(raw_fd(&client), Interest::READABLE, Duration::from_secs(5)).unwrap());
        let mut client = client;
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 3 {
            assert!(std::time::Instant::now() < deadline, "greeting never arrived");
            let mut buf = [0u8; 8];
            match client.read(&mut buf) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("read: {e}"),
            }
        }
        assert_eq!(&got, b"hi\n");
        // A dead address fails within the deadline instead of hanging.
        drop(listener);
        assert!(connect_ready(&addr, Duration::from_millis(500)).is_err());
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [Backend::Auto, Backend::Epoll, Backend::Scan] {
            assert_eq!(Backend::parse(&b.to_string()), Some(b));
        }
        assert_eq!(Backend::parse("bogus"), None);
        assert_eq!(Backend::Scan.env_resolved(), Backend::Scan);
    }
}

//! Small OS helpers a high-connection-count frontend wants next to the
//! poller: file-descriptor limits, resident-set-size measurement, and
//! listener backlog widening. Everything degrades to a no-op (`None`)
//! off Linux — callers treat these as best-effort.

#[cfg(target_os = "linux")]
mod linux {
    #[allow(non_camel_case_types)]
    type c_int = i32;

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
        fn listen(sockfd: c_int, backlog: c_int) -> c_int;
        fn sysconf(name: c_int) -> i64;
    }

    const SC_PAGESIZE: c_int = 30;

    pub fn raise_nofile_limit() -> Option<u64> {
        let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return None;
        }
        if lim.rlim_cur < lim.rlim_max {
            let raised = Rlimit { rlim_cur: lim.rlim_max, rlim_max: lim.rlim_max };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                return Some(lim.rlim_max);
            }
        }
        Some(lim.rlim_cur)
    }

    pub fn current_rss_bytes() -> Option<u64> {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        let page = unsafe { sysconf(SC_PAGESIZE) };
        if page <= 0 {
            return None;
        }
        Some(resident_pages * page as u64)
    }

    pub fn widen_backlog(fd: i32, backlog: i32) -> bool {
        // Calling listen() again on a listening socket just updates the
        // backlog on Linux.
        unsafe { listen(fd, backlog) == 0 }
    }
}

/// Raise the process soft `RLIMIT_NOFILE` to its hard limit. Returns the
/// resulting soft limit, or `None` when the limit cannot be read
/// (non-Linux builds).
pub fn raise_nofile_limit() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        linux::raise_nofile_limit()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Current resident set size of this process in bytes (from
/// `/proc/self/statm`), or `None` when unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        linux::current_rss_bytes()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Widen an already-listening socket's accept backlog (the `std`
/// listener binds with a small default, which a connection burst at C5K
/// scale overflows). Best-effort: returns whether the resize took.
pub fn widen_backlog(fd: crate::OsFd, backlog: i32) -> bool {
    #[cfg(target_os = "linux")]
    {
        linux::widen_backlog(fd, backlog)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (fd, backlog);
        false
    }
}

#[cfg(test)]
mod tests {
    #[cfg(target_os = "linux")]
    #[test]
    fn rss_and_nofile_report_sane_values() {
        let rss = super::current_rss_bytes().expect("statm readable on linux");
        assert!(rss > 0);
        let soft = super::raise_nofile_limit().expect("rlimit readable on linux");
        assert!(soft >= 64, "suspicious nofile limit {soft}");
    }
}

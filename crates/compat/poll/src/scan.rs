//! Portable fallback backend: a sharded non-blocking scan loop.
//!
//! There is no OS readiness facility here at all. Every registered token
//! is reported *maybe-ready* (per its interest set) once per shard
//! rotation, and the caller's non-blocking IO discovers the truth —
//! `WouldBlock` on a not-actually-ready source is expected and harmless.
//! Registrations are scanned in shards of `SCAN_SHARD` with a short
//! condvar wait between polls, so idle cost stays bounded (one tick per
//! `SCAN_TICK`) and per-tick work stays bounded at high registration
//! counts: with `n` tokens a source is revisited every
//! `ceil(n / SCAN_SHARD)` ticks.

use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::{Event, Interest, OsFd, Poller, Token, Waker, WAKE_TOKEN};

/// Maximum tokens reported per poll call.
const SCAN_SHARD: usize = 256;

/// Pause between scan rounds when nothing woke the poller.
const SCAN_TICK: Duration = Duration::from_millis(1);

/// Condvar-backed wake flag shared with [`Waker`] clones.
pub(crate) struct WakeFlag {
    raised: Mutex<bool>,
    cv: Condvar,
}

impl WakeFlag {
    fn new() -> WakeFlag {
        WakeFlag { raised: Mutex::new(false), cv: Condvar::new() }
    }

    pub(crate) fn raise(&self) {
        let mut raised = self.raised.lock().unwrap_or_else(|e| e.into_inner());
        *raised = true;
        self.cv.notify_one();
    }

    /// Wait up to `timeout` for a raise; returns and clears the flag.
    fn consume_within(&self, timeout: Duration) -> bool {
        let mut raised = self.raised.lock().unwrap_or_else(|e| e.into_inner());
        if !*raised && !timeout.is_zero() {
            let (guard, _) = self
                .cv
                .wait_timeout_while(raised, timeout, |r| !*r)
                .unwrap_or_else(|e| e.into_inner());
            raised = guard;
        }
        std::mem::take(&mut raised)
    }
}

/// The no-OS-facilities backend; see the module docs for semantics.
pub struct ScanPoller {
    registered: BTreeMap<Token, Interest>,
    cursor: Token,
    wake: Arc<WakeFlag>,
}

impl ScanPoller {
    pub fn new() -> ScanPoller {
        ScanPoller { registered: BTreeMap::new(), cursor: 0, wake: Arc::new(WakeFlag::new()) }
    }
}

impl Default for ScanPoller {
    fn default() -> Self {
        ScanPoller::new()
    }
}

impl Poller for ScanPoller {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn register(&mut self, _fd: OsFd, token: Token, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved for the waker");
        self.registered.insert(token, interest);
        Ok(())
    }

    fn reregister(&mut self, _fd: OsFd, token: Token, interest: Interest) -> io::Result<()> {
        self.registered.insert(token, interest);
        Ok(())
    }

    fn deregister(&mut self, _fd: OsFd, token: Token) -> io::Result<()> {
        self.registered.remove(&token);
        Ok(())
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // Pace the loop: wait one tick (or the caller's shorter timeout)
        // unless a waker fires first. With sources registered we must
        // keep ticking to notice IO, so the tick caps the wait.
        let wait = match timeout {
            _ if !self.registered.is_empty() => timeout.map_or(SCAN_TICK, |t| t.min(SCAN_TICK)),
            Some(t) => t,
            None => Duration::from_millis(100),
        };
        if self.wake.consume_within(wait) {
            events.push(Event { token: WAKE_TOKEN, readable: true, writable: false });
        }
        // Report the next shard of registrations as maybe-ready, resuming
        // after the previous round's cursor so every token gets a turn.
        let mut last = None;
        for (&token, &interest) in self
            .registered
            .range(self.cursor..)
            .chain(self.registered.range(..self.cursor))
            .take(SCAN_SHARD)
        {
            events.push(Event { token, readable: interest.readable, writable: interest.writable });
            last = Some(token);
        }
        self.cursor = match last {
            Some(t) => t.wrapping_add(1),
            None => 0,
        };
        Ok(())
    }

    fn waker(&self) -> Waker {
        Waker::from_flag(Arc::clone(&self.wake))
    }
}

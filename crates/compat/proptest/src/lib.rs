//! Offline API-compatible subset of `proptest` 1.x (vendored; see
//! `crates/compat/README.md`).
//!
//! Supports the surface used by this workspace's property tests:
//! [`strategy::Strategy`] with ranges, tuples, and `prop_map`;
//! `prop::collection::vec`; [`test_runner::ProptestConfig`]; and the
//! [`proptest!`] / `prop_assert*!` macros. Inputs are generated from a
//! deterministic per-test seed (derived from the test name), so failures
//! reproduce; there is **no shrinking** — a failing case is reported
//! as-is by the standard panic machinery.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// `proptest::strategy::Just` — always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec` — a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Subset of proptest's config: only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-(test, case) seed: FNV-1a over the test name
    /// mixed with the case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ ((case as u64) << 1 | 1)
    }

    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        TestRng::seed_from_u64(case_seed(test_name, case))
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u32..5, 0u32..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn prop_map_applies(s in (0usize..4).prop_map(|n| vec![7u8; n])) {
            prop_assert!(s.len() < 4);
            prop_assert!(s.iter().all(|&x| x == 7));
        }
    }

    #[test]
    fn seeds_are_test_and_case_specific() {
        use crate::test_runner::case_seed;
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }
}

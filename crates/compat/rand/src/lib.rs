//! Offline API-compatible subset of `rand` 0.8 (vendored; see
//! `crates/compat/README.md`).
//!
//! Implements the exact surface the workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] (a xoshiro256++
//! stream seeded via SplitMix64 — *not* bit-compatible with upstream's
//! ChaCha12, but deterministic and of comparable statistical quality),
//! and [`rngs::mock::StepRng`].

use std::ops::Range;

/// Low-level source of randomness (object-safe).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open `Range` (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // 128-bit widening multiply: unbiased enough for test use.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = lo + (hi - lo) * u;
        // Guard against hi being reached through rounding.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Convenience extension over [`RngCore`], blanket-implemented.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (matches upstream's
    /// approach, though the downstream generator differs).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// A mock RNG yielding an arithmetic progression (for tests).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, step: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let len = chunk.len();
                    chunk.copy_from_slice(&bytes[..len]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn uniform_mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynref: &mut dyn RngCore = &mut rng;
        let _ = dynref.next_u64();
        // &mut dyn RngCore also implements RngCore (and thus Rng helpers
        // via free functions operating on ?Sized receivers).
        let _ = <f64 as super::Standard>::sample_standard(dynref);
    }
}

//! Offline API-compatible subset of `serde` 1.x (vendored; see
//! `crates/compat/README.md`).
//!
//! Exposes `Serialize` / `Deserialize` as both marker traits and no-op
//! derive macros, mirroring upstream's type- and macro-namespace overlap.
//! No serializer exists in-tree yet, so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! Nothing in-tree consumes serde impls yet (no serializer is vendored),
//! so the derives only need to make `#[derive(Serialize, Deserialize)]`
//! compile. They intentionally emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Hyperparameter configuration for the VRDAG model.

use serde::{Deserialize, Serialize};

/// Attribute reconstruction criterion (Eq. 18 vs. the MSE ablation of
/// Appendix A-E).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrLoss {
    /// Scaled cosine error `(1 − cos)^α` — the paper's choice.
    Sce,
    /// Mean squared error — the common alternative the paper argues against.
    Mse,
}

/// All hyperparameters of VRDAG. Field names follow the paper's notation
/// where one exists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VrdagConfig {
    /// Hidden node-state dimensionality `d_h` (GRU state `H_t`).
    pub d_h: usize,
    /// Latent variable dimensionality `d_z` (`Z_t`).
    pub d_z: usize,
    /// Bi-flow encoder output dimensionality `d_ε`.
    pub d_e: usize,
    /// Time2Vec dimensionality `d_T` (Eq. 13).
    pub d_t: usize,
    /// Number of bi-flow message passing layers `L` (Eq. 5).
    pub gnn_layers: usize,
    /// Number of mixture components `K` of the MixBernoulli sampler
    /// (Eq. 11).
    pub k_mix: usize,
    /// Hidden width of the pairwise decoder MLPs `f_α` / `f_θ`. These MLPs
    /// are constrained to two layers so generation can exploit the
    /// `W(s_i − s_j) = W s_i − W s_j` factorization (DESIGN.md §5).
    pub decoder_hidden: usize,
    /// GAT head width of the attribute decoder (Eq. 12).
    pub gat_hidden: usize,
    /// Scaling factor `α ≥ 1` of the SCE loss (Eq. 18).
    pub sce_alpha: f32,
    /// Attribute reconstruction criterion.
    pub attr_loss: AttrLoss,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs (full passes over the snapshot sequence).
    pub epochs: usize,
    /// Negative samples `Q` per node for the structure BCE (the paper's
    /// complexity analysis carries a `N·Q` term for exactly this).
    pub neg_samples: usize,
    /// Reference nodes `R` sampled to approximate the `Σ_j f_α(s_i − s_j)`
    /// mixture-weight sum during training (exact at generation).
    pub alpha_ref_samples: usize,
    /// Truncated-BPTT window: hidden states detach every this many
    /// timesteps to bound tape memory on long sequences.
    pub tbptt_window: usize,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Weight of the KL prior-regularization term (Eq. 15).
    pub kl_weight: f32,
    /// Weight of the attribute reconstruction term.
    pub attr_weight: f32,
    /// Weight of a small MSE grounding term added to the SCE attribute
    /// loss. Eq. 18's cosine error is scale-invariant (and for F = 1 it
    /// reduces to a sign check), so a light magnitude anchor is needed to
    /// keep generated attribute values on the data's scale; set to 0 for
    /// the pure-Eq. 18 ablation.
    pub attr_mse_anchor: f32,
    /// Leaky-ReLU slope used throughout (the paper's ω).
    pub leaky_slope: f32,
    /// Ablation: bidirectional (in + out) message passing vs. out-flow only.
    pub bi_flow: bool,
    /// Ablation: include the Time2Vec timestep embedding in the GRU input.
    pub use_time2vec: bool,
    /// Ablation: carry hidden state across timesteps (false resets `H` each
    /// step, destroying temporal dependency — the "static VAE" ablation).
    pub use_recurrence: bool,
    /// Calibrate generation-time edge probabilities so the expected edge
    /// count matches the training sequence (negative sampling biases raw
    /// probabilities; see DESIGN.md §5).
    pub calibrate_density: bool,
    /// Affinely calibrate generated attributes per dimension to the
    /// training snapshot's moments (the attribute analogue of density
    /// calibration; scale is unidentifiable under the SCE loss).
    pub calibrate_attributes: bool,
    /// RNG seed for parameter initialization and sampling.
    pub seed: u64,
}

impl Default for VrdagConfig {
    fn default() -> Self {
        VrdagConfig {
            d_h: 32,
            d_z: 16,
            d_e: 32,
            d_t: 8,
            gnn_layers: 2,
            k_mix: 3,
            decoder_hidden: 32,
            gat_hidden: 32,
            sce_alpha: 2.0,
            attr_loss: AttrLoss::Sce,
            lr: 3e-3,
            epochs: 30,
            neg_samples: 5,
            alpha_ref_samples: 16,
            tbptt_window: 8,
            grad_clip: 5.0,
            kl_weight: 1.0,
            attr_weight: 2.0,
            attr_mse_anchor: 0.5,
            leaky_slope: 0.2,
            bi_flow: true,
            use_time2vec: true,
            use_recurrence: true,
            calibrate_density: true,
            calibrate_attributes: true,
            seed: 0x5EED,
        }
    }
}

impl VrdagConfig {
    /// A configuration sized for unit tests: small widths, few epochs.
    pub fn test_small() -> Self {
        VrdagConfig {
            d_h: 8,
            d_z: 4,
            d_e: 8,
            d_t: 4,
            gnn_layers: 2,
            k_mix: 2,
            decoder_hidden: 8,
            gat_hidden: 8,
            epochs: 3,
            neg_samples: 3,
            alpha_ref_samples: 4,
            tbptt_window: 4,
            ..Default::default()
        }
    }

    /// Dimensionality of the per-node decoder state `s_i = [z_i ‖ h_i]`.
    pub fn d_s(&self) -> usize {
        self.d_z + self.d_h
    }

    /// Validate invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.d_h == 0 || self.d_z == 0 || self.d_e == 0 {
            return Err("dimensions must be positive".into());
        }
        if self.d_t < 1 {
            return Err("Time2Vec needs at least the linear component".into());
        }
        if self.gnn_layers == 0 {
            return Err("need at least one GNN layer".into());
        }
        if self.k_mix == 0 {
            return Err("need at least one mixture component".into());
        }
        if self.sce_alpha < 1.0 {
            return Err("Eq. 18 requires α ≥ 1".into());
        }
        if self.tbptt_window == 0 {
            return Err("tbptt_window must be ≥ 1".into());
        }
        if !(self.leaky_slope > 0.0 && self.leaky_slope < 1.0) {
            return Err("leaky_slope must be in (0,1)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(VrdagConfig::default().validate().is_ok());
        assert!(VrdagConfig::test_small().validate().is_ok());
    }

    #[test]
    fn d_s_is_sum_of_latent_and_hidden() {
        let c = VrdagConfig::default();
        assert_eq!(c.d_s(), c.d_z + c.d_h);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad_alpha = VrdagConfig { sce_alpha: 0.5, ..Default::default() };
        assert!(bad_alpha.validate().is_err());
        let bad_k = VrdagConfig { k_mix: 0, ..Default::default() };
        assert!(bad_k.validate().is_err());
        let bad_slope = VrdagConfig { leaky_slope: 1.5, ..Default::default() };
        assert!(bad_slope.validate().is_err());
    }
}

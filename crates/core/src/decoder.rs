//! The attributed graph generator (§III-C): the **MixBernoulli sampler**
//! for directed topology (Eq. 11) and the **GAT attribute decoder**
//! (Eq. 12), factorized per Eq. 10 (structure first, attributes conditioned
//! on the generated structure).
//!
//! Training evaluates the pairwise MLPs `f_α`, `f_θ` on *sampled* pairs
//! (positives + `Q` negatives per node, with importance weights that keep
//! the expected loss equal to the full-matrix BCE of Eq. 17). Generation
//! evaluates **all** `N²` pairs using the difference factorization: the
//! first Linear layer distributes over `s_i − s_j`, so `W·s_i` is
//! precomputed once and each pair costs only `O(h + hK)` — the CPU analogue
//! of the paper's batched GPU decode (DESIGN.md §5).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::rc::Rc;
use vrdag_graph::Snapshot;
use vrdag_tensor::nn::{Activation, Linear, Mlp};
use vrdag_tensor::ops::{self, Segments};
use vrdag_tensor::{par, Matrix, Tensor};

/// Sampled pair batch for the structure reconstruction loss (Eq. 17 with
/// negative sampling).
pub struct PairBatch {
    /// Source node of every pair.
    pub src: Rc<Vec<u32>>,
    /// Destination node of every pair.
    pub dst: Rc<Vec<u32>>,
    /// 1.0 for observed edges, 0.0 for sampled non-edges; `[P, 1]`.
    pub targets: Rc<Matrix>,
    /// Importance weights: 1 for positives, `(N−1−deg⁺_i)/Q` for negatives.
    pub weights: Rc<Matrix>,
}

impl PairBatch {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// Sample the Eq. 17 training pairs for one snapshot: every observed edge
/// as a positive plus `q` random non-edges per node.
pub fn sample_pair_batch(s: &Snapshot, q: usize, rng: &mut impl Rng) -> PairBatch {
    let n = s.n_nodes();
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for i in 0..n {
        let outs = s.out_adj().neighbors(i);
        for &j in outs {
            src.push(i as u32);
            dst.push(j);
            targets.push(1.0);
            weights.push(1.0);
        }
        let non_edges = (n - 1).saturating_sub(outs.len());
        if non_edges == 0 || q == 0 {
            continue;
        }
        let w_neg = non_edges as f32 / q as f32;
        let mut drawn = 0usize;
        let mut guard = 0usize;
        while drawn < q && guard < 20 * q {
            guard += 1;
            let j = rng.gen_range(0..n) as u32;
            if j as usize == i || outs.binary_search(&j).is_ok() {
                continue;
            }
            src.push(i as u32);
            dst.push(j);
            targets.push(0.0);
            weights.push(w_neg);
            drawn += 1;
        }
    }
    let p = src.len();
    PairBatch {
        src: Rc::new(src),
        dst: Rc::new(dst),
        targets: Rc::new(Matrix::from_vec(p, 1, targets)),
        weights: Rc::new(Matrix::from_vec(p, 1, weights)),
    }
}

/// The MixBernoulli topology sampler (Eq. 11).
#[derive(Clone)]
pub struct MixBernoulliDecoder {
    f_alpha: Mlp,
    f_theta: Mlp,
    k: usize,
    slope: f32,
}

impl MixBernoulliDecoder {
    /// `d_s = d_z + d_h` is the per-node decoder state width; `hidden` the
    /// MLP width; `k` the number of mixture components.
    pub fn new(d_s: usize, hidden: usize, k: usize, slope: f32, rng: &mut impl Rng) -> Self {
        let act = Activation::LeakyRelu(slope);
        let f_alpha = Mlp::new(&[d_s, hidden, k], act, Activation::Identity, rng);
        let f_theta = Mlp::new(&[d_s, hidden, k], act, Activation::Identity, rng);
        // Bias the edge logits negative so the initial model is sparse
        // (graphs have density ≪ 0.5; without this the first epochs decode
        // near-complete graphs).
        f_theta.layer(1).bias.update_value(|b| b.fill(-2.5));
        MixBernoulliDecoder { f_alpha, f_theta, k, slope }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Training-time mixture weights `α ∈ [n, K]` (Eq. 11): the sum
    /// `Σ_j f_α(s_i − s_j)` is approximated with `r` shared reference nodes
    /// scaled by `n/r` (exact at generation).
    pub fn alpha_train(&self, s: &Tensor, n: usize, r: usize, rng: &mut impl Rng) -> Tensor {
        let r = r.max(1).min(n);
        let refs: Vec<u32> = (0..r).map(|_| rng.gen_range(0..n) as u32).collect();
        let mut src = Vec::with_capacity(n * r);
        let mut dst = Vec::with_capacity(n * r);
        for i in 0..n as u32 {
            for &j in &refs {
                src.push(i);
                dst.push(j);
            }
        }
        let src = Rc::new(src);
        let d = ops::sub(&ops::gather_rows(s, Rc::clone(&src)), &ops::gather_rows(s, Rc::new(dst)));
        let f = self.f_alpha.forward(&d);
        let pooled = ops::scatter_add_rows(&f, src, n);
        ops::softmax_rows(&ops::scale(&pooled, n as f32 / r as f32))
    }

    /// Per-pair edge probabilities `p_ij = Σ_k α_{k,i} θ_{k,i,j}` for a
    /// sampled batch; `[P, 1]`.
    pub fn pair_probs(&self, s: &Tensor, alpha: &Tensor, batch: &PairBatch) -> Tensor {
        let d = ops::sub(
            &ops::gather_rows(s, Rc::clone(&batch.src)),
            &ops::gather_rows(s, Rc::clone(&batch.dst)),
        );
        let theta = ops::sigmoid(&self.f_theta.forward(&d));
        let alpha_pairs = ops::gather_rows(alpha, Rc::clone(&batch.src));
        ops::sum_cols(&ops::mul(&alpha_pairs, &theta))
    }

    /// Negative-sampled BCE structure loss (Eq. 17), normalized by `|V|`.
    pub fn structure_loss(
        &self,
        s: &Tensor,
        alpha: &Tensor,
        batch: &PairBatch,
        n: usize,
    ) -> Tensor {
        let p = self.pair_probs(s, alpha, batch);
        ops::bce_probs(&p, Rc::clone(&batch.targets), Some(Rc::clone(&batch.weights)), n as f32)
    }

    /// Materialize the decode-time weight plan once (see [`DecodePlan`]).
    ///
    /// Generation calls this once per job and reuses the plan across every
    /// snapshot step, instead of cloning all eight weight matrices out of
    /// the autograd tensors on every `generate_edges` call.
    pub fn plan(&self) -> DecodePlan {
        DecodePlan {
            w1a: self.f_alpha.layer(0).weight.value_clone(),
            b1a: self.f_alpha.layer(0).bias.value_clone(),
            w2a: self.f_alpha.layer(1).weight.value_clone(),
            b2a: self.f_alpha.layer(1).bias.value_clone(),
            w1t: self.f_theta.layer(0).weight.value_clone(),
            b1t: self.f_theta.layer(0).bias.value_clone(),
            w2t: self.f_theta.layer(1).weight.value_clone(),
            b2t: self.f_theta.layer(1).bias.value_clone(),
            k: self.k,
            slope: self.slope,
        }
    }

    /// One-shot full-adjacency generation (Algorithm 1, line 4).
    ///
    /// Convenience wrapper that builds a fresh [`DecodePlan`] per call;
    /// steady-state generation should build the plan once and call
    /// [`DecodePlan::generate_edges`] per step.
    pub fn generate_edges(&self, s: &Matrix, m_target: Option<f64>, seed: u64) -> Vec<(u32, u32)> {
        self.plan().generate_edges(s, m_target, seed)
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.f_alpha.parameters();
        p.extend(self.f_theta.parameters());
        p
    }
}

/// Decode-time snapshot of the [`MixBernoulliDecoder`] weights.
///
/// The weights are fixed for the whole of a generation job, so the serving
/// hot path materializes them out of the `Rc`-based autograd tensors once
/// (`MixBernoulliDecoder::plan`) and reuses the buffers for every snapshot —
/// part of the per-step arena reuse, alongside the `OnceLock`-cached CSR
/// builds in `vrdag_graph::Snapshot`.
#[derive(Clone, Debug)]
pub struct DecodePlan {
    w1a: Matrix,
    b1a: Matrix,
    w2a: Matrix,
    b2a: Matrix,
    w1t: Matrix,
    b1t: Matrix,
    w2t: Matrix,
    b2t: Matrix,
    k: usize,
    slope: f32,
}

impl DecodePlan {
    /// One-shot full-adjacency generation (Algorithm 1, line 4).
    ///
    /// `s` is the `[n, d_s]` decoder state matrix; `m_target` optionally
    /// calibrates the expected edge count (see `VrdagConfig::
    /// calibrate_density`); `seed` drives deterministic per-row RNG so the
    /// parallel decode is reproducible regardless of thread count: each row
    /// derives its own `splitmix64` stream from the job seed and the inner
    /// float loops run in serial per-row order, so chunk boundaries chosen
    /// by `par::num_threads()` never change the output bytes.
    pub fn generate_edges(&self, s: &Matrix, m_target: Option<f64>, seed: u64) -> Vec<(u32, u32)> {
        let n = s.rows();
        if n < 2 {
            return Vec::new();
        }
        let k = self.k;
        let (w2a, b1a, b2a) = (&self.w2a, &self.b1a, &self.b2a);
        let (w2t, b1t, b2t) = (&self.w2t, &self.b1t, &self.b2t);
        // First-layer precompute: U = S·W1 (+ b1 at pair time).
        let h = self.w1a.cols();
        let ua = s.matmul(&self.w1a);
        let ut = s.matmul(&self.w1t);
        let slope = self.slope;
        let calibrate = m_target.is_some();

        // Pass A: exact mixture weights per row (Eq. 11's Σ_j), plus — when
        // calibrating — the expected edge mass per row.
        struct RowStat {
            alpha: Vec<f32>,
            expected: f64,
        }
        impl Default for RowStat {
            fn default() -> Self {
                RowStat { alpha: Vec::new(), expected: 0.0 }
            }
        }
        impl Clone for RowStat {
            fn clone(&self) -> Self {
                RowStat { alpha: self.alpha.clone(), expected: self.expected }
            }
        }
        let stats: Vec<RowStat> = par::par_map_collect(n, 1, |i| {
            let mut acc = vec![0.0f64; k];
            let mut theta_sum = vec![0.0f64; k];
            let ua_i = ua.row(i);
            let ut_i = ut.row(i);
            let mut ha = vec![0.0f32; h];
            let mut ht = vec![0.0f32; h];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let ua_j = ua.row(j);
                for x in 0..h {
                    let v = ua_i[x] - ua_j[x] + b1a.data()[x];
                    ha[x] = if v > 0.0 { v } else { slope * v };
                }
                for kk in 0..k {
                    let mut o = b2a.data()[kk];
                    for x in 0..h {
                        o += ha[x] * w2a.get(x, kk);
                    }
                    acc[kk] += o as f64;
                }
                if calibrate {
                    let ut_j = ut.row(j);
                    for x in 0..h {
                        let v = ut_i[x] - ut_j[x] + b1t.data()[x];
                        ht[x] = if v > 0.0 { v } else { slope * v };
                    }
                    for kk in 0..k {
                        let mut o = b2t.data()[kk];
                        for x in 0..h {
                            o += ht[x] * w2t.get(x, kk);
                        }
                        theta_sum[kk] += (1.0 / (1.0 + (-o).exp())) as f64;
                    }
                }
            }
            // Softmax over K.
            let mx = acc.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = acc.iter().map(|&a| (a - mx).exp()).collect();
            let z: f64 = exps.iter().sum();
            let alpha: Vec<f32> = exps.iter().map(|&e| (e / z) as f32).collect();
            let expected: f64 =
                alpha.iter().zip(theta_sum.iter()).map(|(&a, &t)| a as f64 * t).sum();
            RowStat { alpha, expected }
        });

        let c = match m_target {
            Some(target) => {
                let e_total: f64 = stats.iter().map(|r| r.expected).sum();
                if e_total > 1e-9 {
                    (target / e_total).clamp(1e-4, 1e4)
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        // Pass B: choose a mixture component per row and Bernoulli-sample
        // its adjacency list (rows are independent given α — the paper's
        // "different rows can be computed in parallel").
        let rows: Vec<Vec<u32>> = par::par_map_collect(n, 1, |i| {
            let mut rng = StdRng::seed_from_u64(splitmix64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            let alpha = &stats[i].alpha;
            let kk = sample_categorical(alpha, &mut rng);
            let ut_i = ut.row(i);
            let mut out = Vec::new();
            let mut ht = vec![0.0f32; h];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let ut_j = ut.row(j);
                for x in 0..h {
                    let v = ut_i[x] - ut_j[x] + b1t.data()[x];
                    ht[x] = if v > 0.0 { v } else { slope * v };
                }
                let mut o = b2t.data()[kk];
                for x in 0..h {
                    o += ht[x] * w2t.get(x, kk);
                }
                let theta = 1.0 / (1.0 + (-o as f64).exp());
                let p = (c * theta).min(1.0);
                if (rng.gen::<f64>()) < p {
                    out.push(j as u32);
                }
            }
            out
        });

        let mut edges = Vec::with_capacity(rows.iter().map(|r| r.len()).sum());
        for (i, dsts) in rows.into_iter().enumerate() {
            for j in dsts {
                edges.push((i as u32, j));
            }
        }
        edges
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn sample_categorical(probs: &[f32], rng: &mut impl RngCore) -> usize {
    let total: f32 = probs.iter().sum();
    let mut x = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32 * total;
    for (i, &p) in probs.iter().enumerate() {
        if x < p {
            return i;
        }
        x -= p;
    }
    probs.len() - 1
}

/// The GAT-based attribute decoder (Eq. 12): one attention head over the
/// generated structure followed by an output MLP.
#[derive(Clone)]
pub struct AttributeDecoder {
    w: Linear,
    a_src: Linear,
    a_dst: Linear,
    mlp: Mlp,
    slope: f32,
}

impl AttributeDecoder {
    pub fn new(
        d_s: usize,
        gat_hidden: usize,
        f_out: usize,
        slope: f32,
        rng: &mut impl Rng,
    ) -> Self {
        AttributeDecoder {
            w: Linear::new(d_s, gat_hidden, rng),
            a_src: Linear::new(gat_hidden, 1, rng),
            a_dst: Linear::new(gat_hidden, 1, rng),
            mlp: Mlp::new(
                &[gat_hidden, gat_hidden, f_out],
                Activation::LeakyRelu(slope),
                Activation::Identity,
                rng,
            ),
            slope,
        }
    }

    /// Decode attributes from decoder states `s = [Z_t ‖ H_{t−1}]` and edge
    /// arrays (with self-loops; see [`gat_arrays`]).
    pub fn forward(
        &self,
        s: &Tensor,
        src: &Rc<Vec<u32>>,
        dst: &Rc<Vec<u32>>,
        segments: &Rc<Segments>,
        n: usize,
    ) -> Tensor {
        let hmat = self.w.forward(s);
        let hs = ops::gather_rows(&hmat, Rc::clone(src));
        let hd = ops::gather_rows(&hmat, Rc::clone(dst));
        let e = ops::leaky_relu(
            &ops::add(&self.a_src.forward(&hs), &self.a_dst.forward(&hd)),
            self.slope,
        );
        let att = ops::segment_softmax(&e, Rc::clone(segments));
        let msg = ops::mul_col(&hs, &att);
        let agg = ops::scatter_add_rows(&msg, Rc::clone(dst), n);
        self.mlp.forward(&agg)
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w.parameters();
        p.extend(self.a_src.parameters());
        p.extend(self.a_dst.parameters());
        p.extend(self.mlp.parameters());
        p
    }
}

/// Build the GAT edge arrays for a directed edge list: self-loops are
/// appended so isolated nodes still attend to themselves, messages flow
/// src → dst, and attention is normalized per destination.
pub fn gat_arrays(n: usize, edges: &[(u32, u32)]) -> (Rc<Vec<u32>>, Rc<Vec<u32>>, Rc<Segments>) {
    let m = edges.len() + n;
    let mut src = Vec::with_capacity(m);
    let mut dst = Vec::with_capacity(m);
    for &(u, v) in edges {
        src.push(u);
        dst.push(v);
    }
    for i in 0..n as u32 {
        src.push(i);
        dst.push(i);
    }
    let segments = Segments::group(&dst, n);
    (Rc::new(src), Rc::new(dst), Rc::new(segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag_tensor::no_grad;

    fn toy_snapshot() -> Snapshot {
        Snapshot::new(6, vec![(0, 1), (0, 2), (1, 2), (3, 4), (4, 5), (5, 3)], Matrix::zeros(6, 2))
    }

    #[test]
    fn pair_batch_contains_all_positives() {
        let s = toy_snapshot();
        let mut rng = StdRng::seed_from_u64(1);
        let b = sample_pair_batch(&s, 3, &mut rng);
        let positives = b.targets.data().iter().filter(|&&t| t == 1.0).count();
        assert_eq!(positives, s.n_edges());
        // Negatives carry the importance weight (n-1-deg)/q.
        for p in 0..b.len() {
            if b.targets.data()[p] == 0.0 {
                let i = b.src[p] as usize;
                let expect = (5 - s.out_adj().neighbors(i).len()) as f32 / 3.0;
                assert!((b.weights.data()[p] - expect).abs() < 1e-6);
                // Negative pairs must not be edges.
                assert!(!s.has_edge(b.src[p], b.dst[p]));
            }
        }
    }

    #[test]
    fn alpha_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let dec = MixBernoulliDecoder::new(6, 8, 3, 0.2, &mut rng);
        let s = Tensor::constant(Matrix::rand_uniform(10, 6, -1.0, 1.0, &mut rng));
        let a = dec.alpha_train(&s, 10, 4, &mut rng).value_clone();
        for i in 0..10 {
            let sum: f32 = a.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn structure_loss_is_finite_and_trainable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dec = MixBernoulliDecoder::new(4, 8, 2, 0.2, &mut rng);
        let snap = toy_snapshot();
        let s = Tensor::param(Matrix::rand_uniform(6, 4, -0.5, 0.5, &mut rng));
        let batch = sample_pair_batch(&snap, 2, &mut rng);
        let alpha = dec.alpha_train(&s, 6, 3, &mut rng);
        let loss = dec.structure_loss(&s, &alpha, &batch, 6);
        assert!(loss.item().is_finite());
        loss.backward();
        for p in dec.parameters() {
            assert!(p.grad().is_some(), "decoder parameter missing grad");
        }
        assert!(s.grad().is_some());
    }

    #[test]
    fn generate_edges_is_deterministic_and_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        let dec = MixBernoulliDecoder::new(4, 8, 2, 0.2, &mut rng);
        let s = Matrix::rand_uniform(20, 4, -1.0, 1.0, &mut rng);
        let e1 = dec.generate_edges(&s, Some(30.0), 99);
        let e2 = dec.generate_edges(&s, Some(30.0), 99);
        assert_eq!(e1, e2, "same seed must give same edges");
        for &(u, v) in &e1 {
            assert!(u != v && (u as usize) < 20 && (v as usize) < 20);
        }
    }

    #[test]
    fn calibration_steers_edge_count() {
        let mut rng = StdRng::seed_from_u64(5);
        let dec = MixBernoulliDecoder::new(4, 8, 2, 0.2, &mut rng);
        let s = Matrix::rand_uniform(40, 4, -1.0, 1.0, &mut rng);
        let target = 120.0;
        let edges = dec.generate_edges(&s, Some(target), 7);
        let m = edges.len() as f64;
        assert!(
            m > 0.4 * target && m < 2.5 * target,
            "calibrated edge count {m} far from target {target}"
        );
    }

    #[test]
    fn generation_matches_training_probabilities() {
        // For K components, marginal p̄_ij from pair_probs must equal the
        // α-weighted sigmoid the generator uses internally; spot-check via
        // the expected count under calibration off: generate many times and
        // compare the empirical rate of one pair. Cheaper: check that with
        // a strongly negative θ bias generation yields no edges.
        let mut rng = StdRng::seed_from_u64(6);
        let dec = MixBernoulliDecoder::new(4, 8, 2, 0.2, &mut rng);
        dec.f_theta.layer(1).bias.update_value(|b| b.fill(-30.0));
        let s = Matrix::rand_uniform(15, 4, -1.0, 1.0, &mut rng);
        let edges = dec.generate_edges(&s, None, 1);
        assert!(edges.is_empty(), "θ ≈ 0 must generate an empty graph");
    }

    #[test]
    fn gat_attribute_decoder_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(7);
        let dec = AttributeDecoder::new(6, 8, 3, 0.2, &mut rng);
        let snap = toy_snapshot();
        let (src, dst, segs) = gat_arrays(6, snap.edges());
        let s = Tensor::param(Matrix::rand_uniform(6, 6, -1.0, 1.0, &mut rng));
        let x = dec.forward(&s, &src, &dst, &segs, 6);
        assert_eq!(x.shape(), (6, 3));
        let loss = ops::sum_all(&x);
        loss.backward();
        for p in dec.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn gat_handles_isolated_nodes_via_self_loops() {
        let mut rng = StdRng::seed_from_u64(8);
        let dec = AttributeDecoder::new(4, 4, 2, 0.2, &mut rng);
        let (src, dst, segs) = gat_arrays(3, &[]); // no edges at all
        let s = Tensor::constant(Matrix::ones(3, 4));
        let x = no_grad(|| dec.forward(&s, &src, &dst, &segs, 3));
        assert_eq!(x.shape(), (3, 2));
        assert!(!x.value_clone().has_non_finite());
    }

    #[test]
    fn splitmix_is_stable() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn categorical_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&[0.1, 0.6, 0.3], &mut rng)] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
        assert!(counts[0] > 100);
    }
}

//! The bi-flow graph encoder ε (§III-B.2, Eq. 5–7): GIN-style message
//! passing over the in-neighborhood and the out-neighborhood separately,
//! fused per layer by a shared aggregation MLP, with jump-connection
//! pooling over all layers.

use rand::Rng;
use std::rc::Rc;
use vrdag_tensor::nn::{Activation, Mlp};
use vrdag_tensor::ops::{self, SparseAdj};
use vrdag_tensor::{Matrix, Tensor};

/// Bi-flow message-passing encoder producing `ε(v_i,t) ∈ R^{d_ε}` for every
/// node of a snapshot.
#[derive(Clone)]
pub struct BiFlowEncoder {
    f_in: Vec<Mlp>,
    f_out: Vec<Mlp>,
    eps_in: Vec<Tensor>,
    eps_out: Vec<Tensor>,
    /// Shared across layers, per the paper ("shares weights across
    /// different layers").
    f_agg: Mlp,
    f_pool: Mlp,
    bi_flow: bool,
    d_hidden: usize,
    d_out: usize,
}

impl BiFlowEncoder {
    /// `d_input` is the node feature width (attributes + structural
    /// features), `d_hidden` the per-layer width, `d_out` the ε dimension.
    /// `bi_flow = false` gives the uni-flow (out-neighborhood only)
    /// ablation of Appendix A-E.
    pub fn new(
        d_input: usize,
        d_hidden: usize,
        d_out: usize,
        layers: usize,
        slope: f32,
        bi_flow: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(layers >= 1);
        let hidden_act = Activation::LeakyRelu(slope);
        let mk_flow = |d_in: usize, rng: &mut _| {
            Mlp::new(&[d_in, d_hidden, d_hidden], hidden_act, Activation::Identity, rng)
        };
        let mut f_in = Vec::with_capacity(layers);
        let mut f_out = Vec::with_capacity(layers);
        let mut eps_in = Vec::with_capacity(layers);
        let mut eps_out = Vec::with_capacity(layers);
        for l in 0..layers {
            let d_in = if l == 0 { d_input } else { d_hidden };
            f_in.push(mk_flow(d_in, rng));
            f_out.push(mk_flow(d_in, rng));
            eps_in.push(Tensor::param(Matrix::zeros(1, 1)));
            eps_out.push(Tensor::param(Matrix::zeros(1, 1)));
        }
        let agg_in_dim = if bi_flow { 2 * d_hidden } else { d_hidden };
        let f_agg = Mlp::new(&[agg_in_dim, d_hidden], hidden_act, hidden_act, rng);
        let f_pool = Mlp::new(&[layers * d_hidden, d_out], hidden_act, Activation::Identity, rng);
        BiFlowEncoder { f_in, f_out, eps_in, eps_out, f_agg, f_pool, bi_flow, d_hidden, d_out }
    }

    pub fn n_layers(&self) -> usize {
        self.f_in.len()
    }

    pub fn d_out(&self) -> usize {
        self.d_out
    }

    pub fn d_hidden(&self) -> usize {
        self.d_hidden
    }

    /// Encode a snapshot: `feats` is `[n, d_input]`, adjacency is given in
    /// both directions. Returns `[n, d_ε]`.
    pub fn forward(
        &self,
        feats: &Tensor,
        in_adj: &Rc<SparseAdj>,
        out_adj: &Rc<SparseAdj>,
    ) -> Tensor {
        let mut h = feats.clone();
        let mut per_layer = Vec::with_capacity(self.n_layers());
        for l in 0..self.n_layers() {
            // (1 + ε)·h + Σ_{neighbors} h  (Eq. 5), per direction.
            let gin_branch = |adj: &Rc<SparseAdj>, eps: &Tensor, f: &Mlp| {
                let agg = ops::spmm_sum(Rc::clone(adj), &h);
                let self_term = ops::add(&h, &ops::mul_scalar_t(&h, eps));
                f.forward(&ops::add(&self_term, &agg))
            };
            let out_h = gin_branch(out_adj, &self.eps_out[l], &self.f_out[l]);
            h = if self.bi_flow {
                let in_h = gin_branch(in_adj, &self.eps_in[l], &self.f_in[l]);
                // Eq. 6: h = f_agg([in_h ‖ out_h]).
                self.f_agg.forward(&ops::concat_cols(&[&in_h, &out_h]))
            } else {
                self.f_agg.forward(&out_h)
            };
            per_layer.push(h.clone());
        }
        // Eq. 7: jump connection over all hop levels.
        let refs: Vec<&Tensor> = per_layer.iter().collect();
        self.f_pool.forward(&ops::concat_cols(&refs))
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for l in 0..self.n_layers() {
            if self.bi_flow {
                p.extend(self.f_in[l].parameters());
                p.push(self.eps_in[l].clone());
            }
            p.extend(self.f_out[l].parameters());
            p.push(self.eps_out[l].clone());
        }
        p.extend(self.f_agg.parameters());
        p.extend(self.f_pool.parameters());
        p
    }
}

/// Build the encoder input features of a snapshot: node attributes
/// augmented with log-scaled in/out degree (gives the encoder a structural
/// signal even on attribute-poor graphs).
pub fn snapshot_features(s: &vrdag_graph::Snapshot) -> Matrix {
    let n = s.n_nodes();
    let f = s.n_attrs();
    let mut out = Matrix::zeros(n, f + 2);
    for i in 0..n {
        let row = out.row_mut(i);
        row[..f].copy_from_slice(s.attrs().row(i));
        row[f] = (1.0 + s.in_degree(i) as f32).ln();
        row[f + 1] = (1.0 + s.out_degree(i) as f32).ln();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag_graph::Snapshot;

    fn toy_adj() -> (Rc<SparseAdj>, Rc<SparseAdj>) {
        // 0 -> 1, 1 -> 2, 2 -> 0 ring.
        let out = Rc::new(SparseAdj::from_lists(&[vec![1], vec![2], vec![0]]));
        let inn = Rc::new(SparseAdj::from_lists(&[vec![2], vec![0], vec![1]]));
        (inn, out)
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = BiFlowEncoder::new(4, 8, 6, 2, 0.2, true, &mut rng);
        let (inn, out) = toy_adj();
        let feats = Tensor::constant(Matrix::ones(3, 4));
        let e = enc.forward(&feats, &inn, &out);
        assert_eq!(e.shape(), (3, 6));
    }

    #[test]
    fn uni_flow_has_fewer_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let bi = BiFlowEncoder::new(4, 8, 6, 2, 0.2, true, &mut rng);
        let uni = BiFlowEncoder::new(4, 8, 6, 2, 0.2, false, &mut rng);
        assert!(uni.parameters().len() < bi.parameters().len());
    }

    #[test]
    fn encoder_is_direction_sensitive() {
        // Swapping in/out adjacency must change the embedding (bi-flow
        // preserves directional information).
        let mut rng = StdRng::seed_from_u64(3);
        let enc = BiFlowEncoder::new(2, 8, 4, 2, 0.2, true, &mut rng);
        let feats = Tensor::constant(Matrix::from_fn(3, 2, |r, _| r as f32));
        // Asymmetric graph: 0->1, 0->2.
        let out = Rc::new(SparseAdj::from_lists(&[vec![1, 2], vec![], vec![]]));
        let inn = Rc::new(SparseAdj::from_lists(&[vec![], vec![0], vec![0]]));
        let a = enc.forward(&feats, &inn, &out).value_clone();
        let b = enc.forward(&feats, &out, &inn).value_clone();
        let diff: f32 = a.data().iter().zip(b.data().iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "bi-flow encoder ignored edge direction");
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = BiFlowEncoder::new(3, 4, 4, 2, 0.2, true, &mut rng);
        let (inn, out) = toy_adj();
        let feats = Tensor::constant(Matrix::ones(3, 3));
        let loss = ops::sum_all(&enc.forward(&feats, &inn, &out));
        loss.backward();
        for (i, p) in enc.parameters().iter().enumerate() {
            assert!(p.grad().is_some(), "parameter {i} has no gradient");
        }
    }

    #[test]
    fn snapshot_features_include_degrees() {
        let s = Snapshot::new(3, vec![(0, 1), (0, 2)], Matrix::ones(3, 1));
        let f = snapshot_features(&s);
        assert_eq!(f.shape(), (3, 3));
        assert_eq!(f.get(0, 0), 1.0); // attribute
        assert_eq!(f.get(0, 1), (1.0f32).ln()); // in-degree 0
        assert!((f.get(0, 2) - (3.0f32).ln()).abs() < 1e-6); // out-degree 2
    }

    #[test]
    fn isolated_graph_still_encodes() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = BiFlowEncoder::new(2, 4, 4, 1, 0.2, true, &mut rng);
        let empty = Rc::new(SparseAdj::from_lists(&[vec![], vec![]]));
        let feats = Tensor::constant(Matrix::ones(2, 2));
        let e = enc.forward(&feats, &empty, &empty);
        assert_eq!(e.shape(), (2, 4));
        assert!(!e.value_clone().has_non_finite());
    }
}

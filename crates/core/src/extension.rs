//! The §III-H extension: flexible node deletion and addition during
//! generation.
//!
//! * **Deletion** — each node carries a counter of consecutive timesteps of
//!   isolation; once it reaches `t_del` the node is deactivated: its hidden
//!   state is removed from the recurrence (zeroed) and it can no longer
//!   source or receive edges.
//! * **Addition** — a predictor estimates the number of newly appearing
//!   nodes `N_add` per step (fitted as the mean first-activity rate of the
//!   training sequence, sampled as Poisson). Initial hidden states for the
//!   added nodes are drawn from `p_ω = N(h̄_t, σ_t)`, a Gaussian around the
//!   mean active hidden state — the parameterized-initial-state scheme the
//!   paper sketches.

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use crate::model::Vrdag;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use vrdag_graph::generator::GeneratorError;
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::{no_grad, ops, Matrix, Tensor};

/// Parameters of the node-churn extension.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Consecutive isolated steps before a node is deleted (`T_del`).
    pub t_del: usize,
    /// Enable the node-addition predictor.
    pub enable_addition: bool,
    /// Fraction of nodes active at `t = 0` (the rest form the reservoir
    /// from which additions are drawn).
    pub initial_active_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { t_del: 3, enable_addition: true, initial_active_fraction: 0.7 }
    }
}

/// Sample a Poisson variate by inversion (λ small in this use case).
fn sample_poisson(lambda: f64, rng: &mut impl Rng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

impl Vrdag {
    /// Algorithm 1 with node churn (§III-H): nodes disappear after `t_del`
    /// isolated steps and new nodes appear at the learned first-activity
    /// rate. The node universe is still `0..n`; "added" nodes are drawn
    /// from the inactive reservoir, so downstream metrics keep working on a
    /// fixed-size node set.
    pub fn generate_with_churn(
        &self,
        t_len: usize,
        churn: &ChurnConfig,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let modules = self.modules.as_ref().ok_or(GeneratorError::NotFitted)?;
        let stats = self.stats.as_ref().ok_or(GeneratorError::NotFitted)?;
        let n = modules.n;
        let f = modules.f;
        let lambda_add = stats.mean_new_active_per_step;
        let mut local_rng = StdRng::seed_from_u64(rng.next_u64());

        let snapshots = no_grad(|| {
            // Weight plan built once per run, reused across every step.
            let plan = modules.decoder.plan();
            let mut h = Matrix::zeros(n, self.cfg.d_h);
            let mut active: Vec<bool> =
                (0..n).map(|_| (local_rng.gen::<f64>()) < churn.initial_active_fraction).collect();
            if !active.iter().any(|&a| a) {
                active[0] = true;
            }
            let mut isolation = vec![0usize; n];
            let mut out = Vec::with_capacity(t_len);

            for t in 0..t_len {
                let h_t = Tensor::constant(h.clone());
                let (mu_p, lv_p) = modules.prior.forward(&h_t);
                let z = crate::latent::reparam_sample(&mu_p, &lv_p, &mut local_rng);
                let s = ops::concat_cols(&[&z, &h_t]);
                let s_mat = s.value_clone();
                let m_target = if self.cfg.calibrate_density {
                    let idx = t.min(stats.edges_per_step.len().saturating_sub(1));
                    stats.edges_per_step.get(idx).copied()
                } else {
                    None
                };
                let mut edges = plan.generate_edges(&s_mat, m_target, local_rng.gen());
                // Deletion semantics: inactive nodes neither source nor
                // receive edges.
                edges.retain(|&(u, v)| active[u as usize] && active[v as usize]);

                let attrs = if f > 0 {
                    let (src, dst, segs) = crate::decoder::gat_arrays(n, &edges);
                    modules.attr_dec.forward(&s, &src, &dst, &segs, n).value_clone()
                } else {
                    Matrix::zeros(n, 0)
                };
                let snapshot = Snapshot::new(n, edges, attrs);

                // Update isolation counters and deactivate stale nodes.
                for i in 0..n {
                    if !active[i] {
                        continue;
                    }
                    let isolated = snapshot.in_degree(i) == 0 && snapshot.out_degree(i) == 0;
                    if isolated {
                        isolation[i] += 1;
                        if isolation[i] >= churn.t_del {
                            active[i] = false;
                        }
                    } else {
                        isolation[i] = 0;
                    }
                }

                // Recurrence update on the generated snapshot.
                let feats = Tensor::constant(crate::encoder::snapshot_features(&snapshot));
                let in_adj = std::rc::Rc::new(snapshot.in_adj().clone());
                let out_adj = std::rc::Rc::new(snapshot.out_adj().clone());
                let enc = modules.encoder.forward(&feats, &in_adj, &out_adj);
                let gru_in = if self.cfg.use_time2vec {
                    let tv = modules.t2v.forward_broadcast(t, n);
                    ops::concat_cols(&[&enc, &z, &tv])
                } else {
                    ops::concat_cols(&[&enc, &z])
                };
                h = modules.gru.forward(&gru_in, &h_t).value_clone();

                // Zero the hidden state of deleted nodes ("remove its hidden
                // node state in the sequential generation").
                for i in 0..n {
                    if !active[i] {
                        h.row_mut(i).iter_mut().for_each(|x| *x = 0.0);
                    }
                }

                // Addition: activate N_add reservoir nodes with p_ω-sampled
                // initial hidden states.
                if churn.enable_addition {
                    let n_add = sample_poisson(lambda_add, &mut local_rng);
                    if n_add > 0 {
                        let (mean_h, std_h) = active_hidden_moments(&h, &active, self.cfg.d_h);
                        let inactive: Vec<usize> = (0..n).filter(|&i| !active[i]).collect();
                        for &i in inactive.iter().take(n_add) {
                            active[i] = true;
                            isolation[i] = 0;
                            for (c, slot) in h.row_mut(i).iter_mut().enumerate() {
                                let u1: f32 = local_rng.gen_range(f32::EPSILON..1.0);
                                let u2: f32 = local_rng.gen_range(0.0f32..1.0);
                                let z0 = (-2.0 * u1.ln()).sqrt()
                                    * (2.0 * std::f32::consts::PI * u2).cos();
                                *slot = mean_h[c] + std_h[c] * z0;
                            }
                        }
                    }
                }

                out.push(snapshot);
            }
            out
        });
        Ok(DynamicGraph::new(snapshots))
    }
}

/// Column-wise mean and std of the hidden states of active nodes (the
/// `h̄_t` statistic of §III-H).
fn active_hidden_moments(h: &Matrix, active: &[bool], d_h: usize) -> (Vec<f32>, Vec<f32>) {
    let mut mean = vec![0.0f32; d_h];
    let mut count = 0usize;
    for (i, &a) in active.iter().enumerate() {
        if a {
            for (m, &v) in mean.iter_mut().zip(h.row(i)) {
                *m += v;
            }
            count += 1;
        }
    }
    if count == 0 {
        return (mean, vec![0.1; d_h]);
    }
    mean.iter_mut().for_each(|m| *m /= count as f32);
    let mut var = vec![0.0f32; d_h];
    for (i, &a) in active.iter().enumerate() {
        if a {
            for ((v, &x), &m) in var.iter_mut().zip(h.row(i)).zip(mean.iter()) {
                *v += (x - m) * (x - m);
            }
        }
    }
    let std: Vec<f32> = var.iter().map(|&v| (v / count.max(1) as f32).sqrt().max(1e-3)).collect();
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VrdagConfig;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5000;
        let total: usize = (0..n).map(|_| sample_poisson(2.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "poisson mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn churn_generation_produces_valid_graph() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 8);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        model.fit(&g, &mut rng).unwrap();
        let out = model.generate_with_churn(5, &ChurnConfig::default(), &mut rng).unwrap();
        assert_eq!(out.t_len(), 5);
        assert_eq!(out.n_nodes(), g.n_nodes());
    }

    #[test]
    fn churn_before_fit_errors() {
        let model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(3);
        assert!(model.generate_with_churn(2, &ChurnConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn active_hidden_moments_handles_empty() {
        let h = Matrix::zeros(3, 4);
        let (m, s) = active_hidden_moments(&h, &[false, false, false], 4);
        assert_eq!(m, vec![0.0; 4]);
        assert!(s.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn deletion_reduces_active_participation() {
        // With aggressive deletion (t_del = 1) and no addition, later
        // snapshots should involve at most as many distinct nodes.
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 4);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        model.fit(&g, &mut rng).unwrap();
        let churn = ChurnConfig { t_del: 1, enable_addition: false, initial_active_fraction: 0.5 };
        let out = model.generate_with_churn(6, &churn, &mut rng).unwrap();
        let active_nodes = |s: &Snapshot| {
            let mut set = std::collections::HashSet::new();
            for &(u, v) in s.edges() {
                set.insert(u);
                set.insert(v);
            }
            set
        };
        let first = active_nodes(out.snapshot(0));
        let last = active_nodes(out.snapshot(out.t_len() - 1));
        // Every node active late must have been... not necessarily a subset
        // (sampling), but the active set must not grow without addition.
        assert!(last.len() <= first.len().max(1) + 2);
    }
}

//! The latent variable sampler (§III-B): conditional prior
//! `p_φ(z_{i,t} | h_{i,t−1})` (Eq. 3–4) and posterior
//! `q_ψ(z_{i,t} | ε(v_{i,t}), h_{i,t−1})` (Eq. 8–9), both diagonal
//! Gaussians with the reparameterization trick.

use rand::Rng;
use vrdag_tensor::nn::{Activation, Linear};
use vrdag_tensor::{ops, Matrix, Tensor};

/// Log-variance clamp bounds (numerical stability of the KL term).
const LOGVAR_MIN: f32 = -8.0;
const LOGVAR_MAX: f32 = 4.0;

/// An MLP head mapping a conditioning vector to the mean and log-variance
/// of a diagonal Gaussian (the paper's prior and posterior networks share
/// this architecture, Eq. 4 / Eq. 9).
#[derive(Clone)]
pub struct GaussianHead {
    shared: Linear,
    mu: Linear,
    logvar: Linear,
    act: Activation,
}

impl GaussianHead {
    pub fn new(d_in: usize, d_hidden: usize, d_z: usize, slope: f32, rng: &mut impl Rng) -> Self {
        GaussianHead {
            shared: Linear::new(d_in, d_hidden, rng),
            mu: Linear::new(d_hidden, d_z, rng),
            logvar: Linear::new(d_hidden, d_z, rng),
            act: Activation::LeakyRelu(slope),
        }
    }

    /// `(μ, log σ²)`, each `[n, d_z]`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        let h = self.act.apply(&self.shared.forward(x));
        let mu = self.mu.forward(&h);
        let logvar = ops::clamp(&self.logvar.forward(&h), LOGVAR_MIN, LOGVAR_MAX);
        (mu, logvar)
    }

    pub fn d_z(&self) -> usize {
        self.mu.d_out()
    }

    pub fn d_in(&self) -> usize {
        self.shared.d_in()
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.shared.parameters();
        p.extend(self.mu.parameters());
        p.extend(self.logvar.parameters());
        p
    }
}

/// Reparameterized sample `z = μ + ε ⊙ exp(½ log σ²)`, `ε ∼ N(0, I)`
/// (Eq. 4 / Eq. 9). Gradients flow into `μ` and `log σ²`; the noise is a
/// constant.
pub fn reparam_sample(mu: &Tensor, logvar: &Tensor, rng: &mut impl Rng) -> Tensor {
    let (r, c) = mu.shape();
    let eps = Tensor::constant(Matrix::rand_normal(r, c, 0.0, 1.0, rng));
    let sigma = ops::exp(&ops::scale(logvar, 0.5));
    ops::add(mu, &ops::mul(&eps, &sigma))
}

/// Deterministic mean "sample" (used when evaluating reconstruction
/// without sampling noise).
pub fn mean_sample(mu: &Tensor) -> Tensor {
    mu.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let head = GaussianHead::new(10, 8, 4, 0.2, &mut rng);
        let x = Tensor::constant(Matrix::ones(5, 10));
        let (mu, lv) = head.forward(&x);
        assert_eq!(mu.shape(), (5, 4));
        assert_eq!(lv.shape(), (5, 4));
        assert_eq!(head.parameters().len(), 6);
        assert_eq!(head.d_z(), 4);
        assert_eq!(head.d_in(), 10);
    }

    #[test]
    fn logvar_is_clamped() {
        let mut rng = StdRng::seed_from_u64(2);
        let head = GaussianHead::new(4, 4, 2, 0.2, &mut rng);
        let x = Tensor::constant(Matrix::full(3, 4, 1e6));
        let (_, lv) = head.forward(&x);
        for &v in lv.value_clone().data() {
            assert!((LOGVAR_MIN..=LOGVAR_MAX).contains(&v));
        }
    }

    #[test]
    fn reparam_sample_moments() {
        // With μ = 2, log σ² = 0 (σ = 1), samples must average near 2 with
        // unit variance.
        let mut rng = StdRng::seed_from_u64(3);
        let mu = Tensor::constant(Matrix::full(2000, 1, 2.0));
        let lv = Tensor::constant(Matrix::zeros(2000, 1));
        let z = reparam_sample(&mu, &lv, &mut rng).value_clone();
        let mean = z.mean();
        let var =
            z.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (z.len() - 1) as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn reparam_sample_keeps_gradient_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let mu = Tensor::param(Matrix::zeros(3, 2));
        let lv = Tensor::param(Matrix::zeros(3, 2));
        let z = reparam_sample(&mu, &lv, &mut rng);
        let loss = ops::sum_all(&z);
        loss.backward();
        assert!(mu.grad().is_some());
        assert!(lv.grad().is_some());
        // dz/dμ = 1 exactly.
        for &g in mu.grad().unwrap().data() {
            assert!((g - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn prior_posterior_kl_is_trainable() {
        // Minimizing KL(q‖p) with Adam must reduce it.
        let mut rng = StdRng::seed_from_u64(5);
        let prior = GaussianHead::new(6, 8, 3, 0.2, &mut rng);
        let post = GaussianHead::new(6, 8, 3, 0.2, &mut rng);
        let x = Tensor::constant(Matrix::rand_uniform(10, 6, -1.0, 1.0, &mut rng));
        let mut params = prior.parameters();
        params.extend(post.parameters());
        let mut adam = vrdag_tensor::optim::Adam::new(0.01);
        let kl0 = {
            let (mq, lq) = post.forward(&x);
            let (mp, lp) = prior.forward(&x);
            ops::kl_diag_gaussian(&mq, &lq, &mp, &lp).item()
        };
        for _ in 0..60 {
            vrdag_tensor::optim::zero_grad(&params);
            let (mq, lq) = post.forward(&x);
            let (mp, lp) = prior.forward(&x);
            let kl = ops::kl_diag_gaussian(&mq, &lq, &mp, &lp);
            kl.backward();
            adam.step(&params);
        }
        let kl1 = {
            let (mq, lq) = post.forward(&x);
            let (mp, lp) = prior.forward(&x);
            ops::kl_diag_gaussian(&mq, &lq, &mp, &lp).item()
        };
        assert!(kl1 < kl0, "KL did not decrease: {kl0} -> {kl1}");
        assert!(kl1 >= -1e-4, "KL must stay non-negative");
    }
}

//! # vrdag
//!
//! From-scratch Rust implementation of **VRDAG** — *Efficient Dynamic
//! Attributed Graph Generation* (ICDE 2025): a variational recurrent
//! framework that generates a sequence of directed attributed graph
//! snapshots in one shot per timestep, avoiding the temporal random-walk
//! sampling and merging of prior deep dynamic graph generators.
//!
//! Components (paper section in parentheses):
//!
//! * [`encoder::BiFlowEncoder`] — bidirectional GIN message passing with
//!   jump-connection pooling (§III-B.2, Eq. 5–7).
//! * [`latent::GaussianHead`] — conditional prior / posterior networks with
//!   the reparameterization trick (§III-B, Eq. 3–4 / 8–9).
//! * [`decoder::MixBernoulliDecoder`] — mixture-of-Bernoulli one-shot
//!   adjacency sampler (§III-C.1, Eq. 11), with an `O(N²(h+K))` generation
//!   path exploiting the pairwise difference factorization.
//! * [`decoder::AttributeDecoder`] — GAT-based attribute synthesis on the
//!   generated topology (§III-C.2, Eq. 12).
//! * [`time2vec::Time2Vec`] — timestep embedding (§III-D, Eq. 13).
//! * [`model::Vrdag`] — joint ELBO optimization (§III-E, Eq. 14–18) and the
//!   Algorithm-1 generative process, plus the node addition/deletion
//!   extension (§III-H) in [`extension`].
//!
//! The crate builds only on `vrdag-tensor` (autograd) and `vrdag-graph`
//! (graph storage) — no external ML framework.

pub mod config;
pub mod decoder;
pub mod encoder;
pub mod extension;
pub mod latent;
pub mod model;
pub mod persist;
pub mod time2vec;

pub use config::{AttrLoss, VrdagConfig};
pub use decoder::DecodePlan;
pub use model::{GenerationState, TrainStats, Vrdag};
pub use persist::{artifact_fingerprint, PersistError};

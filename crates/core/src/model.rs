//! The assembled VRDAG model: joint optimization (§III-E) and the
//! autoregressive generative process (§III-F, Algorithm 1).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use crate::config::{AttrLoss, VrdagConfig};
use crate::decoder::{
    gat_arrays, sample_pair_batch, AttributeDecoder, DecodePlan, MixBernoulliDecoder,
};
use crate::encoder::{snapshot_features, BiFlowEncoder};
use crate::latent::{reparam_sample, GaussianHead};
use crate::time2vec::Time2Vec;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::rc::Rc;
use std::time::Instant;
use vrdag_graph::generator::{DynamicGraphGenerator, FitReport, GeneratorError};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::nn::GruCell;
use vrdag_tensor::ops::{self, Segments, SparseAdj};
use vrdag_tensor::{no_grad, optim, Matrix, Tensor};

/// Everything learned by [`Vrdag::fit`] besides the network weights.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// Observed edge count per training timestep (drives generation-time
    /// density calibration).
    pub edges_per_step: Vec<f64>,
    /// Mean total loss per epoch.
    pub loss_history: Vec<f64>,
    /// Per-term losses of the final epoch: (KL, structure, attribute).
    pub final_terms: (f64, f64, f64),
    /// Training sequence length.
    pub train_t: usize,
    /// Mean number of nodes becoming active (first edge) per timestep,
    /// estimated from the training sequence; drives the §III-H node
    /// addition predictor.
    pub mean_new_active_per_step: f64,
    /// Per-timestep, per-dimension attribute mean (generation-time
    /// attribute calibration).
    pub attr_means: Vec<Vec<f32>>,
    /// Per-timestep, per-dimension attribute std.
    pub attr_stds: Vec<Vec<f32>>,
}

pub(crate) struct Modules {
    pub(crate) encoder: BiFlowEncoder,
    pub(crate) prior: GaussianHead,
    pub(crate) posterior: GaussianHead,
    pub(crate) decoder: MixBernoulliDecoder,
    pub(crate) attr_dec: AttributeDecoder,
    pub(crate) t2v: Time2Vec,
    pub(crate) gru: GruCell,
    pub(crate) n: usize,
    pub(crate) f: usize,
}

impl Modules {
    pub(crate) fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.encoder.parameters();
        p.extend(self.prior.parameters());
        p.extend(self.posterior.parameters());
        p.extend(self.decoder.parameters());
        p.extend(self.attr_dec.parameters());
        p.extend(self.t2v.parameters());
        p.extend(self.gru.parameters());
        p
    }
}

/// Per-timestep precomputation shared across epochs.
struct StepCache {
    feats: Tensor,
    in_adj: Rc<SparseAdj>,
    out_adj: Rc<SparseAdj>,
    gat_src: Rc<Vec<u32>>,
    gat_dst: Rc<Vec<u32>>,
    gat_segs: Rc<Segments>,
    attrs_target: Rc<Matrix>,
}

/// The VRDAG generator (Variational Recurrent Dynamic Attributed Graph
/// Generator).
///
/// ```no_run
/// use vrdag::{Vrdag, VrdagConfig};
/// use vrdag_graph::DynamicGraphGenerator;
/// use rand::SeedableRng;
///
/// let graph = vrdag_datasets::generate(&vrdag_datasets::tiny(), 1);
/// let mut model = Vrdag::new(VrdagConfig::test_small());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// model.fit(&graph, &mut rng).unwrap();
/// let synthetic = model.generate(graph.t_len(), &mut rng).unwrap();
/// assert_eq!(synthetic.t_len(), graph.t_len());
/// ```
pub struct Vrdag {
    pub(crate) cfg: VrdagConfig,
    pub(crate) modules: Option<Modules>,
    pub(crate) stats: Option<TrainStats>,
}

impl Vrdag {
    /// Create an unfitted model.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`VrdagConfig::validate`]).
    pub fn new(cfg: VrdagConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid VrdagConfig: {e}");
        }
        Vrdag { cfg, modules: None, stats: None }
    }

    /// The active configuration.
    pub fn config(&self) -> &VrdagConfig {
        &self.cfg
    }

    /// Training statistics, if fitted.
    pub fn stats(&self) -> Option<&TrainStats> {
        self.stats.as_ref()
    }

    /// Node count of the fitted node universe (`None` before `fit`).
    pub fn n_nodes(&self) -> Option<usize> {
        self.modules.as_ref().map(|m| m.n)
    }

    /// Attribute dimensionality of the fitted model (`None` before `fit`).
    pub fn n_attrs(&self) -> Option<usize> {
        self.modules.as_ref().map(|m| m.f)
    }

    /// Rebuild the architecture for deserialization (values are
    /// overwritten by the loader).
    pub(crate) fn build_modules_for_load(&self, f: usize, n: usize, rng: &mut StdRng) -> Modules {
        self.build_modules(f, n, rng)
    }

    fn build_modules(&self, f: usize, n: usize, rng: &mut StdRng) -> Modules {
        let cfg = &self.cfg;
        let d_input = f + 2; // attributes + log in/out degree features
        let gru_in = cfg.d_e + cfg.d_z + if cfg.use_time2vec { cfg.d_t } else { 0 };
        Modules {
            encoder: BiFlowEncoder::new(
                d_input,
                cfg.d_e,
                cfg.d_e,
                cfg.gnn_layers,
                cfg.leaky_slope,
                cfg.bi_flow,
                rng,
            ),
            prior: GaussianHead::new(cfg.d_h, cfg.d_h, cfg.d_z, cfg.leaky_slope, rng),
            posterior: GaussianHead::new(cfg.d_e + cfg.d_h, cfg.d_h, cfg.d_z, cfg.leaky_slope, rng),
            decoder: MixBernoulliDecoder::new(
                cfg.d_s(),
                cfg.decoder_hidden,
                cfg.k_mix,
                cfg.leaky_slope,
                rng,
            ),
            attr_dec: AttributeDecoder::new(
                cfg.d_s(),
                cfg.gat_hidden,
                f.max(1),
                cfg.leaky_slope,
                rng,
            ),
            t2v: Time2Vec::new(cfg.d_t, rng),
            gru: GruCell::new(gru_in, cfg.d_h, rng),
            n,
            f,
        }
    }

    fn build_caches(graph: &DynamicGraph) -> Vec<StepCache> {
        graph
            .iter()
            .map(|(_, s)| {
                let (gat_src, gat_dst, gat_segs) = gat_arrays(s.n_nodes(), s.edges());
                StepCache {
                    feats: Tensor::constant(snapshot_features(s)),
                    in_adj: Rc::new(s.in_adj().clone()),
                    out_adj: Rc::new(s.out_adj().clone()),
                    gat_src,
                    gat_dst,
                    gat_segs,
                    attrs_target: Rc::new(s.attrs().clone()),
                }
            })
            .collect()
    }

    /// Fit the model on an observed dynamic attributed graph by maximizing
    /// the step-wise ELBO (Eq. 14) with truncated BPTT.
    pub fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        let started = Instant::now();
        let n = graph.n_nodes();
        let f = graph.n_attrs();
        let t_len = graph.t_len();
        let mut local_rng = StdRng::seed_from_u64(self.cfg.seed ^ rng.next_u64());
        let modules = self.build_modules(f, n, &mut local_rng);
        let params = modules.parameters();
        let caches = Self::build_caches(graph);
        let mut adam = optim::Adam::new(self.cfg.lr);
        let mut loss_history = Vec::with_capacity(self.cfg.epochs);
        let mut final_terms = (0.0f64, 0.0f64, 0.0f64);

        for _epoch in 0..self.cfg.epochs {
            let mut h = Tensor::constant(Matrix::zeros(n, self.cfg.d_h));
            let mut epoch_loss = 0.0f64;
            let mut epoch_terms = (0.0f64, 0.0f64, 0.0f64);
            let mut t = 0usize;
            while t < t_len {
                let window_end = (t + self.cfg.tbptt_window).min(t_len);
                let mut window_loss: Option<Tensor> = None;
                for ti in t..window_end {
                    let cache = &caches[ti];
                    let snapshot = graph.snapshot(ti);
                    // ε(G_t) (Eq. 5–7).
                    let enc = modules.encoder.forward(&cache.feats, &cache.in_adj, &cache.out_adj);
                    // Posterior q_ψ(Z_t | ε(G_t), H_{t−1}) (Eq. 8–9).
                    let post_in = ops::concat_cols(&[&enc, &h]);
                    let (mu_q, lv_q) = modules.posterior.forward(&post_in);
                    // Prior p_φ(Z_t | H_{t−1}) (Eq. 3–4).
                    let (mu_p, lv_p) = modules.prior.forward(&h);
                    let z = reparam_sample(&mu_q, &lv_q, &mut local_rng);
                    // L_prior (Eq. 15), normalized per node.
                    let kl = ops::scale(
                        &ops::kl_diag_gaussian(&mu_q, &lv_q, &mu_p, &lv_p),
                        self.cfg.kl_weight / n as f32,
                    );
                    // Decoder state S_t = [Z_t ‖ H_{t−1}].
                    let s = ops::concat_cols(&[&z, &h]);
                    // L_struc (Eq. 17) on sampled pairs.
                    let batch = sample_pair_batch(snapshot, self.cfg.neg_samples, &mut local_rng);
                    let alpha = modules.decoder.alpha_train(
                        &s,
                        n,
                        self.cfg.alpha_ref_samples,
                        &mut local_rng,
                    );
                    let l_struc = modules.decoder.structure_loss(&s, &alpha, &batch, n);
                    // L_attr (Eq. 18) conditioned on the *true* A_t
                    // (dependency-aware factorization, Eq. 10).
                    let l_attr = if f > 0 {
                        let x_hat = modules.attr_dec.forward(
                            &s,
                            &cache.gat_src,
                            &cache.gat_dst,
                            &cache.gat_segs,
                            n,
                        );
                        match self.cfg.attr_loss {
                            AttrLoss::Sce => {
                                let target_t = Tensor::constant((*cache.attrs_target).clone());
                                let cos = ops::cosine_rows(&x_hat, &target_t);
                                let err = ops::powf(&ops::one_minus(&cos), self.cfg.sce_alpha);
                                let sce = ops::mean_all(&err);
                                if self.cfg.attr_mse_anchor > 0.0 {
                                    // SCE is scale-invariant; a light MSE
                                    // anchor pins the magnitude (see
                                    // VrdagConfig::attr_mse_anchor).
                                    let mse = ops::mse_loss(&x_hat, Rc::clone(&cache.attrs_target));
                                    ops::add(&sce, &ops::scale(&mse, self.cfg.attr_mse_anchor))
                                } else {
                                    sce
                                }
                            }
                            AttrLoss::Mse => ops::mse_loss(&x_hat, Rc::clone(&cache.attrs_target)),
                        }
                    } else {
                        Tensor::constant(Matrix::scalar(0.0))
                    };
                    epoch_terms.0 += kl.item() as f64;
                    epoch_terms.1 += l_struc.item() as f64;
                    epoch_terms.2 += l_attr.item() as f64;
                    let l_attr_w = ops::scale(&l_attr, self.cfg.attr_weight);
                    let step_loss = ops::add(&ops::add(&kl, &l_struc), &l_attr_w);
                    window_loss = Some(match window_loss {
                        Some(acc) => ops::add(&acc, &step_loss),
                        None => step_loss,
                    });
                    // Recurrence update (§III-D) with teacher forcing:
                    // H_t = GRU([ε(G_t) ‖ Z_t ‖ f_T(t)], H_{t−1}).
                    if self.cfg.use_recurrence {
                        let gru_in = if self.cfg.use_time2vec {
                            let tv = modules.t2v.forward_broadcast(ti, n);
                            ops::concat_cols(&[&enc, &z, &tv])
                        } else {
                            ops::concat_cols(&[&enc, &z])
                        };
                        h = modules.gru.forward(&gru_in, &h);
                    } else {
                        h = Tensor::constant(Matrix::zeros(n, self.cfg.d_h));
                    }
                }
                if let Some(loss) = window_loss {
                    let lv = loss.item();
                    if lv.is_finite() {
                        epoch_loss += lv as f64;
                        optim::zero_grad(&params);
                        loss.backward();
                        optim::clip_global_norm(&params, self.cfg.grad_clip);
                        adam.step(&params);
                    } else {
                        optim::zero_grad(&params);
                    }
                }
                // Truncate BPTT at the window boundary.
                h = h.detach();
                t = window_end;
            }
            loss_history.push(epoch_loss / t_len as f64);
            final_terms = (
                epoch_terms.0 / t_len as f64,
                epoch_terms.1 / t_len as f64,
                epoch_terms.2 / t_len as f64,
            );
        }

        let (attr_means, attr_stds) = attribute_moments(graph);
        let stats = TrainStats {
            edges_per_step: graph.iter().map(|(_, s)| s.n_edges() as f64).collect(),
            loss_history: loss_history.clone(),
            final_terms,
            train_t: t_len,
            mean_new_active_per_step: mean_new_active_per_step(graph),
            attr_means,
            attr_stds,
        };
        self.modules = Some(modules);
        self.stats = Some(stats);
        Ok(FitReport {
            train_seconds: started.elapsed().as_secs_f64(),
            epochs: self.cfg.epochs,
            final_loss: loss_history.last().copied().unwrap_or(f64::NAN),
        })
    }

    /// Start a resumable generation run (Algorithm 1).
    ///
    /// The returned [`GenerationState`] carries everything the recurrence
    /// needs between timesteps — the hidden state `H_t`, the timestep
    /// counter, and a derived RNG — so snapshots can be produced one at a
    /// time with memory bounded by a single snapshot. `rng` is consumed
    /// exactly as by [`Vrdag::generate`] (one `next_u64` call to derive
    /// the stream seed), so stepping a state to `t_len` yields the same
    /// sequence as a one-shot `generate(t_len, rng)` call from the same
    /// RNG state.
    pub fn begin_generation(
        &self,
        rng: &mut dyn RngCore,
    ) -> Result<GenerationState, GeneratorError> {
        let modules = self.modules.as_ref().ok_or(GeneratorError::NotFitted)?;
        self.stats.as_ref().ok_or(GeneratorError::NotFitted)?;
        Ok(GenerationState {
            h: Matrix::zeros(modules.n, self.cfg.d_h),
            t: 0,
            rng: StdRng::seed_from_u64(rng.next_u64()),
            // Decoder weights are fixed for the whole run: materialize them
            // out of the autograd tensors once and reuse across every step.
            plan: modules.decoder.plan(),
        })
    }

    /// Advance a generation run by one timestep and return snapshot
    /// `G̃_{t+1}` (lines 3–7 of Algorithm 1).
    ///
    /// `state` must come from [`Vrdag::begin_generation`] on this (or an
    /// identically-loaded) model.
    pub fn step_generation(&self, state: &mut GenerationState) -> Snapshot {
        let modules = self.modules.as_ref().expect("state comes from begin_generation");
        let stats = self.stats.as_ref().expect("state comes from begin_generation");
        let n = modules.n;
        let f = modules.f;
        let t = state.t;
        no_grad(|| {
            let h = Tensor::constant(std::mem::replace(&mut state.h, Matrix::zeros(0, 0)));
            // Line 3: Z_{t+1} ~ p_φ(H_t).
            let (mu_p, lv_p) = modules.prior.forward(&h);
            let z = reparam_sample(&mu_p, &lv_p, &mut state.rng);
            let s = ops::concat_cols(&[&z, &h]);
            let s_mat = s.value_clone();
            // Line 4: Ã_{t+1} via the MixBernoulli sampler.
            let m_target = if self.cfg.calibrate_density {
                let idx = t.min(stats.edges_per_step.len().saturating_sub(1));
                stats.edges_per_step.get(idx).copied()
            } else {
                None
            };
            let edges = state.plan.generate_edges(&s_mat, m_target, state.rng.gen());
            // Line 5: X̃_{t+1} conditioned on the generated topology.
            let attrs = if f > 0 {
                let (src, dst, segs) = gat_arrays(n, &edges);
                let mut x = modules.attr_dec.forward(&s, &src, &dst, &segs, n).value_clone();
                if self.cfg.calibrate_attributes {
                    let idx = t.min(stats.attr_means.len().saturating_sub(1));
                    calibrate_attributes(&mut x, &stats.attr_means[idx], &stats.attr_stds[idx]);
                }
                x
            } else {
                Matrix::zeros(n, 0)
            };
            let snapshot = Snapshot::new(n, edges, attrs);
            // Line 7: H_{t+1} = GRU([ε(G̃) ‖ Z ‖ f_T(t+1)], H_t).
            state.h = if self.cfg.use_recurrence {
                let feats = Tensor::constant(snapshot_features(&snapshot));
                let in_adj = Rc::new(snapshot.in_adj().clone());
                let out_adj = Rc::new(snapshot.out_adj().clone());
                let enc = modules.encoder.forward(&feats, &in_adj, &out_adj);
                let gru_in = if self.cfg.use_time2vec {
                    let tv = modules.t2v.forward_broadcast(t, n);
                    ops::concat_cols(&[&enc, &z, &tv])
                } else {
                    ops::concat_cols(&[&enc, &z])
                };
                modules.gru.forward(&gru_in, &h).value_clone()
            } else {
                Matrix::zeros(n, self.cfg.d_h)
            };
            state.t = t + 1;
            snapshot
        })
    }

    /// Generate a synthetic dynamic attributed graph (Algorithm 1).
    ///
    /// One-shot convenience over [`Vrdag::begin_generation`] /
    /// [`GenerationState::step`]: materializes all `t_len` snapshots.
    pub fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        let mut state = self.begin_generation(rng)?;
        let snapshots = (0..t_len).map(|_| state.step(self)).collect();
        Ok(DynamicGraph::new(snapshots))
    }
}

/// Resumable state of a generation run: the recurrent hidden state
/// `H_t`, the timestep counter, and the derived sampling RNG.
///
/// Produced by [`Vrdag::begin_generation`]; advanced one snapshot at a
/// time by [`GenerationState::step`]. Holds plain values (no borrows of
/// the model and no autograd tape), so it is cheap to keep alive between
/// requests and can be moved across threads together with its model.
#[derive(Clone, Debug)]
pub struct GenerationState {
    h: Matrix,
    t: usize,
    rng: StdRng,
    plan: DecodePlan,
}

impl GenerationState {
    /// Number of snapshots produced so far (the next step generates
    /// snapshot index `t()`).
    pub fn t(&self) -> usize {
        self.t
    }

    /// Produce the next snapshot from `model` (Algorithm 1, one timestep).
    pub fn step(&mut self, model: &Vrdag) -> Snapshot {
        model.step_generation(self)
    }
}

/// Per-timestep, per-dimension attribute mean and std of the training
/// graph (drives the attribute calibration of `Vrdag::generate`).
fn attribute_moments(graph: &DynamicGraph) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let f = graph.n_attrs();
    let n = graph.n_nodes().max(1);
    let mut means = Vec::with_capacity(graph.t_len());
    let mut stds = Vec::with_capacity(graph.t_len());
    for (_, s) in graph.iter() {
        let mut mean = vec![0.0f32; f];
        let mut sq = vec![0.0f32; f];
        for i in 0..s.n_nodes() {
            for d in 0..f {
                let x = s.attrs().get(i, d);
                mean[d] += x;
                sq[d] += x * x;
            }
        }
        for d in 0..f {
            mean[d] /= n as f32;
            sq[d] = (sq[d] / n as f32 - mean[d] * mean[d]).max(1e-12).sqrt();
        }
        means.push(mean);
        stds.push(sq);
    }
    (means, stds)
}

/// Affinely rescale each attribute column of `x` to the target moments.
fn calibrate_attributes(x: &mut Matrix, target_mean: &[f32], target_std: &[f32]) {
    let (n, f) = x.shape();
    if n == 0 || f == 0 {
        return;
    }
    for d in 0..f {
        let mut mean = 0.0f32;
        let mut sq = 0.0f32;
        for i in 0..n {
            let v = x.get(i, d);
            mean += v;
            sq += v * v;
        }
        mean /= n as f32;
        let std = (sq / n as f32 - mean * mean).max(1e-12).sqrt();
        let scale = target_std[d] / std.max(1e-6);
        for i in 0..n {
            let v = x.get(i, d);
            x.set(i, d, target_mean[d] + (v - mean) * scale);
        }
    }
}

/// Mean number of nodes whose first incident edge appears at step t ≥ 1
/// (the paper's N_add predictor target, §III-H).
fn mean_new_active_per_step(graph: &DynamicGraph) -> f64 {
    let n = graph.n_nodes();
    let mut first_seen = vec![usize::MAX; n];
    for (t, s) in graph.iter() {
        for &(u, v) in s.edges() {
            for node in [u as usize, v as usize] {
                if first_seen[node] == usize::MAX {
                    first_seen[node] = t;
                }
            }
        }
    }
    if graph.t_len() < 2 {
        return 0.0;
    }
    let new_after_start = first_seen.iter().filter(|&&t| t != usize::MAX && t >= 1).count();
    new_after_start as f64 / (graph.t_len() - 1) as f64
}

impl DynamicGraphGenerator for Vrdag {
    fn name(&self) -> &str {
        "VRDAG"
    }

    fn supports_attributes(&self) -> bool {
        true
    }

    fn is_dynamic(&self) -> bool {
        true
    }

    fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError> {
        Vrdag::fit(self, graph, rng)
    }

    fn generate(
        &self,
        t_len: usize,
        rng: &mut dyn RngCore,
    ) -> Result<DynamicGraph, GeneratorError> {
        Vrdag::generate(self, t_len, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 5)
    }

    #[test]
    fn fit_then_generate_round_trip() {
        let g = tiny_graph();
        let mut model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(1);
        let report = model.fit(&g, &mut rng).unwrap();
        assert!(report.final_loss.is_finite());
        let out = model.generate(g.t_len(), &mut rng).unwrap();
        assert_eq!(out.n_nodes(), g.n_nodes());
        assert_eq!(out.n_attrs(), g.n_attrs());
        assert_eq!(out.t_len(), g.t_len());
        assert!(out.temporal_edge_count() > 0, "generated graph has no edges");
    }

    #[test]
    fn generate_before_fit_errors() {
        let model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(matches!(model.generate(3, &mut rng), Err(GeneratorError::NotFitted)));
    }

    #[test]
    fn training_loss_decreases() {
        let g = tiny_graph();
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 12;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        model.fit(&g, &mut rng).unwrap();
        let hist = &model.stats().unwrap().loss_history;
        let first = hist[..2].iter().sum::<f64>() / 2.0;
        let last = hist[hist.len() - 2..].iter().sum::<f64>() / 2.0;
        assert!(last < first, "training loss did not decrease: {first} -> {last} ({hist:?})");
    }

    #[test]
    fn calibrated_generation_tracks_density() {
        let g = tiny_graph();
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 6;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(4);
        model.fit(&g, &mut rng).unwrap();
        let out = model.generate(g.t_len(), &mut rng).unwrap();
        let m_orig = g.temporal_edge_count() as f64;
        let m_gen = out.temporal_edge_count() as f64;
        assert!(
            m_gen > 0.3 * m_orig && m_gen < 3.0 * m_orig,
            "generated {m_gen} vs original {m_orig} temporal edges"
        );
    }

    #[test]
    fn ablation_configs_run() {
        let g = tiny_graph();
        for (bi, t2v, rec) in [(false, true, true), (true, false, true), (true, true, false)] {
            let mut cfg = VrdagConfig::test_small();
            cfg.bi_flow = bi;
            cfg.use_time2vec = t2v;
            cfg.use_recurrence = rec;
            cfg.epochs = 2;
            let mut model = Vrdag::new(cfg);
            let mut rng = StdRng::seed_from_u64(5);
            model.fit(&g, &mut rng).unwrap();
            let out = model.generate(3, &mut rng).unwrap();
            assert_eq!(out.t_len(), 3);
        }
    }

    #[test]
    fn mse_attr_loss_ablation_runs() {
        let g = tiny_graph();
        let mut cfg = VrdagConfig::test_small();
        cfg.attr_loss = AttrLoss::Mse;
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(6);
        let report = model.fit(&g, &mut rng).unwrap();
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn stepper_matches_one_shot_generate() {
        let g = tiny_graph();
        let mut model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(21);
        model.fit(&g, &mut rng).unwrap();

        let mut r1 = StdRng::seed_from_u64(77);
        let one_shot = model.generate(4, &mut r1).unwrap();

        let mut r2 = StdRng::seed_from_u64(77);
        let mut state = model.begin_generation(&mut r2).unwrap();
        let stepped: Vec<Snapshot> = (0..4).map(|_| state.step(&model)).collect();
        assert_eq!(state.t(), 4);
        assert_eq!(one_shot, DynamicGraph::new(stepped));
    }

    #[test]
    fn begin_generation_before_fit_errors() {
        let model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(model.begin_generation(&mut rng), Err(GeneratorError::NotFitted)));
    }

    #[test]
    fn generation_state_is_resumable_mid_sequence() {
        // Pausing and resuming a state must not perturb the stream: steps
        // 0..2 then 2..5 equal one uninterrupted 0..5 run.
        let g = tiny_graph();
        let mut model = Vrdag::new(VrdagConfig::test_small());
        let mut rng = StdRng::seed_from_u64(22);
        model.fit(&g, &mut rng).unwrap();

        let mut ra = StdRng::seed_from_u64(5);
        let full = model.generate(5, &mut ra).unwrap();

        let mut rb = StdRng::seed_from_u64(5);
        let mut state = model.begin_generation(&mut rb).unwrap();
        let mut parts: Vec<Snapshot> = (0..2).map(|_| state.step(&model)).collect();
        let paused = state.clone(); // a checkpointed copy resumes identically
        drop(state);
        let mut resumed = paused;
        parts.extend((2..5).map(|_| resumed.step(&model)));
        assert_eq!(full, DynamicGraph::new(parts));
    }

    #[test]
    fn trait_object_usage() {
        let g = tiny_graph();
        let mut gen: Box<dyn DynamicGraphGenerator> =
            Box::new(Vrdag::new(VrdagConfig::test_small()));
        assert_eq!(gen.name(), "VRDAG");
        assert!(gen.supports_attributes());
        assert!(gen.is_dynamic());
        let mut rng = StdRng::seed_from_u64(7);
        gen.fit(&g, &mut rng).unwrap();
        let out = gen.generate(2, &mut rng).unwrap();
        assert_eq!(out.t_len(), 2);
    }
}

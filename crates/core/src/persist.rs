//! Model persistence: save a fitted VRDAG to a compact binary file and
//! load it back for generation-only deployments (the paper's intended use:
//! train once inside the data owner's perimeter, generate anywhere).
//!
//! Format (little-endian): magic, version, config block, train-stats
//! block, then every parameter matrix in the deterministic order of
//! `Modules::parameters()`.

use crate::config::{AttrLoss, VrdagConfig};
use crate::model::{TrainStats, Vrdag};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x5652_4447; // "VRDG"
const VERSION: u32 = 1;

/// Stable content fingerprint of a serialized model artifact (FNV-1a over
/// the bytes of the [`Vrdag::save`] format).
///
/// This is a *probabilistic* content hash, not a guarantee: equal bytes
/// always give equal fingerprints (re-registering the same bytes under a
/// new name, or in a new registry, keeps it; any parameter, config, or
/// train-stats change alters it), but distinct artifacts collide with
/// the ~2⁻⁶⁴ probability of any 64-bit non-cryptographic hash. Callers
/// using it as a cache identity should pair it with a second cheap
/// discriminator (the serving layer's snapshot cache also keys on the
/// artifact's byte length) and must not rely on it adversarially.
pub fn artifact_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors from model (de)serialization.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Format(String),
    /// Saving requires a fitted model.
    NotFitted,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
            PersistError::NotFitted => write!(f, "cannot save an unfitted model"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

struct Writer<W: Write> {
    w: W,
}

impl<W: Write> Writer<W> {
    fn u32(&mut self, v: u32) -> Result<(), PersistError> {
        self.w.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn u64(&mut self, v: u64) -> Result<(), PersistError> {
        self.w.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn f32(&mut self, v: f32) -> Result<(), PersistError> {
        self.w.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn f64(&mut self, v: f64) -> Result<(), PersistError> {
        self.w.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn bool(&mut self, v: bool) -> Result<(), PersistError> {
        self.u32(v as u32)
    }
    fn f32s(&mut self, vs: &[f32]) -> Result<(), PersistError> {
        self.u64(vs.len() as u64)?;
        for &v in vs {
            self.f32(v)?;
        }
        Ok(())
    }
    fn f64s(&mut self, vs: &[f64]) -> Result<(), PersistError> {
        self.u64(vs.len() as u64)?;
        for &v in vs {
            self.f64(v)?;
        }
        Ok(())
    }
}

struct Reader<R: Read> {
    r: R,
}

impl<R: Read> Reader<R> {
    fn u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        let mut b = [0u8; 8];
        self.r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn bool(&mut self) -> Result<bool, PersistError> {
        Ok(self.u32()? != 0)
    }
    fn f32s(&mut self) -> Result<Vec<f32>, PersistError> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }
    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

fn write_config<W: Write>(w: &mut Writer<W>, c: &VrdagConfig) -> Result<(), PersistError> {
    for v in [
        c.d_h,
        c.d_z,
        c.d_e,
        c.d_t,
        c.gnn_layers,
        c.k_mix,
        c.decoder_hidden,
        c.gat_hidden,
        c.epochs,
        c.neg_samples,
        c.alpha_ref_samples,
        c.tbptt_window,
    ] {
        w.u64(v as u64)?;
    }
    for v in [
        c.sce_alpha,
        c.lr,
        c.grad_clip,
        c.kl_weight,
        c.attr_weight,
        c.attr_mse_anchor,
        c.leaky_slope,
    ] {
        w.f32(v)?;
    }
    w.u32(match c.attr_loss {
        AttrLoss::Sce => 0,
        AttrLoss::Mse => 1,
    })?;
    for v in
        [c.bi_flow, c.use_time2vec, c.use_recurrence, c.calibrate_density, c.calibrate_attributes]
    {
        w.bool(v)?;
    }
    w.u64(c.seed)?;
    Ok(())
}

fn read_config<R: Read>(r: &mut Reader<R>) -> Result<VrdagConfig, PersistError> {
    let mut us = [0u64; 12];
    for u in us.iter_mut() {
        *u = r.u64()?;
    }
    let mut fs = [0f32; 7];
    for f in fs.iter_mut() {
        *f = r.f32()?;
    }
    let attr_loss = match r.u32()? {
        0 => AttrLoss::Sce,
        1 => AttrLoss::Mse,
        other => return Err(PersistError::Format(format!("bad attr_loss tag {other}"))),
    };
    let mut bs = [false; 5];
    for b in bs.iter_mut() {
        *b = r.bool()?;
    }
    let seed = r.u64()?;
    Ok(VrdagConfig {
        d_h: us[0] as usize,
        d_z: us[1] as usize,
        d_e: us[2] as usize,
        d_t: us[3] as usize,
        gnn_layers: us[4] as usize,
        k_mix: us[5] as usize,
        decoder_hidden: us[6] as usize,
        gat_hidden: us[7] as usize,
        epochs: us[8] as usize,
        neg_samples: us[9] as usize,
        alpha_ref_samples: us[10] as usize,
        tbptt_window: us[11] as usize,
        sce_alpha: fs[0],
        lr: fs[1],
        grad_clip: fs[2],
        kl_weight: fs[3],
        attr_weight: fs[4],
        attr_mse_anchor: fs[5],
        leaky_slope: fs[6],
        attr_loss,
        bi_flow: bs[0],
        use_time2vec: bs[1],
        use_recurrence: bs[2],
        calibrate_density: bs[3],
        calibrate_attributes: bs[4],
        seed,
    })
}

impl Vrdag {
    /// Serialize a fitted model to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        // Refuse before touching the filesystem: an unfitted model must
        // not truncate an existing artifact at `path`.
        if self.modules.is_none() || self.stats.is_none() {
            return Err(PersistError::NotFitted);
        }
        let file = std::fs::File::create(path)?;
        self.save_to(std::io::BufWriter::new(file))
    }

    /// Serialize a fitted model to an arbitrary writer (the format of
    /// [`Vrdag::save`]). Useful for in-memory artifacts — e.g. the
    /// serving layer's model registry — and network transports.
    pub fn save_to(&self, writer: impl Write) -> Result<(), PersistError> {
        let modules = self.modules.as_ref().ok_or(PersistError::NotFitted)?;
        let stats = self.stats.as_ref().ok_or(PersistError::NotFitted)?;
        let mut w = Writer { w: writer };
        w.u32(MAGIC)?;
        w.u32(VERSION)?;
        write_config(&mut w, &self.cfg)?;
        w.u64(modules.n as u64)?;
        w.u64(modules.f as u64)?;
        // Train stats.
        w.f64s(&stats.edges_per_step)?;
        w.f64s(&stats.loss_history)?;
        w.f64(stats.final_terms.0)?;
        w.f64(stats.final_terms.1)?;
        w.f64(stats.final_terms.2)?;
        w.u64(stats.train_t as u64)?;
        w.f64(stats.mean_new_active_per_step)?;
        w.u64(stats.attr_means.len() as u64)?;
        for (m, s) in stats.attr_means.iter().zip(stats.attr_stds.iter()) {
            w.f32s(m)?;
            w.f32s(s)?;
        }
        // Parameters in deterministic module order.
        let params = modules.parameters();
        w.u64(params.len() as u64)?;
        for p in &params {
            let v = p.value_clone();
            w.u64(v.rows() as u64)?;
            w.u64(v.cols() as u64)?;
            w.f32s(v.data())?;
        }
        w.w.flush()?;
        Ok(())
    }

    /// Serialize a fitted model into a byte buffer (the format of
    /// [`Vrdag::save`]).
    pub fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let mut buf = Vec::new();
        self.save_to(&mut buf)?;
        Ok(buf)
    }

    /// Stable content fingerprint of this fitted model (the
    /// [`artifact_fingerprint`] of its serialized form). Serializes the
    /// model, so prefer fingerprinting the bytes directly when they are
    /// already at hand.
    pub fn fingerprint(&self) -> Result<u64, PersistError> {
        Ok(artifact_fingerprint(&self.to_bytes()?))
    }

    /// Load a model saved with [`Vrdag::save`]; the result is ready to
    /// [`Vrdag::generate`].
    pub fn load(path: impl AsRef<Path>) -> Result<Vrdag, PersistError> {
        let file = std::fs::File::open(path)?;
        Vrdag::load_from(std::io::BufReader::new(file))
    }

    /// Deserialize a model from a byte buffer produced by
    /// [`Vrdag::to_bytes`] / [`Vrdag::save_to`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Vrdag, PersistError> {
        Vrdag::load_from(bytes)
    }

    /// Load a model from an arbitrary reader (the format of
    /// [`Vrdag::save`]).
    pub fn load_from(reader: impl Read) -> Result<Vrdag, PersistError> {
        let mut r = Reader { r: reader };
        if r.u32()? != MAGIC {
            return Err(PersistError::Format("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::Format(format!("unsupported version {version}")));
        }
        let cfg = read_config(&mut r)?;
        cfg.validate().map_err(PersistError::Format)?;
        let n = r.u64()? as usize;
        let f = r.u64()? as usize;
        let edges_per_step = r.f64s()?;
        let loss_history = r.f64s()?;
        let final_terms = (r.f64()?, r.f64()?, r.f64()?);
        let train_t = r.u64()? as usize;
        let mean_new_active_per_step = r.f64()?;
        let t_moments = r.u64()? as usize;
        let mut attr_means = Vec::with_capacity(t_moments);
        let mut attr_stds = Vec::with_capacity(t_moments);
        for _ in 0..t_moments {
            attr_means.push(r.f32s()?);
            attr_stds.push(r.f32s()?);
        }
        let stats = TrainStats {
            edges_per_step,
            loss_history,
            final_terms,
            train_t,
            mean_new_active_per_step,
            attr_means,
            attr_stds,
        };

        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(model.cfg.seed);
        let modules = model.build_modules_for_load(f, n, &mut rng);
        let params = modules.parameters();
        let n_params = r.u64()? as usize;
        if n_params != params.len() {
            return Err(PersistError::Format(format!(
                "parameter count mismatch: file has {n_params}, architecture needs {}",
                params.len()
            )));
        }
        for p in &params {
            let rows = r.u64()? as usize;
            let cols = r.u64()? as usize;
            let data = r.f32s()?;
            if data.len() != rows * cols || (rows, cols) != p.shape() {
                return Err(PersistError::Format(format!(
                    "parameter shape mismatch: file [{rows},{cols}], architecture {:?}",
                    p.shape()
                )));
            }
            p.set_value(vrdag_tensor::Matrix::from_vec(rows, cols, data));
        }
        model.modules = Some(modules);
        model.stats = Some(stats);
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_round_trip_preserves_generation() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 31);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        model.fit(&g, &mut rng).unwrap();

        let dir = std::env::temp_dir().join("vrdag_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.vrdg");
        model.save(&path).unwrap();
        let loaded = Vrdag::load(&path).unwrap();

        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = model.generate(3, &mut r1).unwrap();
        let b = loaded.generate(3, &mut r2).unwrap();
        assert_eq!(a, b, "loaded model must generate identically");
    }

    #[test]
    fn bytes_round_trip_preserves_generation() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 13);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut model = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(8);
        model.fit(&g, &mut rng).unwrap();

        let bytes = model.to_bytes().unwrap();
        let loaded = Vrdag::from_bytes(&bytes).unwrap();

        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = model.generate(2, &mut r1).unwrap();
        let b = loaded.generate(2, &mut r2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 5);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut a = Vrdag::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(4);
        a.fit(&g, &mut rng).unwrap();

        // Same bytes => same fingerprint; round-tripping preserves it.
        let bytes = a.to_bytes().unwrap();
        assert_eq!(a.fingerprint().unwrap(), artifact_fingerprint(&bytes));
        let loaded = Vrdag::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.fingerprint().unwrap(), a.fingerprint().unwrap());

        // A differently-trained model => different fingerprint.
        let mut b = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(5);
        b.fit(&g, &mut rng).unwrap();
        assert_ne!(a.fingerprint().unwrap(), b.fingerprint().unwrap());

        // Any byte flip changes the fingerprint.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_ne!(artifact_fingerprint(&bytes), artifact_fingerprint(&flipped));
    }

    #[test]
    fn save_unfitted_fails() {
        let model = Vrdag::new(VrdagConfig::test_small());
        let dir = std::env::temp_dir().join("vrdag_persist");
        std::fs::create_dir_all(&dir).unwrap();
        // A failed save must not clobber an existing artifact at the path.
        let path = dir.join("nope.vrdg");
        std::fs::write(&path, b"precious existing artifact").unwrap();
        assert!(matches!(model.save(&path), Err(PersistError::NotFitted)));
        assert_eq!(std::fs::read(&path).unwrap(), b"precious existing artifact");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("vrdag_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.vrdg");
        std::fs::write(&path, b"not a model").unwrap();
        assert!(Vrdag::load(&path).is_err());
    }

    #[test]
    fn config_round_trips_through_binary() {
        let mut buf = Vec::new();
        let cfg = VrdagConfig::default();
        write_config(&mut Writer { w: &mut buf }, &cfg).unwrap();
        let decoded = read_config(&mut Reader { r: buf.as_slice() }).unwrap();
        assert_eq!(format!("{cfg:?}"), format!("{decoded:?}"));
    }
}

//! Time2Vec timestep embedding (Eq. 13 of the paper, after Kazemi et al.):
//!
//! `f_T(t)[0] = w_0 t + φ_0` (linear / non-periodic component) and
//! `f_T(t)[r] = sin(w_r t + φ_r)` for `r ≥ 1` (periodic components).

use rand::Rng;
use vrdag_tensor::{ops, Matrix, Tensor};

/// Learnable Time2Vec module with parameters `w, φ ∈ R^{d_T}` shared across
/// timesteps.
#[derive(Clone)]
pub struct Time2Vec {
    w: Tensor,
    phi: Tensor,
    d_t: usize,
}

/// `sin` applied to every column except column 0 (which stays linear) — the
/// piecewise definition of Eq. 13 as a single differentiable op.
fn sin_except_first(u: &Tensor) -> Tensor {
    let value = {
        let uv = u.value();
        let mut out = uv.clone();
        let cols = out.cols();
        for r in 0..out.rows() {
            for c in 1..cols {
                let v = out.get(r, c);
                out.set(r, c, v.sin());
            }
        }
        out
    };
    Tensor::from_op(
        value,
        vec![u.clone()],
        Box::new(|g, _out, parents| {
            if parents[0].participates() {
                let uv = parents[0].value();
                let mut gi = g.clone();
                let cols = gi.cols();
                for r in 0..gi.rows() {
                    for c in 1..cols {
                        let gv = gi.get(r, c);
                        gi.set(r, c, gv * uv.get(r, c).cos());
                    }
                }
                parents[0].accumulate_grad_owned(gi);
            }
        }),
    )
}

impl Time2Vec {
    /// New module with frequencies spread across scales so different
    /// periodicities are representable from initialization.
    pub fn new(d_t: usize, rng: &mut impl Rng) -> Self {
        assert!(d_t >= 1, "Time2Vec needs at least the linear component");
        let mut w = Matrix::zeros(1, d_t);
        let mut phi = Matrix::zeros(1, d_t);
        for c in 0..d_t {
            // Frequencies log-spaced in (0, 1]; the linear slope small.
            let base = if c == 0 { 0.1 } else { 1.0 / (1 << (c % 6).min(5)) as f32 };
            w.set(0, c, base * rng.gen_range(0.5..1.5));
            phi.set(0, c, rng.gen_range(0.0..std::f32::consts::PI));
        }
        Time2Vec { w: Tensor::param(w), phi: Tensor::param(phi), d_t }
    }

    /// Embedding dimensionality `d_T`.
    pub fn d_t(&self) -> usize {
        self.d_t
    }

    /// Embed integer timestep `t` as a `[1, d_T]` tensor.
    pub fn forward(&self, t: usize) -> Tensor {
        let u = ops::add(&ops::scale(&self.w, t as f32), &self.phi);
        sin_except_first(&u)
    }

    /// Embed and broadcast to `[n, d_T]` (one copy per node), staying on the
    /// tape so `w, φ` receive gradients from every node row.
    pub fn forward_broadcast(&self, t: usize, n: usize) -> Tensor {
        let row = self.forward(t);
        let ones = Tensor::constant(Matrix::ones(n, 1));
        ops::matmul(&ones, &row)
    }

    pub fn parameters(&self) -> Vec<Tensor> {
        vec![self.w.clone(), self.phi.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag_tensor::testing::check_gradients;

    #[test]
    fn shape_and_broadcast() {
        let mut rng = StdRng::seed_from_u64(1);
        let t2v = Time2Vec::new(5, &mut rng);
        assert_eq!(t2v.forward(3).shape(), (1, 5));
        assert_eq!(t2v.forward_broadcast(3, 7).shape(), (7, 5));
        assert_eq!(t2v.parameters().len(), 2);
    }

    #[test]
    fn periodic_components_are_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let t2v = Time2Vec::new(6, &mut rng);
        for t in 0..50 {
            let v = t2v.forward(t).value_clone();
            for c in 1..6 {
                assert!(v.get(0, c).abs() <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn linear_component_grows_with_t() {
        let mut rng = StdRng::seed_from_u64(3);
        let t2v = Time2Vec::new(4, &mut rng);
        let a = t2v.forward(1).value_clone().get(0, 0);
        let b = t2v.forward(100).value_clone().get(0, 0);
        assert!(b > a, "linear component must be monotone for positive w0");
    }

    #[test]
    fn broadcast_rows_are_identical() {
        let mut rng = StdRng::seed_from_u64(4);
        let t2v = Time2Vec::new(3, &mut rng);
        let m = t2v.forward_broadcast(5, 4).value_clone();
        for r in 1..4 {
            assert_eq!(m.row(r), m.row(0));
        }
    }

    #[test]
    fn sin_except_first_gradient() {
        check_gradients(&[(2, 4)], |t| sin_except_first(&t[0]), "sin_except_first");
    }

    #[test]
    fn parameters_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(5);
        let t2v = Time2Vec::new(4, &mut rng);
        let out = ops::sum_all(&t2v.forward_broadcast(2, 3));
        out.backward();
        assert!(t2v.w.grad().is_some());
        assert!(t2v.phi.grad().is_some());
    }
}

//! # vrdag-datasets
//!
//! Synthetic dynamic attributed graph datasets mirroring the six benchmarks
//! of the VRDAG paper (Table I): Emails-DNC, Bitcoin-Alpha, Wiki-Vote,
//! Guarantee (proprietary loan network), Brain, and GDELT.
//!
//! The real datasets are not redistributable (and the Guarantee network was
//! never public), so each [`spec::DatasetSpec`] drives a seeded generator
//! ([`synth::generate`]) reproducing the Table I shape parameters and the
//! qualitative regimes the paper relies on — heavy-tailed directed degrees,
//! community structure, temporal edge persistence with bursts, and a full
//! structure ⇄ attribute co-evolution loop. See DESIGN.md §4 for the
//! substitution rationale. Real data in the TSV format of
//! `vrdag_graph::io::load_tsv` can be dropped in wherever a
//! [`vrdag_graph::DynamicGraph`] is accepted.

pub mod spec;
pub mod synth;

pub use spec::{
    all_specs, bitcoin, brain, by_name, by_name_or_err, email, gdelt, guarantee, spec_names, tiny,
    wiki, DatasetSpec, Flavor, UnknownDataset,
};
pub use synth::{generate, generate_scaled};

//! Dataset specifications mirroring Table I of the paper.
//!
//! The real datasets (Emails-DNC, Bitcoin-Alpha, Wiki-Vote, Brain, GDELT and
//! the proprietary Guarantee loan network) are not redistributable, so each
//! spec drives a synthetic generator that reproduces the Table I shape
//! parameters (N, M, F, T) and the qualitative regime of the original
//! (degree heavy-tail, community structure, edge persistence, reciprocity,
//! burstiness, structure–attribute co-evolution). See DESIGN.md §4.

/// Qualitative regime of a dataset, tuning the synthetic generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Email-like communication: strong reciprocity, medium communities.
    Communication,
    /// Marketplace trust/ratings: low reciprocity, heavy-tailed raters.
    Transaction,
    /// Endorsement/voting: star-heavy, almost no reciprocity.
    Vote,
    /// Guaranteed-loan network: sparse, tree-like guarantor → borrower flow.
    Loan,
    /// Brain-activity graph: dense, periodic activity, many attributes.
    Activity,
    /// News-event graph: dense, bursty, event-driven.
    Event,
}

/// Full specification of a synthetic dynamic attributed graph dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper's tables.
    pub name: String,
    /// Number of nodes `N`.
    pub n: usize,
    /// Target number of temporal edges `M = Σ_t |E_t|`.
    pub m: usize,
    /// Attribute dimensionality `F` (the paper's `X` column).
    pub f: usize,
    /// Number of snapshots `T`.
    pub t: usize,
    /// Qualitative regime.
    pub flavor: Flavor,
    /// Number of planted communities.
    pub communities: usize,
    /// Fraction of edges surviving into the next snapshot.
    pub edge_persistence: f64,
    /// Probability that a new edge stays inside the source community.
    pub community_bias: f64,
    /// Power-law exponent of the node activity weights (heavier tail for
    /// smaller values).
    pub activity_exponent: f64,
    /// Probability of immediately adding the reciprocal edge.
    pub reciprocity: f64,
    /// Amplitude of the per-timestep activity modulation (0 = flat).
    pub burstiness: f64,
    /// Period (in snapshots) of the activity modulation.
    pub burst_period: usize,
    /// AR(1) coefficient of the attribute evolution.
    pub attr_autocorr: f64,
    /// Neighbor-diffusion coefficient (attributes drift toward the mean of
    /// their in-neighborhood — one half of the co-evolution loop).
    pub attr_diffusion: f64,
    /// Coupling of attribute value to log-degree (the other half of the
    /// co-evolution loop: high-degree nodes develop distinct attributes and
    /// attribute affinity biases future links).
    pub degree_coupling: f64,
    /// Std-dev of the per-step attribute innovation noise.
    pub attr_noise: f64,
    /// Strength of attribute-affinity edge preference in `[0, 1]`.
    pub attr_affinity: f64,
    /// Strength of the shared latent factor tying attribute dimensions
    /// together (cross-attribute Spearman correlation; Table II of the
    /// paper relies on the real datasets having strongly correlated
    /// attributes).
    pub attr_factor_strength: f64,
}

impl DatasetSpec {
    /// Scale node count and temporal edge budget by `factor` (timesteps and
    /// attribute dimensionality are preserved). Used for laptop-scale runs.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut s = self.clone();
        s.n = ((self.n as f64 * factor).round() as usize).max(16);
        s.m = ((self.m as f64 * factor).round() as usize).max(4 * s.t);
        s.name = if (factor - 1.0).abs() < 1e-12 {
            self.name.clone()
        } else {
            format!("{}@{:.2}", self.name, factor)
        };
        s
    }

    /// Shorten the snapshot sequence (used by the Fig. 9 timestep sweep).
    pub fn with_t(&self, t: usize) -> DatasetSpec {
        assert!(t >= 1);
        let mut s = self.clone();
        // Keep per-snapshot density constant.
        s.m = (self.m as f64 * t as f64 / self.t as f64).round() as usize;
        s.t = t;
        s
    }

    /// Mean edges per snapshot.
    pub fn edges_per_snapshot(&self) -> usize {
        self.m / self.t
    }
}

/// Emails-DNC: N=1,891, M=39,264, F=2, T=14.
pub fn email() -> DatasetSpec {
    DatasetSpec {
        name: "Email".into(),
        n: 1891,
        m: 39_264,
        f: 2,
        t: 14,
        flavor: Flavor::Communication,
        communities: 12,
        edge_persistence: 0.45,
        community_bias: 0.75,
        activity_exponent: 2.1,
        reciprocity: 0.35,
        burstiness: 0.35,
        burst_period: 7,
        attr_autocorr: 0.85,
        attr_diffusion: 0.10,
        degree_coupling: 0.25,
        attr_noise: 0.08,
        attr_affinity: 0.5,
        attr_factor_strength: 0.7,
    }
}

/// Bitcoin-Alpha: N=3,783, M=24,186, F=1, T=37.
pub fn bitcoin() -> DatasetSpec {
    DatasetSpec {
        name: "Bitcoin".into(),
        n: 3783,
        m: 24_186,
        f: 1,
        t: 37,
        flavor: Flavor::Transaction,
        communities: 20,
        edge_persistence: 0.15,
        community_bias: 0.45,
        activity_exponent: 1.9,
        reciprocity: 0.12,
        burstiness: 0.25,
        burst_period: 12,
        attr_autocorr: 0.9,
        attr_diffusion: 0.15,
        degree_coupling: 0.35,
        attr_noise: 0.1,
        attr_affinity: 0.35,
        attr_factor_strength: 0.7,
    }
}

/// Wiki-Vote: N=7,115, M=103,689, F=1, T=43.
pub fn wiki() -> DatasetSpec {
    DatasetSpec {
        name: "Wiki".into(),
        n: 7115,
        m: 103_689,
        f: 1,
        t: 43,
        flavor: Flavor::Vote,
        communities: 30,
        edge_persistence: 0.25,
        community_bias: 0.4,
        activity_exponent: 1.85,
        reciprocity: 0.06,
        burstiness: 0.3,
        burst_period: 10,
        attr_autocorr: 0.88,
        attr_diffusion: 0.08,
        degree_coupling: 0.4,
        attr_noise: 0.1,
        attr_affinity: 0.3,
        attr_factor_strength: 0.7,
    }
}

/// Guarantee (proprietary loan network): N=5,530, M=6,169, F=2, T=15.
pub fn guarantee() -> DatasetSpec {
    DatasetSpec {
        name: "Guarantee".into(),
        n: 5530,
        m: 6169,
        f: 2,
        t: 15,
        flavor: Flavor::Loan,
        communities: 80,
        edge_persistence: 0.7,
        community_bias: 0.9,
        activity_exponent: 2.4,
        reciprocity: 0.02,
        burstiness: 0.15,
        burst_period: 5,
        attr_autocorr: 0.92,
        attr_diffusion: 0.2,
        degree_coupling: 0.3,
        attr_noise: 0.05,
        attr_affinity: 0.6,
        attr_factor_strength: 0.7,
    }
}

/// Brain: N=5,000, M=529,093, F=20, T=12.
pub fn brain() -> DatasetSpec {
    DatasetSpec {
        name: "Brain".into(),
        n: 5000,
        m: 529_093,
        f: 20,
        t: 12,
        flavor: Flavor::Activity,
        communities: 10,
        edge_persistence: 0.6,
        community_bias: 0.85,
        activity_exponent: 2.6,
        reciprocity: 0.5,
        burstiness: 0.5,
        burst_period: 4,
        attr_autocorr: 0.8,
        attr_diffusion: 0.25,
        degree_coupling: 0.2,
        attr_noise: 0.12,
        attr_affinity: 0.55,
        attr_factor_strength: 0.7,
    }
}

/// GDELT: N=5,037, M=566,735, F=10, T=18.
pub fn gdelt() -> DatasetSpec {
    DatasetSpec {
        name: "GDELT".into(),
        n: 5037,
        m: 566_735,
        f: 10,
        t: 18,
        flavor: Flavor::Event,
        communities: 25,
        edge_persistence: 0.3,
        community_bias: 0.55,
        activity_exponent: 1.8,
        reciprocity: 0.2,
        burstiness: 0.6,
        burst_period: 6,
        attr_autocorr: 0.82,
        attr_diffusion: 0.12,
        degree_coupling: 0.35,
        attr_noise: 0.15,
        attr_affinity: 0.4,
        attr_factor_strength: 0.7,
    }
}

/// All six specs in the paper's Table I order.
pub fn all_specs() -> Vec<DatasetSpec> {
    vec![email(), bitcoin(), wiki(), guarantee(), brain(), gdelt()]
}

/// Look up a spec by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all_specs().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

/// The valid spec names, in the paper's Table I order — the list an
/// [`UnknownDataset`] error reports.
pub fn spec_names() -> Vec<String> {
    all_specs().into_iter().map(|s| s.name).collect()
}

/// A dataset name that matched no spec. The display form lists every
/// valid name, so callers (e.g. `vrdag-cli synth`) can surface it
/// verbatim instead of maintaining their own copy of the list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownDataset {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown dataset {:?}; valid names (case-insensitive): {}",
            self.name,
            spec_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownDataset {}

/// Like [`by_name`], but an unknown name yields a typed error whose
/// message lists the valid spec names.
pub fn by_name_or_err(name: &str) -> Result<DatasetSpec, UnknownDataset> {
    by_name(name).ok_or_else(|| UnknownDataset { name: name.to_string() })
}

/// A tiny spec for unit tests: ~60 nodes, 6 snapshots, 2 attributes.
pub fn tiny() -> DatasetSpec {
    DatasetSpec {
        name: "Tiny".into(),
        n: 60,
        m: 720,
        f: 2,
        t: 6,
        flavor: Flavor::Communication,
        communities: 4,
        edge_persistence: 0.5,
        community_bias: 0.7,
        activity_exponent: 2.0,
        reciprocity: 0.3,
        burstiness: 0.3,
        burst_period: 3,
        attr_autocorr: 0.85,
        attr_diffusion: 0.15,
        degree_coupling: 0.3,
        attr_noise: 0.1,
        attr_affinity: 0.5,
        attr_factor_strength: 0.7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_match_paper() {
        let e = email();
        assert_eq!((e.n, e.m, e.f, e.t), (1891, 39_264, 2, 14));
        let b = bitcoin();
        assert_eq!((b.n, b.m, b.f, b.t), (3783, 24_186, 1, 37));
        let w = wiki();
        assert_eq!((w.n, w.m, w.f, w.t), (7115, 103_689, 1, 43));
        let g = guarantee();
        assert_eq!((g.n, g.m, g.f, g.t), (5530, 6169, 2, 15));
        let br = brain();
        assert_eq!((br.n, br.m, br.f, br.t), (5000, 529_093, 20, 12));
        let gd = gdelt();
        assert_eq!((gd.n, gd.m, gd.f, gd.t), (5037, 566_735, 10, 18));
    }

    #[test]
    fn scaled_shrinks_n_and_m() {
        let s = wiki().scaled(0.1);
        assert_eq!(s.n, 712);
        assert_eq!(s.m, 10_369);
        assert_eq!(s.t, 43);
        assert!(s.name.starts_with("Wiki@"));
    }

    #[test]
    fn with_t_keeps_density() {
        let s = bitcoin().with_t(10);
        assert_eq!(s.t, 10);
        let per_snapshot_before = bitcoin().edges_per_snapshot();
        let per_snapshot_after = s.edges_per_snapshot();
        assert!((per_snapshot_before as i64 - per_snapshot_after as i64).abs() <= 66);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("email").is_some());
        assert!(by_name("GDELT").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn unknown_names_report_the_valid_list() {
        assert_eq!(by_name_or_err("bitcoin").unwrap().name, "Bitcoin");
        let err = by_name_or_err("nope").unwrap_err();
        assert_eq!(err.name, "nope");
        let message = err.to_string();
        for name in spec_names() {
            assert!(message.contains(&name), "{message} missing {name}");
        }
        assert!(message.contains("\"nope\""), "{message}");
    }

    #[test]
    fn all_specs_has_six() {
        assert_eq!(all_specs().len(), 6);
    }
}

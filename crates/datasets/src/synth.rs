//! Synthetic dynamic attributed graph generator driven by a
//! [`DatasetSpec`].
//!
//! The generative process is designed to exhibit exactly the phenomena the
//! VRDAG paper targets:
//!
//! 1. **Heavy-tailed directed degrees** — node out-activity and
//!    in-attractiveness weights are sampled from a power law with the
//!    spec's `activity_exponent`.
//! 2. **Community structure** — a planted partition biases edges inside
//!    communities with probability `community_bias`.
//! 3. **Temporal persistence** — a fraction `edge_persistence` of edges
//!    survives into the next snapshot; the remainder is resampled, with
//!    per-timestep volume modulated by a periodic burst factor.
//! 4. **Structure → attribute evolution** — attributes follow an AR(1)
//!    process with neighbor diffusion and log-degree coupling.
//! 5. **Attribute → structure evolution** — destination choice is biased
//!    toward attribute-similar nodes with strength `attr_affinity`,
//!    closing the co-evolution loop (§III-C of the paper).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use crate::spec::{DatasetSpec, Flavor};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashSet;
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::Matrix;

/// Weighted alias-free sampler over a cumulative distribution (binary
/// search on prefix sums). Rebuilt once per snapshot.
struct CumSampler {
    cum: Vec<f64>,
}

impl CumSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cum.push(acc);
        }
        CumSampler { cum }
    }

    fn total(&self) -> f64 {
        *self.cum.last().unwrap_or(&0.0)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> usize {
        let total = self.total();
        if total <= 0.0 {
            return 0;
        }
        let x = rng_f64(rng) * total;
        match self.cum.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(self.cum.len() - 1),
            Err(i) => i.min(self.cum.len() - 1),
        }
    }
}

fn rng_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate the dataset described by `spec`, deterministically from `seed`.
pub fn generate(spec: &DatasetSpec, seed: u64) -> DynamicGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.n;
    let f = spec.f;

    // Community assignment: geometric-ish sizes for realism.
    let mut community = vec![0u32; n];
    {
        let k = spec.communities.max(1);
        let mut weights: Vec<f64> = (0..k).map(|i| 1.0 / (1.0 + i as f64).sqrt()).collect();
        let total: f64 = weights.iter().sum();
        weights.iter_mut().for_each(|w| *w /= total);
        let sampler = CumSampler::new(&weights);
        for c in community.iter_mut() {
            *c = sampler.sample(&mut rng) as u32;
        }
    }
    let members: Vec<Vec<u32>> = {
        let mut m = vec![Vec::new(); spec.communities.max(1)];
        for (i, &c) in community.iter().enumerate() {
            m[c as usize].push(i as u32);
        }
        // Guard against empty communities (possible at tiny scales).
        for list in m.iter_mut() {
            if list.is_empty() {
                list.push(rng.gen_range(0..n) as u32);
            }
        }
        m
    };

    // Static heavy-tailed activity / attractiveness weights.
    let power = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        u.powf(-1.0 / (spec.activity_exponent - 1.0))
    };
    let out_activity: Vec<f64> = (0..n).map(|_| power(&mut rng)).collect();
    let in_attract: Vec<f64> = (0..n).map(|_| power(&mut rng)).collect();

    // Attributes follow a one-factor model (cross-dimension correlation,
    // which Table II of the paper relies on): per-dimension loadings λ_d
    // with alternating signs, a per-node latent factor u_i that carries
    // the co-evolution dynamics, and an idiosyncratic AR(1) residual.
    let comm_means = Matrix::rand_normal(spec.communities.max(1), f, 0.5, 0.4, &mut rng);
    let loadings: Vec<f32> = (0..f)
        .map(|d| {
            let sign = if d % 2 == 0 { 1.0 } else { -1.0 };
            sign * spec.attr_factor_strength as f32 * rng.gen_range(0.7..1.3)
        })
        .collect();
    let mut factor: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut idio = Matrix::rand_normal(n, f, 0.0, 0.15, &mut rng);
    let compose_attrs = |factor: &[f32], idio: &Matrix, community: &[u32], comm_means: &Matrix| {
        let mut x = Matrix::zeros(factor.len(), idio.cols());
        for i in 0..factor.len() {
            let c = community[i] as usize;
            for d in 0..idio.cols() {
                x.set(i, d, comm_means.get(c, d) + loadings[d] * factor[i] + idio.get(i, d));
            }
        }
        x
    };
    let mut attrs = compose_attrs(&factor, &idio, &community, &comm_means);

    // Pre-normalized per-step edge targets: burst factors scaled so they
    // sum to M (a running budget would starve late snapshots after early
    // bursts, producing degenerate near-empty snapshots).
    let burst_factors: Vec<f64> = (0..spec.t)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / spec.burst_period.max(1) as f64;
            let mut burst = (1.0 + spec.burstiness * phase.sin()).max(0.1);
            if spec.flavor == Flavor::Event {
                // Events add random spikes on top of periodicity.
                burst *= 1.0 + 0.4 * rng_f64(&mut rng) * rng_f64(&mut rng);
            }
            burst
        })
        .collect();
    let burst_total: f64 = burst_factors.iter().sum();
    let step_targets: Vec<usize> = burst_factors
        .iter()
        .map(|b| ((spec.m as f64 * b / burst_total).round() as usize).max(1))
        .collect();

    let mut snapshots: Vec<Snapshot> = Vec::with_capacity(spec.t);
    let mut prev_edges: Vec<(u32, u32)> = Vec::new();

    for t in 0..spec.t {
        let m_t = step_targets[t].min(n * (n - 1));

        let mut edge_set: HashSet<(u32, u32)> = HashSet::with_capacity(m_t * 2);
        // Persist a fraction of the previous snapshot's edges.
        for &e in &prev_edges {
            if edge_set.len() >= m_t {
                break;
            }
            if rng_f64(&mut rng) < spec.edge_persistence {
                edge_set.insert(e);
            }
        }

        // Degree-coupled source weights: structure feeds attribute, and the
        // first attribute dimension feeds back into activity.
        let src_weights: Vec<f64> = (0..n)
            .map(|i| out_activity[i] * (1.0 + spec.degree_coupling * attrs.get(i, 0).abs() as f64))
            .collect();
        let src_sampler = CumSampler::new(&src_weights);
        let dst_sampler = CumSampler::new(&in_attract);
        // Per-community destination samplers.
        let comm_samplers: Vec<CumSampler> = members
            .iter()
            .map(|list| {
                CumSampler::new(&list.iter().map(|&v| in_attract[v as usize]).collect::<Vec<_>>())
            })
            .collect();

        let mut attempts = 0usize;
        let max_attempts = m_t * 30 + 1000;
        while edge_set.len() < m_t && attempts < max_attempts {
            attempts += 1;
            let u = src_sampler.sample(&mut rng);
            let c = community[u] as usize;
            let v = if rng_f64(&mut rng) < spec.community_bias {
                let list = &members[c];
                list[comm_samplers[c].sample(&mut rng)] as usize
            } else {
                dst_sampler.sample(&mut rng)
            };
            if u == v {
                continue;
            }
            // Attribute-affinity rejection: dissimilar pairs are rejected
            // with probability `attr_affinity · (1 − sim)`.
            if f > 0 && spec.attr_affinity > 0.0 {
                let d = (attrs.get(u, 0) - attrs.get(v, 0)).abs() as f64;
                let sim = (-d).exp();
                if rng_f64(&mut rng) < spec.attr_affinity * (1.0 - sim) {
                    continue;
                }
            }
            edge_set.insert((u as u32, v as u32));
            if edge_set.len() < m_t && rng_f64(&mut rng) < spec.reciprocity {
                edge_set.insert((v as u32, u as u32));
            }
        }

        let edges: Vec<(u32, u32)> = edge_set.into_iter().collect();
        let snapshot = Snapshot::new(n, edges, attrs.clone());

        // Attribute evolution on the *current* structure (structure →
        // attribute direction of the co-evolution loop), acting on the
        // shared factor so cross-dimension correlation persists over time.
        let gauss = |rng: &mut StdRng| -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let mut next_factor = vec![0.0f32; n];
        for i in 0..n {
            let nbrs = snapshot.in_adj().neighbors(i);
            let deg = (snapshot.in_degree(i) + snapshot.out_degree(i)) as f32;
            let own = factor[i];
            let nbr_mean = if nbrs.is_empty() {
                own
            } else {
                nbrs.iter().map(|&v| factor[v as usize]).sum::<f32>() / nbrs.len() as f32
            };
            next_factor[i] = spec.attr_autocorr as f32 * own
                + spec.attr_diffusion as f32 * (nbr_mean - own)
                + spec.degree_coupling as f32 * 0.05 * (1.0 + deg).ln()
                + spec.attr_noise as f32 * gauss(&mut rng);
        }
        factor = next_factor;
        for i in 0..n {
            for d in 0..f {
                let v = spec.attr_autocorr as f32 * idio.get(i, d)
                    + 0.5 * spec.attr_noise as f32 * gauss(&mut rng);
                idio.set(i, d, v);
            }
        }
        attrs = compose_attrs(&factor, &idio, &community, &comm_means);
        prev_edges = snapshot.edges().to_vec();
        snapshots.push(snapshot);
    }

    DynamicGraph::new(snapshots)
}

/// Convenience: generate the dataset at a reduced scale.
pub fn generate_scaled(spec: &DatasetSpec, scale: f64, seed: u64) -> DynamicGraph {
    generate(&spec.scaled(scale), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn tiny_dataset_matches_spec_shape() {
        let s = spec::tiny();
        let g = generate(&s, 7);
        assert_eq!(g.n_nodes(), s.n);
        assert_eq!(g.n_attrs(), s.f);
        assert_eq!(g.t_len(), s.t);
        let m = g.temporal_edge_count();
        // Within 40% of the target budget (dedup and rejection trim some).
        assert!(
            (m as f64) > 0.6 * s.m as f64 && (m as f64) < 1.4 * s.m as f64,
            "temporal edges {m} vs target {}",
            s.m
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = spec::tiny();
        let a = generate(&s, 42);
        let b = generate(&s, 42);
        assert_eq!(a, b);
        let c = generate(&s, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn edges_persist_across_snapshots() {
        let s = spec::tiny();
        let g = generate(&s, 3);
        // With persistence 0.5, consecutive snapshots must share edges.
        let mut shared = 0usize;
        for t in 0..g.t_len() - 1 {
            let a: std::collections::HashSet<_> = g.snapshot(t).edges().iter().collect();
            shared += g.snapshot(t + 1).edges().iter().filter(|e| a.contains(e)).count();
        }
        assert!(shared > 0, "no temporal persistence at all");
    }

    #[test]
    fn attributes_evolve_but_autocorrelate() {
        let s = spec::tiny();
        let g = generate(&s, 9);
        let x0 = g.snapshot(0).attrs();
        let x1 = g.snapshot(1).attrs();
        // Not identical...
        assert_ne!(x0.data(), x1.data());
        // ...but correlated: mean |Δ| well below the attribute scale.
        let mean_abs_delta: f32 =
            x0.data().iter().zip(x1.data().iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / x0.len() as f32;
        let scale: f32 = x0.data().iter().map(|v| v.abs()).sum::<f32>() / x0.len() as f32;
        assert!(mean_abs_delta < scale.max(0.1), "delta {mean_abs_delta} vs scale {scale}");
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let s = spec::email().scaled(0.15);
        let g = generate(&s, 11);
        let degs = vrdag_graph::algo::out_degrees(g.snapshot(0));
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!((max as f64) > 5.0 * mean, "max degree {max} not heavy-tailed vs mean {mean}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = generate(&spec::tiny(), 5);
        for (_, s) in g.iter() {
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in s.edges() {
                assert_ne!(u, v, "self loop");
                assert!(seen.insert((u, v)), "duplicate edge");
            }
        }
    }

    #[test]
    fn loan_flavor_is_sparse() {
        let g = generate(&spec::guarantee().scaled(0.05), 2);
        let density = g.snapshot(0).density();
        assert!(density < 0.02, "guarantee should be sparse, got {density}");
    }
}

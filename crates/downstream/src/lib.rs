//! # vrdag-downstream
//!
//! A compact CoEvoGNN-like predictor (Wang et al., TKDE 2021) for the
//! Fig. 10 case study of the VRDAG paper: forecasting the entire future
//! graph snapshot, decomposed into **link prediction** (F1) and **node
//! attribute prediction** (RMSE).
//!
//! The model embeds each snapshot with a one-layer message-passing encoder
//! over node attributes + degree features, then predicts the next
//! snapshot's adjacency via a bilinear edge scorer and next attributes via
//! a linear head — the co-evolution structure of the original at reduced
//! capacity. The harness trains it on (a) the original sequence prefix,
//! (b) the prefix augmented with a synthetic sequence, and compares test
//! scores on the held-out final snapshot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_tensor::nn::{Activation, Linear};
use vrdag_tensor::ops;
use vrdag_tensor::{no_grad, optim, Matrix, Tensor};

/// Hyperparameters of the predictor.
#[derive(Clone, Debug)]
pub struct CoEvoConfig {
    /// Embedding width.
    pub d: usize,
    /// Training epochs over the sequence.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negative samples per positive edge during training.
    pub neg_per_pos: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoEvoConfig {
    fn default() -> Self {
        CoEvoConfig { d: 32, epochs: 40, lr: 1e-2, neg_per_pos: 1, seed: 7 }
    }
}

/// Result of the Fig. 10 evaluation for one training condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Link-prediction F1 on the held-out final snapshot.
    pub f1: f64,
    /// Attribute-prediction RMSE on the held-out final snapshot.
    pub rmse: f64,
}

/// The predictor network.
pub struct CoEvoGnn {
    cfg: CoEvoConfig,
    w_self: Linear,
    w_nbr: Linear,
    edge_bilinear: Linear,
    attr_head: Linear,
    f: usize,
}

fn snapshot_input(s: &Snapshot) -> Matrix {
    let n = s.n_nodes();
    let f = s.n_attrs();
    let mut m = Matrix::zeros(n, f + 2);
    for i in 0..n {
        let row = m.row_mut(i);
        row[..f].copy_from_slice(s.attrs().row(i));
        row[f] = (1.0 + s.in_degree(i) as f32).ln();
        row[f + 1] = (1.0 + s.out_degree(i) as f32).ln();
    }
    m
}

impl CoEvoGnn {
    /// Build for graphs with `f` attribute dimensions.
    pub fn new(f: usize, cfg: CoEvoConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d_in = f + 2;
        CoEvoGnn {
            w_self: Linear::new(d_in, cfg.d, &mut rng),
            w_nbr: Linear::new(d_in, cfg.d, &mut rng),
            edge_bilinear: Linear::new(cfg.d, cfg.d, &mut rng),
            attr_head: Linear::new(cfg.d, f.max(1), &mut rng),
            f,
            cfg,
        }
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.w_self.parameters();
        p.extend(self.w_nbr.parameters());
        p.extend(self.edge_bilinear.parameters());
        p.extend(self.attr_head.parameters());
        p
    }

    /// Embed a snapshot: `tanh(X W_self + (A_in X) W_nbr)`.
    fn embed(&self, s: &Snapshot) -> Tensor {
        let x = Tensor::constant(snapshot_input(s));
        let adj = Rc::new(s.in_adj().clone());
        let agg = ops::spmm_sum(adj, &x);
        Activation::Tanh.apply(&ops::add(&self.w_self.forward(&x), &self.w_nbr.forward(&agg)))
    }

    /// Pair scores `σ(e_u · W e_v)` for the given pairs.
    fn pair_scores(&self, emb: &Tensor, src: Rc<Vec<u32>>, dst: Rc<Vec<u32>>) -> Tensor {
        let proj = self.edge_bilinear.forward(emb);
        let eu = ops::gather_rows(emb, src);
        let ev = ops::gather_rows(&proj, dst);
        ops::sigmoid(&ops::sum_cols(&ops::mul(&eu, &ev)))
    }

    /// Train on consecutive snapshot pairs of `graph`.
    pub fn train(&mut self, graph: &DynamicGraph) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xABCD);
        let params = self.parameters();
        let mut adam = optim::Adam::new(self.cfg.lr);
        let n = graph.n_nodes();
        for _epoch in 0..self.cfg.epochs {
            for t in 0..graph.t_len().saturating_sub(1) {
                let cur = graph.snapshot(t);
                let nxt = graph.snapshot(t + 1);
                optim::zero_grad(&params);
                let emb = self.embed(cur);
                // Link loss on next-step edges + sampled negatives.
                let mut src = Vec::new();
                let mut dst = Vec::new();
                let mut y = Vec::new();
                for &(u, v) in nxt.edges() {
                    src.push(u);
                    dst.push(v);
                    y.push(1.0);
                    for _ in 0..self.cfg.neg_per_pos {
                        let mut vv = rng.gen_range(0..n) as u32;
                        if vv == u {
                            vv = (vv + 1) % n as u32;
                        }
                        src.push(u);
                        dst.push(vv);
                        y.push(0.0);
                    }
                }
                if src.is_empty() {
                    continue;
                }
                let p = self.pair_scores(&emb, Rc::new(src), Rc::new(dst));
                let yl = y.len();
                let link_loss =
                    ops::bce_probs(&p, Rc::new(Matrix::from_vec(yl, 1, y)), None, yl as f32);
                // Attribute loss toward the next snapshot.
                let loss = if self.f > 0 {
                    let x_hat = self.attr_head.forward(&emb);
                    let attr_loss = ops::mse_loss(&x_hat, Rc::new(nxt.attrs().clone()));
                    ops::add(&link_loss, &attr_loss)
                } else {
                    link_loss
                };
                if loss.item().is_finite() {
                    loss.backward();
                    optim::clip_global_norm(&params, 5.0);
                    adam.step(&params);
                }
            }
        }
    }

    /// Evaluate next-snapshot forecasting: embed `context`, predict the
    /// links and attributes of `target`.
    pub fn evaluate(&self, context: &Snapshot, target: &Snapshot, seed: u64) -> EvalResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = context.n_nodes();
        no_grad(|| {
            let emb = self.embed(context);
            // Balanced candidate set: every true edge + one random non-edge.
            let mut src = Vec::new();
            let mut dst = Vec::new();
            let mut labels = Vec::new();
            for &(u, v) in target.edges() {
                src.push(u);
                dst.push(v);
                labels.push(true);
                let mut vv = rng.gen_range(0..n) as u32;
                let mut guard = 0;
                while (target.has_edge(u, vv) || vv == u) && guard < 20 {
                    vv = rng.gen_range(0..n) as u32;
                    guard += 1;
                }
                src.push(u);
                dst.push(vv);
                labels.push(false);
            }
            let f1 = if src.is_empty() {
                0.0
            } else {
                let p = self.pair_scores(&emb, Rc::new(src), Rc::new(dst));
                let pv = p.value_clone();
                let (mut tp, mut fp, mut fnn) = (0.0f64, 0.0f64, 0.0f64);
                for (i, &is_pos) in labels.iter().enumerate() {
                    let pred = pv.get(i, 0) > 0.5;
                    match (pred, is_pos) {
                        (true, true) => tp += 1.0,
                        (true, false) => fp += 1.0,
                        (false, true) => fnn += 1.0,
                        (false, false) => {}
                    }
                }
                if tp == 0.0 {
                    0.0
                } else {
                    let prec = tp / (tp + fp);
                    let rec = tp / (tp + fnn);
                    2.0 * prec * rec / (prec + rec)
                }
            };
            let rmse = if self.f > 0 {
                let x_hat = self.attr_head.forward(&emb).value_clone();
                let xt = target.attrs();
                let mut sq = 0.0f64;
                for i in 0..n {
                    for d in 0..self.f {
                        let e = x_hat.get(i, d) as f64 - xt.get(i, d) as f64;
                        sq += e * e;
                    }
                }
                (sq / (n * self.f) as f64).sqrt()
            } else {
                0.0
            };
            EvalResult { f1, rmse }
        })
    }
}

/// The Fig. 10 experiment for one condition: train CoEvoGNN on the prefix
/// of `original` (optionally concatenated with `augmentation`), then
/// forecast the final snapshot of `original` from its penultimate one.
pub fn evaluate_augmentation(
    original: &DynamicGraph,
    augmentation: Option<&DynamicGraph>,
    cfg: CoEvoConfig,
) -> EvalResult {
    assert!(original.t_len() >= 3, "need ≥ 3 snapshots to train and test");
    let train_prefix = original.prefix(original.t_len() - 1);
    let train_data = match augmentation {
        Some(aug) => train_prefix.concat_time(aug),
        None => train_prefix,
    };
    let mut model = CoEvoGnn::new(original.n_attrs(), cfg.clone());
    model.train(&train_data);
    model.evaluate(
        original.snapshot(original.t_len() - 2),
        original.snapshot(original.t_len() - 1),
        cfg.seed ^ 0x77,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DynamicGraph {
        vrdag_datasets::generate(&vrdag_datasets::tiny(), 21)
    }

    fn quick_cfg() -> CoEvoConfig {
        CoEvoConfig { d: 8, epochs: 6, lr: 1e-2, neg_per_pos: 1, seed: 3 }
    }

    #[test]
    fn training_improves_over_untrained() {
        let g = toy();
        let cfg = quick_cfg();
        let untrained = CoEvoGnn::new(g.n_attrs(), cfg.clone());
        let base = untrained.evaluate(g.snapshot(g.t_len() - 2), g.snapshot(g.t_len() - 1), 1);
        let mut model = CoEvoGnn::new(g.n_attrs(), cfg);
        model.train(&g.prefix(g.t_len() - 1));
        let trained = model.evaluate(g.snapshot(g.t_len() - 2), g.snapshot(g.t_len() - 1), 1);
        assert!(
            trained.f1 >= base.f1 || trained.rmse <= base.rmse,
            "training helped neither task: {base:?} -> {trained:?}"
        );
    }

    #[test]
    fn f1_is_in_unit_interval() {
        let g = toy();
        let r = evaluate_augmentation(&g, None, quick_cfg());
        assert!((0.0..=1.0).contains(&r.f1), "f1 {}", r.f1);
        assert!(r.rmse.is_finite() && r.rmse >= 0.0);
    }

    #[test]
    fn augmentation_changes_outcome_deterministically() {
        let g = toy();
        let aug = vrdag_datasets::generate(&vrdag_datasets::tiny(), 22);
        let a = evaluate_augmentation(&g, Some(&aug), quick_cfg());
        let b = evaluate_augmentation(&g, Some(&aug), quick_cfg());
        assert_eq!(a, b, "same seed must reproduce");
    }

    #[test]
    #[should_panic(expected = "need ≥ 3 snapshots")]
    fn rejects_too_short_sequences() {
        let g = toy().prefix(2);
        let _ = evaluate_augmentation(&g, None, quick_cfg());
    }
}

//! Local clustering coefficients on the undirected projection (the paper's
//! "Clus dist" metric and the Fig. 5 temporal difference).

// Index-based loops below walk several parallel arrays in hot paths;
// iterator zips would obscure them. (clippy::needless_range_loop)
#![allow(clippy::needless_range_loop)]

use crate::snapshot::Snapshot;

/// Local clustering coefficient per node: `C_i = 2·tri(i) / (d_i (d_i−1))`
/// over the undirected projection; nodes with degree < 2 get 0.
///
/// Triangles are counted by intersecting sorted neighbor lists
/// (`O(Σ_i d_i² log d)` worst case, fine at the paper's graph sizes).
pub fn local_clustering(s: &Snapshot) -> Vec<f64> {
    let adj = s.undirected_adj();
    let n = s.n_nodes();
    let mut out = vec![0.0f64; n];
    for i in 0..n {
        let nbrs = adj.neighbors(i);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for (a_pos, &a) in nbrs.iter().enumerate() {
            let a_nbrs = adj.neighbors(a as usize);
            // Count pairs once: only neighbors after `a` in i's list.
            for &b in &nbrs[a_pos + 1..] {
                if a_nbrs.binary_search(&b).is_ok() {
                    links += 1;
                }
            }
        }
        out[i] = 2.0 * links as f64 / (d as f64 * (d as f64 - 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn snap(n: usize, edges: Vec<(u32, u32)>) -> Snapshot {
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    #[test]
    fn triangle_has_clustering_one() {
        let s = snap(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(local_clustering(&s), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn path_has_clustering_zero() {
        let s = snap(3, vec![(0, 1), (1, 2)]);
        assert_eq!(local_clustering(&s), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: C_0 = C_2 = 2*2/(3*2) = 2/3,
        // C_1 = C_3 = 1 (their two neighbors 0,2 are connected).
        let s = snap(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let c = local_clustering(&s);
        assert!((c[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direction_does_not_matter() {
        // Directed 2-cycles still count as single undirected edges.
        let a = snap(3, vec![(0, 1), (1, 2), (2, 0)]);
        let b = snap(3, vec![(1, 0), (2, 1), (0, 2), (0, 1)]);
        assert_eq!(local_clustering(&a), local_clustering(&b));
    }
}

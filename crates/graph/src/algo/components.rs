//! Weakly connected components via union-find (path halving + union by
//! size). Used for the NC (number of components) and LCC (largest connected
//! component size) metrics of Table I.

use crate::snapshot::Snapshot;

/// Result of a component decomposition.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentInfo {
    /// Component label per node (labels are arbitrary but consistent).
    pub labels: Vec<u32>,
    /// Size of each component, indexed by label.
    pub sizes: Vec<u32>,
}

impl ComponentInfo {
    /// Number of components (isolated nodes count as singleton components).
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }
}

/// Weakly connected components of a directed snapshot (edge direction
/// ignored, as in the paper's NC/LCC metrics).
pub fn weakly_connected_components(s: &Snapshot) -> ComponentInfo {
    let n = s.n_nodes();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for &(u, v) in s.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (big, small) =
                if size[ru as usize] >= size[rv as usize] { (ru, rv) } else { (rv, ru) };
            parent[small as usize] = big;
            size[big as usize] += size[small as usize];
        }
    }

    let mut label_of_root = vec![u32::MAX; n];
    let mut labels = vec![0u32; n];
    let mut sizes = Vec::new();
    for i in 0..n as u32 {
        let r = find(&mut parent, i);
        if label_of_root[r as usize] == u32::MAX {
            label_of_root[r as usize] = sizes.len() as u32;
            sizes.push(0);
        }
        let l = label_of_root[r as usize];
        labels[i as usize] = l;
        sizes[l as usize] += 1;
    }
    ComponentInfo { labels, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn snap(n: usize, edges: Vec<(u32, u32)>) -> Snapshot {
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let info = weakly_connected_components(&snap(5, vec![]));
        assert_eq!(info.count(), 5);
        assert_eq!(info.largest(), 1);
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 and 2 -> 1 form one weak component with 3 nodes.
        let info = weakly_connected_components(&snap(4, vec![(0, 1), (2, 1)]));
        assert_eq!(info.count(), 2); // {0,1,2} and {3}
        assert_eq!(info.largest(), 3);
        assert_eq!(info.labels[0], info.labels[1]);
        assert_eq!(info.labels[1], info.labels[2]);
        assert_ne!(info.labels[3], info.labels[0]);
    }

    #[test]
    fn chain_is_one_component() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let info = weakly_connected_components(&snap(10, edges));
        assert_eq!(info.count(), 1);
        assert_eq!(info.largest(), 10);
    }

    #[test]
    fn sizes_sum_to_n() {
        let info = weakly_connected_components(&snap(7, vec![(0, 1), (2, 3), (3, 4)]));
        let total: u32 = info.sizes.iter().sum();
        assert_eq!(total, 7);
        assert_eq!(info.count(), 4); // {0,1}, {2,3,4}, {5}, {6}
    }
}

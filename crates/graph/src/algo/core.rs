//! K-core decomposition (coreness) on the undirected projection, used by
//! the Fig. 6 temporal structure difference metric.

use crate::snapshot::Snapshot;

/// Coreness of every node: the largest `k` such that the node belongs to
/// the `k`-core of the undirected projection. Linear-time bucket peeling
/// (Batagelj–Zaveršnik).
pub fn coreness(s: &Snapshot) -> Vec<u32> {
    let adj = s.undirected_adj();
    let n = s.n_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<u32> = (0..n).map(|i| adj.degree(i) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of node in vert
    let mut vert = vec![0u32; n]; // nodes sorted by degree
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }

    let mut core = degree.clone();
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = degree[v];
        for &u in adj.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first node of its
                // current degree bucket.
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    pos[u] = pw;
                    pos[w] = pu;
                    vert[pu] = w as u32;
                    vert[pw] = u as u32;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn snap(n: usize, edges: Vec<(u32, u32)>) -> Snapshot {
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    #[test]
    fn isolated_nodes_have_core_zero() {
        assert_eq!(coreness(&snap(3, vec![])), vec![0, 0, 0]);
    }

    #[test]
    fn path_is_one_core() {
        assert_eq!(coreness(&snap(4, vec![(0, 1), (1, 2), (2, 3)])), vec![1, 1, 1, 1]);
    }

    #[test]
    fn triangle_is_two_core() {
        assert_eq!(coreness(&snap(3, vec![(0, 1), (1, 2), (2, 0)])), vec![2, 2, 2]);
    }

    #[test]
    fn clique_with_pendant() {
        // K4 on {0,1,2,3} plus pendant 4-0: clique nodes have coreness 3,
        // the pendant 1.
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 0)];
        assert_eq!(coreness(&snap(5, edges)), vec![3, 3, 3, 3, 1]);
    }

    #[test]
    fn two_triangles_joined_by_edge() {
        // Triangles {0,1,2} and {3,4,5} joined by 2-3: all coreness 2.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        assert_eq!(coreness(&snap(6, edges)), vec![2; 6]);
    }
}

//! Degree utilities: in/out degree sequences, histograms, and wedge counts.

use crate::snapshot::Snapshot;

/// In-degree of every node.
pub fn in_degrees(s: &Snapshot) -> Vec<usize> {
    (0..s.n_nodes()).map(|i| s.in_degree(i)).collect()
}

/// Out-degree of every node.
pub fn out_degrees(s: &Snapshot) -> Vec<usize> {
    (0..s.n_nodes()).map(|i| s.out_degree(i)).collect()
}

/// Distinct-neighbor degree on the undirected projection.
pub fn undirected_degrees(s: &Snapshot) -> Vec<usize> {
    s.undirected_degrees()
}

/// Histogram of a degree sequence as raw counts (index = degree). Returns
/// an empty vector for an empty sequence.
pub fn degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let Some(&max) = degrees.iter().max() else {
        return Vec::new();
    };
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Wedge (open-triad) count `Σ_i C(d_i, 2)` over undirected degrees — the
/// "Wedge count" column of Table I.
pub fn wedge_count(s: &Snapshot) -> u64 {
    s.undirected_degrees().iter().map(|&d| (d as u64) * (d.saturating_sub(1) as u64) / 2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn snap(n: usize, edges: Vec<(u32, u32)>) -> Snapshot {
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    #[test]
    fn degree_sequences() {
        let s = snap(3, vec![(0, 1), (0, 2), (2, 1)]);
        assert_eq!(out_degrees(&s), vec![2, 0, 1]);
        assert_eq!(in_degrees(&s), vec![0, 2, 1]);
        assert_eq!(undirected_degrees(&s), vec![2, 2, 2]);
    }

    #[test]
    fn histogram_counts() {
        assert_eq!(degree_histogram(&[0, 1, 1, 3]), vec![1, 2, 0, 1]);
        assert!(degree_histogram(&[]).is_empty());
    }

    #[test]
    fn wedge_count_star() {
        // Star K1,4: center degree 4 => C(4,2)=6 wedges; leaves contribute 0.
        let s = snap(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(wedge_count(&s), 6);
    }

    #[test]
    fn wedge_count_triangle() {
        let s = snap(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(wedge_count(&s), 3);
    }
}

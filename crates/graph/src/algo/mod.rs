//! Graph algorithms needed by the paper's evaluation metrics: weakly
//! connected components (NC / LCC), local clustering coefficients,
//! k-core decomposition (coreness), and degree utilities.

mod clustering;
mod components;
mod core;
mod degree;

pub use clustering::local_clustering;
pub use components::{weakly_connected_components, ComponentInfo};
pub use core::coreness;
pub use degree::{degree_histogram, in_degrees, out_degrees, undirected_degrees, wedge_count};

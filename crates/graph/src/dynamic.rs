//! The dynamic attributed graph `G = {G_t(A_t, X_t)}_{t=1..T}` (§II-A of
//! the paper): a sequence of snapshots over a unified node set.

use crate::snapshot::Snapshot;

/// A sequence of attributed snapshots over the same `n` nodes with the same
/// attribute dimensionality `f`.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicGraph {
    n: usize,
    f: usize,
    snapshots: Vec<Snapshot>,
}

impl DynamicGraph {
    /// Build from snapshots (all must agree on `n` and `f`).
    ///
    /// # Panics
    /// Panics on an empty sequence or mismatched shapes.
    pub fn new(snapshots: Vec<Snapshot>) -> Self {
        assert!(!snapshots.is_empty(), "a dynamic graph needs at least one snapshot");
        let n = snapshots[0].n_nodes();
        let f = snapshots[0].n_attrs();
        for (t, s) in snapshots.iter().enumerate() {
            assert_eq!(s.n_nodes(), n, "snapshot {t}: node count mismatch");
            assert_eq!(s.n_attrs(), f, "snapshot {t}: attribute dim mismatch");
        }
        DynamicGraph { n, f, snapshots }
    }

    /// Number of nodes `N = |V|` (union node set, fixed across snapshots).
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Attribute dimensionality `F`.
    pub fn n_attrs(&self) -> usize {
        self.f
    }

    /// Number of timesteps `T`.
    pub fn t_len(&self) -> usize {
        self.snapshots.len()
    }

    /// Total number of temporal edges `M = Σ_t |E_t|` (the paper's `M`).
    pub fn temporal_edge_count(&self) -> usize {
        self.snapshots.iter().map(|s| s.n_edges()).sum()
    }

    /// Snapshot at timestep `t` (0-based).
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }

    /// All snapshots in order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Iterate over `(t, snapshot)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Snapshot)> {
        self.snapshots.iter().enumerate()
    }

    /// Approximate resident size in bytes: the sum of
    /// [`Snapshot::approx_bytes`] over all snapshots. O(T). This tracks
    /// what is resident *now* — it grows when undirected projections are
    /// lazily materialized; byte-budgeted caches should charge
    /// [`approx_bytes_reserved`](Self::approx_bytes_reserved) instead.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<DynamicGraph>()
            + self.snapshots.iter().map(Snapshot::approx_bytes).sum::<usize>()
    }

    /// Lifetime upper bound on [`approx_bytes`](Self::approx_bytes): the
    /// sum of [`Snapshot::approx_bytes_reserved`], which pre-accounts the
    /// lazily-built undirected projections. Used by the serving layer's
    /// byte-budgeted snapshot cache so cached sequences cannot outgrow
    /// their accounted size when metrics touch them later.
    pub fn approx_bytes_reserved(&self) -> usize {
        std::mem::size_of::<DynamicGraph>()
            + self.snapshots.iter().map(Snapshot::approx_bytes_reserved).sum::<usize>()
    }

    /// The prefix `G_{1..=t_len}` as a new graph (used by the downstream
    /// case study, which trains on the prefix and tests on the final
    /// snapshot).
    pub fn prefix(&self, t_len: usize) -> DynamicGraph {
        assert!(t_len >= 1 && t_len <= self.t_len(), "invalid prefix length");
        DynamicGraph::new(self.snapshots[..t_len].to_vec())
    }

    /// Concatenate two graphs over the same node set in time (used for data
    /// augmentation: original ++ synthetic).
    pub fn concat_time(&self, other: &DynamicGraph) -> DynamicGraph {
        assert_eq!(self.n, other.n, "node count mismatch");
        assert_eq!(self.f, other.f, "attribute dim mismatch");
        let mut snaps = self.snapshots.clone();
        snaps.extend(other.snapshots.iter().cloned());
        DynamicGraph::new(snaps)
    }

    /// Nodes that have at least one (in or out) edge in any snapshot.
    pub fn active_nodes(&self) -> Vec<u32> {
        let mut active = vec![false; self.n];
        for s in &self.snapshots {
            for &(u, v) in s.edges() {
                active[u as usize] = true;
                active[v as usize] = true;
            }
        }
        (0..self.n as u32).filter(|&i| active[i as usize]).collect()
    }

    /// Mean per-snapshot edge count.
    pub fn mean_edges_per_snapshot(&self) -> f64 {
        self.temporal_edge_count() as f64 / self.t_len() as f64
    }

    /// Truncate the temporal edge stream to the first `k` temporal edges
    /// (in timestep order, then `(src,dst)` order inside a timestep),
    /// keeping attributes. Used by the Table III/IV scalability sweep.
    pub fn truncate_temporal_edges(&self, k: usize) -> DynamicGraph {
        let mut remaining = k;
        let mut snaps = Vec::with_capacity(self.t_len());
        for s in &self.snapshots {
            let take = remaining.min(s.n_edges());
            let edges: Vec<(u32, u32)> = s.edges()[..take].to_vec();
            remaining -= take;
            snaps.push(Snapshot::new(self.n, edges, s.attrs().clone()));
        }
        DynamicGraph::new(snaps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn toy() -> DynamicGraph {
        let s0 = Snapshot::new(3, vec![(0, 1)], Matrix::zeros(3, 1));
        let s1 = Snapshot::new(3, vec![(0, 1), (1, 2)], Matrix::ones(3, 1));
        DynamicGraph::new(vec![s0, s1])
    }

    #[test]
    fn basic_accessors() {
        let g = toy();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_attrs(), 1);
        assert_eq!(g.t_len(), 2);
        assert_eq!(g.temporal_edge_count(), 3);
        assert!((g.mean_edges_per_snapshot() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn prefix_takes_leading_snapshots() {
        let g = toy();
        let p = g.prefix(1);
        assert_eq!(p.t_len(), 1);
        assert_eq!(p.snapshot(0).n_edges(), 1);
    }

    #[test]
    fn concat_time_appends() {
        let g = toy();
        let cat = g.concat_time(&g);
        assert_eq!(cat.t_len(), 4);
        assert_eq!(cat.temporal_edge_count(), 6);
    }

    #[test]
    fn active_nodes_excludes_isolated() {
        let s = Snapshot::new(4, vec![(0, 1)], Matrix::zeros(4, 0));
        let g = DynamicGraph::new(vec![s]);
        assert_eq!(g.active_nodes(), vec![0, 1]);
    }

    #[test]
    fn approx_bytes_sums_snapshots() {
        let g = toy();
        let per_snapshot: usize = g.snapshots().iter().map(|s| s.approx_bytes()).sum();
        assert!(g.approx_bytes() >= per_snapshot);
        assert!(g.concat_time(&g).approx_bytes() > g.approx_bytes());
        // The reserved bound dominates the resident size even after every
        // undirected projection has been materialized.
        assert!(g.approx_bytes_reserved() >= g.approx_bytes());
        for (_, s) in g.iter() {
            s.undirected_adj();
        }
        assert!(g.approx_bytes_reserved() >= g.approx_bytes());
    }

    #[test]
    fn truncate_temporal_edges_respects_budget() {
        let g = toy();
        let t = g.truncate_temporal_edges(2);
        assert_eq!(t.t_len(), 2);
        assert_eq!(t.temporal_edge_count(), 2);
        assert_eq!(t.snapshot(0).n_edges(), 1);
        assert_eq!(t.snapshot(1).n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_snapshots_rejected() {
        let s0 = Snapshot::empty(2, 0);
        let s1 = Snapshot::empty(3, 0);
        let _ = DynamicGraph::new(vec![s0, s1]);
    }
}

//! The common interface implemented by VRDAG and every baseline generator.

use crate::dynamic::DynamicGraph;
use rand::RngCore;
use std::fmt;

/// Errors surfaced by generator fitting/generation.
#[derive(Debug)]
pub enum GeneratorError {
    /// The generator cannot handle the input (e.g. Dymond's motif storage
    /// exceeding its memory budget, as observed in the paper where Dymond
    /// only runs on the smallest dataset).
    ResourceLimit(String),
    /// The generator was asked to generate before being fitted.
    NotFitted,
    /// Any other failure.
    Other(String),
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::ResourceLimit(m) => write!(f, "resource limit: {m}"),
            GeneratorError::NotFitted => write!(f, "generator has not been fitted"),
            GeneratorError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for GeneratorError {}

/// Statistics reported by [`DynamicGraphGenerator::fit`].
#[derive(Clone, Debug, Default)]
pub struct FitReport {
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Number of optimization epochs / passes performed.
    pub epochs: usize,
    /// Final training objective (loss, negative log-likelihood, ...);
    /// semantics are generator-specific, used for smoke checks only.
    pub final_loss: f64,
}

/// A dynamic (attributed) graph generator: fit on an observed graph, then
/// sample synthetic sequences of a requested length.
///
/// The trait is object-safe (the harness iterates over
/// `Box<dyn DynamicGraphGenerator>`), so randomness comes in as
/// `&mut dyn RngCore`.
pub trait DynamicGraphGenerator {
    /// Human-readable name used in result tables (e.g. `"VRDAG"`).
    fn name(&self) -> &str;

    /// Whether the generator synthesizes node attributes (VRDAG, GenCAT,
    /// Normal) or structure only (TagGen, TGGAN, TIGGER, Dymond, GRAN).
    fn supports_attributes(&self) -> bool;

    /// Whether the model treats snapshots as a correlated sequence (dynamic
    /// methods) or generates them independently (static methods).
    fn is_dynamic(&self) -> bool;

    /// Learn the generator's parameters from the observed graph.
    fn fit(
        &mut self,
        graph: &DynamicGraph,
        rng: &mut dyn RngCore,
    ) -> Result<FitReport, GeneratorError>;

    /// Generate a synthetic dynamic graph with `t_len` snapshots.
    fn generate(&self, t_len: usize, rng: &mut dyn RngCore)
        -> Result<DynamicGraph, GeneratorError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use vrdag_tensor::Matrix;

    /// Minimal generator used to validate object safety and the contract.
    struct Memorizer {
        graph: Option<DynamicGraph>,
    }

    impl DynamicGraphGenerator for Memorizer {
        fn name(&self) -> &str {
            "Memorizer"
        }
        fn supports_attributes(&self) -> bool {
            true
        }
        fn is_dynamic(&self) -> bool {
            true
        }
        fn fit(
            &mut self,
            graph: &DynamicGraph,
            _rng: &mut dyn RngCore,
        ) -> Result<FitReport, GeneratorError> {
            self.graph = Some(graph.clone());
            Ok(FitReport { train_seconds: 0.0, epochs: 1, final_loss: 0.0 })
        }
        fn generate(
            &self,
            t_len: usize,
            _rng: &mut dyn RngCore,
        ) -> Result<DynamicGraph, GeneratorError> {
            let g = self.graph.as_ref().ok_or(GeneratorError::NotFitted)?;
            Ok(g.prefix(t_len.min(g.t_len())))
        }
    }

    #[test]
    fn trait_is_object_safe_and_round_trips() {
        let s = Snapshot::new(2, vec![(0, 1)], Matrix::zeros(2, 1));
        let g = DynamicGraph::new(vec![s]);
        let mut boxed: Box<dyn DynamicGraphGenerator> = Box::new(Memorizer { graph: None });
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        assert!(boxed.generate(1, &mut rng).is_err());
        boxed.fit(&g, &mut rng).unwrap();
        let out = boxed.generate(1, &mut rng).unwrap();
        assert_eq!(out, g);
    }
}

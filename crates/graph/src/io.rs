//! Dynamic-graph I/O: a human-readable TSV temporal format (so real
//! datasets such as Emails-DNC or Bitcoin-Alpha can be dropped in) and a
//! compact binary format for caching generated graphs.

use crate::dynamic::DynamicGraph;
use crate::snapshot::Snapshot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use vrdag_tensor::Matrix;

/// I/O error for graph (de)serialization.
#[derive(Debug)]
pub enum GraphIoError {
    Io(std::io::Error),
    Parse(String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse(msg.into())
}

/// Write a dynamic graph as TSV:
///
/// ```text
/// # vrdag-dynamic-graph v1
/// n <N> f <F> t <T>
/// T <t> <m>
/// <src>\t<dst>           (m lines)
/// X
/// <x1>\t<x2>...          (N lines, F columns)
/// ...repeated per snapshot
/// ```
pub fn save_tsv(g: &DynamicGraph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# vrdag-dynamic-graph v1")?;
    writeln!(w, "n {} f {} t {}", g.n_nodes(), g.n_attrs(), g.t_len())?;
    for (t, s) in g.iter() {
        writeln!(w, "T {} {}", t, s.n_edges())?;
        for &(u, v) in s.edges() {
            writeln!(w, "{u}\t{v}")?;
        }
        writeln!(w, "X")?;
        for r in 0..s.n_nodes() {
            let row = s.attrs().row(r);
            let mut line = String::with_capacity(row.len() * 8);
            for (i, x) in row.iter().enumerate() {
                if i > 0 {
                    line.push('\t');
                }
                line.push_str(&format!("{x}"));
            }
            writeln!(w, "{line}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Load a dynamic graph saved by [`save_tsv`].
pub fn load_tsv(path: impl AsRef<Path>) -> Result<DynamicGraph, GraphIoError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut line = String::new();

    let read_line = |r: &mut BufReader<std::fs::File>, line: &mut String| -> Result<bool, GraphIoError> {
        line.clear();
        Ok(r.read_line(line)? > 0)
    };

    // Header.
    if !read_line(&mut r, &mut line)? || !line.starts_with("# vrdag-dynamic-graph") {
        return Err(parse_err("missing magic header"));
    }
    if !read_line(&mut r, &mut line)? {
        return Err(parse_err("missing size header"));
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != "n" || toks[2] != "f" || toks[4] != "t" {
        return Err(parse_err(format!("bad size header: {line}")));
    }
    let n: usize = toks[1].parse().map_err(|_| parse_err("bad n"))?;
    let f: usize = toks[3].parse().map_err(|_| parse_err("bad f"))?;
    let t_len: usize = toks[5].parse().map_err(|_| parse_err("bad t"))?;

    let mut snaps = Vec::with_capacity(t_len);
    for t in 0..t_len {
        if !read_line(&mut r, &mut line)? {
            return Err(parse_err(format!("missing snapshot {t}")));
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 || toks[0] != "T" {
            return Err(parse_err(format!("bad snapshot header: {line}")));
        }
        let m: usize = toks[2].parse().map_err(|_| parse_err("bad edge count"))?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            if !read_line(&mut r, &mut line)? {
                return Err(parse_err("truncated edge list"));
            }
            let mut it = line.split_whitespace();
            let u: u32 = it
                .next()
                .ok_or_else(|| parse_err("missing src"))?
                .parse()
                .map_err(|_| parse_err("bad src"))?;
            let v: u32 = it
                .next()
                .ok_or_else(|| parse_err("missing dst"))?
                .parse()
                .map_err(|_| parse_err("bad dst"))?;
            edges.push((u, v));
        }
        if !read_line(&mut r, &mut line)? || line.trim() != "X" {
            return Err(parse_err("missing attribute marker"));
        }
        let mut attrs = Matrix::zeros(n, f);
        for row in 0..n {
            if !read_line(&mut r, &mut line)? {
                return Err(parse_err("truncated attribute block"));
            }
            let vals: Result<Vec<f32>, _> =
                line.split_whitespace().map(|x| x.parse::<f32>()).collect();
            let vals = vals.map_err(|_| parse_err("bad attribute value"))?;
            if vals.len() != f {
                return Err(parse_err(format!(
                    "attribute row {row} has {} values, expected {f}",
                    vals.len()
                )));
            }
            attrs.row_mut(row).copy_from_slice(&vals);
        }
        snaps.push(Snapshot::new(n, edges, attrs));
    }
    Ok(DynamicGraph::new(snaps))
}

const BIN_MAGIC: u32 = 0x5644_4147; // "VDAG"

/// Encode a dynamic graph into a compact binary buffer.
pub fn encode_binary(g: &DynamicGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + g.temporal_edge_count() * 8 + g.t_len() * g.n_nodes() * g.n_attrs() * 4,
    );
    buf.put_u32_le(BIN_MAGIC);
    buf.put_u32_le(g.n_nodes() as u32);
    buf.put_u32_le(g.n_attrs() as u32);
    buf.put_u32_le(g.t_len() as u32);
    for (_, s) in g.iter() {
        buf.put_u32_le(s.n_edges() as u32);
        for &(u, v) in s.edges() {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
        }
        for &x in s.attrs().data() {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode_binary`].
pub fn decode_binary(mut buf: impl Buf) -> Result<DynamicGraph, GraphIoError> {
    if buf.remaining() < 16 {
        return Err(parse_err("buffer too short"));
    }
    if buf.get_u32_le() != BIN_MAGIC {
        return Err(parse_err("bad magic"));
    }
    let n = buf.get_u32_le() as usize;
    let f = buf.get_u32_le() as usize;
    let t_len = buf.get_u32_le() as usize;
    let mut snaps = Vec::with_capacity(t_len);
    for _ in 0..t_len {
        if buf.remaining() < 4 {
            return Err(parse_err("truncated snapshot header"));
        }
        let m = buf.get_u32_le() as usize;
        if buf.remaining() < m * 8 + n * f * 4 {
            return Err(parse_err("truncated snapshot body"));
        }
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            edges.push((u, v));
        }
        let mut attrs = Matrix::zeros(n, f);
        for i in 0..n * f {
            attrs.data_mut()[i] = buf.get_f32_le();
        }
        snaps.push(Snapshot::new(n, edges, attrs));
    }
    Ok(DynamicGraph::new(snaps))
}

/// Save in the binary format.
pub fn save_binary(g: &DynamicGraph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let bytes = encode_binary(g);
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Load from the binary format.
pub fn load_binary(path: impl AsRef<Path>) -> Result<DynamicGraph, GraphIoError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DynamicGraph {
        let s0 = Snapshot::new(
            3,
            vec![(0, 1), (2, 0)],
            Matrix::from_fn(3, 2, |r, c| (r as f32) + 0.5 * c as f32),
        );
        let s1 = Snapshot::new(3, vec![(1, 2)], Matrix::ones(3, 2));
        DynamicGraph::new(vec![s0, s1])
    }

    #[test]
    fn tsv_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("vrdag_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        save_tsv(&g, &path).unwrap();
        let loaded = load_tsv(&path).unwrap();
        assert_eq!(g, loaded);
    }

    #[test]
    fn binary_round_trip() {
        let g = toy();
        let bytes = encode_binary(&g);
        let decoded = decode_binary(bytes).unwrap();
        assert_eq!(g, decoded);
    }

    #[test]
    fn binary_rejects_garbage() {
        let bytes = Bytes::from_static(&[1, 2, 3]);
        assert!(decode_binary(bytes).is_err());
        let bad_magic = Bytes::from(vec![0u8; 32]);
        assert!(decode_binary(bad_magic).is_err());
    }

    #[test]
    fn tsv_rejects_missing_header() {
        let dir = std::env::temp_dir().join("vrdag_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        std::fs::write(&path, "nonsense\n").unwrap();
        assert!(load_tsv(&path).is_err());
    }
}

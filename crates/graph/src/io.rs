//! Dynamic-graph I/O: a human-readable TSV temporal format (so real
//! datasets such as Emails-DNC or Bitcoin-Alpha can be dropped in) and a
//! compact binary format for caching generated graphs.

use crate::dynamic::DynamicGraph;
use crate::snapshot::Snapshot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use vrdag_tensor::Matrix;

/// I/O error for graph (de)serialization.
#[derive(Debug)]
pub enum GraphIoError {
    Io(std::io::Error),
    Parse(String),
    /// A streamed snapshot does not match the declared header shape.
    Shape(String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Parse(m) => write!(f, "parse error: {m}"),
            GraphIoError::Shape(m) => write!(f, "shape error: {m}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse(msg.into())
}

/// Streaming TSV writer: emits the header up front, then one snapshot at
/// a time to any [`io::Write`](Write), flushing after every snapshot so a
/// generation run can spill incrementally with memory bounded by a single
/// snapshot (and tail-readers see progress).
///
/// The byte stream is identical to [`save_tsv`]'s:
///
/// ```text
/// # vrdag-dynamic-graph v1
/// n <N> f <F> t <T>
/// T <t> <m>
/// <src>\t<dst>           (m lines)
/// X
/// <x1>\t<x2>...          (N lines, F columns)
/// ...repeated per snapshot
/// ```
pub struct TsvStreamWriter<W: Write> {
    w: W,
    n: usize,
    f: usize,
    t_len: usize,
    written: usize,
}

impl<W: Write> TsvStreamWriter<W> {
    /// Write the header for a `t_len`-snapshot graph over `n` nodes with
    /// `f` attributes.
    pub fn new(mut w: W, n: usize, f: usize, t_len: usize) -> Result<Self, GraphIoError> {
        writeln!(w, "# vrdag-dynamic-graph v1")?;
        writeln!(w, "n {n} f {f} t {t_len}")?;
        Ok(TsvStreamWriter { w, n, f, t_len, written: 0 })
    }

    /// Append the next snapshot and flush.
    pub fn write_snapshot(&mut self, s: &Snapshot) -> Result<(), GraphIoError> {
        if self.written >= self.t_len {
            return Err(GraphIoError::Shape(format!(
                "already wrote the declared {} snapshots",
                self.t_len
            )));
        }
        if s.n_nodes() != self.n || s.n_attrs() != self.f {
            return Err(GraphIoError::Shape(format!(
                "snapshot is [n={}, f={}], header declared [n={}, f={}]",
                s.n_nodes(),
                s.n_attrs(),
                self.n,
                self.f
            )));
        }
        writeln!(self.w, "T {} {}", self.written, s.n_edges())?;
        for &(u, v) in s.edges() {
            writeln!(self.w, "{u}\t{v}")?;
        }
        writeln!(self.w, "X")?;
        for r in 0..s.n_nodes() {
            let row = s.attrs().row(r);
            let mut line = String::with_capacity(row.len() * 8);
            for (i, x) in row.iter().enumerate() {
                if i > 0 {
                    line.push('\t');
                }
                line.push_str(&format!("{x}"));
            }
            writeln!(self.w, "{line}")?;
        }
        self.written += 1;
        self.w.flush()?;
        Ok(())
    }

    /// Snapshots written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Validate that all declared snapshots were written and return the
    /// inner writer.
    pub fn finish(self) -> Result<W, GraphIoError> {
        if self.written != self.t_len {
            return Err(GraphIoError::Shape(format!(
                "wrote {} of the declared {} snapshots",
                self.written, self.t_len
            )));
        }
        Ok(self.w)
    }
}

/// Write a dynamic graph as TSV (see [`TsvStreamWriter`] for the format).
pub fn save_tsv(g: &DynamicGraph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let file = std::fs::File::create(path)?;
    write_tsv(g, BufWriter::new(file)).map(|_| ())
}

/// Write a dynamic graph as TSV to an arbitrary writer.
pub fn write_tsv<W: Write>(g: &DynamicGraph, w: W) -> Result<W, GraphIoError> {
    let mut sw = TsvStreamWriter::new(w, g.n_nodes(), g.n_attrs(), g.t_len())?;
    for (_, s) in g.iter() {
        sw.write_snapshot(s)?;
    }
    sw.finish()
}

/// Load a dynamic graph saved by [`save_tsv`].
pub fn load_tsv(path: impl AsRef<Path>) -> Result<DynamicGraph, GraphIoError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut line = String::new();

    let read_line =
        |r: &mut BufReader<std::fs::File>, line: &mut String| -> Result<bool, GraphIoError> {
            line.clear();
            Ok(r.read_line(line)? > 0)
        };

    // Header.
    if !read_line(&mut r, &mut line)? || !line.starts_with("# vrdag-dynamic-graph") {
        return Err(parse_err("missing magic header"));
    }
    if !read_line(&mut r, &mut line)? {
        return Err(parse_err("missing size header"));
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != "n" || toks[2] != "f" || toks[4] != "t" {
        return Err(parse_err(format!("bad size header: {line}")));
    }
    let n: usize = toks[1].parse().map_err(|_| parse_err("bad n"))?;
    let f: usize = toks[3].parse().map_err(|_| parse_err("bad f"))?;
    let t_len: usize = toks[5].parse().map_err(|_| parse_err("bad t"))?;

    let mut snaps = Vec::with_capacity(t_len);
    for t in 0..t_len {
        if !read_line(&mut r, &mut line)? {
            return Err(parse_err(format!("missing snapshot {t}")));
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 || toks[0] != "T" {
            return Err(parse_err(format!("bad snapshot header: {line}")));
        }
        let m: usize = toks[2].parse().map_err(|_| parse_err("bad edge count"))?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            if !read_line(&mut r, &mut line)? {
                return Err(parse_err("truncated edge list"));
            }
            let mut it = line.split_whitespace();
            let u: u32 = it
                .next()
                .ok_or_else(|| parse_err("missing src"))?
                .parse()
                .map_err(|_| parse_err("bad src"))?;
            let v: u32 = it
                .next()
                .ok_or_else(|| parse_err("missing dst"))?
                .parse()
                .map_err(|_| parse_err("bad dst"))?;
            edges.push((u, v));
        }
        if !read_line(&mut r, &mut line)? || line.trim() != "X" {
            return Err(parse_err("missing attribute marker"));
        }
        let mut attrs = Matrix::zeros(n, f);
        for row in 0..n {
            if !read_line(&mut r, &mut line)? {
                return Err(parse_err("truncated attribute block"));
            }
            let vals: Result<Vec<f32>, _> =
                line.split_whitespace().map(|x| x.parse::<f32>()).collect();
            let vals = vals.map_err(|_| parse_err("bad attribute value"))?;
            if vals.len() != f {
                return Err(parse_err(format!(
                    "attribute row {row} has {} values, expected {f}",
                    vals.len()
                )));
            }
            attrs.row_mut(row).copy_from_slice(&vals);
        }
        snaps.push(Snapshot::new(n, edges, attrs));
    }
    Ok(DynamicGraph::new(snaps))
}

const BIN_MAGIC: u32 = 0x5644_4147; // "VDAG"

/// Streaming binary writer: the compact format of [`encode_binary`], one
/// snapshot at a time over any [`io::Write`](Write), flushed per
/// snapshot. This is the serving layer's spill path — a multi-thousand
/// timestep generation run never holds more than one snapshot in memory.
pub struct BinaryStreamWriter<W: Write> {
    w: W,
    n: usize,
    f: usize,
    t_len: usize,
    written: usize,
}

impl<W: Write> BinaryStreamWriter<W> {
    /// Write the 16-byte header for a `t_len`-snapshot graph.
    pub fn new(mut w: W, n: usize, f: usize, t_len: usize) -> Result<Self, GraphIoError> {
        w.write_all(&BIN_MAGIC.to_le_bytes())?;
        w.write_all(&(n as u32).to_le_bytes())?;
        w.write_all(&(f as u32).to_le_bytes())?;
        w.write_all(&(t_len as u32).to_le_bytes())?;
        Ok(BinaryStreamWriter { w, n, f, t_len, written: 0 })
    }

    /// Append the next snapshot and flush.
    pub fn write_snapshot(&mut self, s: &Snapshot) -> Result<(), GraphIoError> {
        if self.written >= self.t_len {
            return Err(GraphIoError::Shape(format!(
                "already wrote the declared {} snapshots",
                self.t_len
            )));
        }
        if s.n_nodes() != self.n || s.n_attrs() != self.f {
            return Err(GraphIoError::Shape(format!(
                "snapshot is [n={}, f={}], header declared [n={}, f={}]",
                s.n_nodes(),
                s.n_attrs(),
                self.n,
                self.f
            )));
        }
        self.w.write_all(&(s.n_edges() as u32).to_le_bytes())?;
        // Edge list, then the row-major attribute block, as one buffer per
        // snapshot to keep syscall counts low.
        let mut buf = Vec::with_capacity(s.n_edges() * 8 + s.attrs().data().len() * 4);
        for &(u, v) in s.edges() {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for &x in s.attrs().data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        self.w.write_all(&buf)?;
        self.written += 1;
        self.w.flush()?;
        Ok(())
    }

    /// Snapshots written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Validate that all declared snapshots were written and return the
    /// inner writer.
    pub fn finish(self) -> Result<W, GraphIoError> {
        if self.written != self.t_len {
            return Err(GraphIoError::Shape(format!(
                "wrote {} of the declared {} snapshots",
                self.written, self.t_len
            )));
        }
        Ok(self.w)
    }
}

/// Encode a dynamic graph into a compact binary buffer.
pub fn encode_binary(g: &DynamicGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + g.temporal_edge_count() * 8 + g.t_len() * g.n_nodes() * g.n_attrs() * 4,
    );
    buf.put_u32_le(BIN_MAGIC);
    buf.put_u32_le(g.n_nodes() as u32);
    buf.put_u32_le(g.n_attrs() as u32);
    buf.put_u32_le(g.t_len() as u32);
    for (_, s) in g.iter() {
        buf.put_u32_le(s.n_edges() as u32);
        for &(u, v) in s.edges() {
            buf.put_u32_le(u);
            buf.put_u32_le(v);
        }
        for &x in s.attrs().data() {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode_binary`].
pub fn decode_binary(mut buf: impl Buf) -> Result<DynamicGraph, GraphIoError> {
    if buf.remaining() < 16 {
        return Err(parse_err("buffer too short"));
    }
    if buf.get_u32_le() != BIN_MAGIC {
        return Err(parse_err("bad magic"));
    }
    let n = buf.get_u32_le() as usize;
    let f = buf.get_u32_le() as usize;
    let t_len = buf.get_u32_le() as usize;
    let mut snaps = Vec::with_capacity(t_len);
    for _ in 0..t_len {
        if buf.remaining() < 4 {
            return Err(parse_err("truncated snapshot header"));
        }
        let m = buf.get_u32_le() as usize;
        if buf.remaining() < m * 8 + n * f * 4 {
            return Err(parse_err("truncated snapshot body"));
        }
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let u = buf.get_u32_le();
            let v = buf.get_u32_le();
            edges.push((u, v));
        }
        let mut attrs = Matrix::zeros(n, f);
        for i in 0..n * f {
            attrs.data_mut()[i] = buf.get_f32_le();
        }
        snaps.push(Snapshot::new(n, edges, attrs));
    }
    Ok(DynamicGraph::new(snaps))
}

/// Save in the binary format (streamed snapshot-by-snapshot).
pub fn save_binary(g: &DynamicGraph, path: impl AsRef<Path>) -> Result<(), GraphIoError> {
    let w = BufWriter::new(std::fs::File::create(path)?);
    let mut sw = BinaryStreamWriter::new(w, g.n_nodes(), g.n_attrs(), g.t_len())?;
    for (_, s) in g.iter() {
        sw.write_snapshot(s)?;
    }
    sw.finish()?;
    Ok(())
}

/// Load from the binary format.
pub fn load_binary(path: impl AsRef<Path>) -> Result<DynamicGraph, GraphIoError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DynamicGraph {
        let s0 = Snapshot::new(
            3,
            vec![(0, 1), (2, 0)],
            Matrix::from_fn(3, 2, |r, c| (r as f32) + 0.5 * c as f32),
        );
        let s1 = Snapshot::new(3, vec![(1, 2)], Matrix::ones(3, 2));
        DynamicGraph::new(vec![s0, s1])
    }

    #[test]
    fn tsv_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("vrdag_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        save_tsv(&g, &path).unwrap();
        let loaded = load_tsv(&path).unwrap();
        assert_eq!(g, loaded);
    }

    #[test]
    fn binary_round_trip() {
        let g = toy();
        let bytes = encode_binary(&g);
        let decoded = decode_binary(bytes).unwrap();
        assert_eq!(g, decoded);
    }

    #[test]
    fn binary_rejects_garbage() {
        let bytes = Bytes::from_static(&[1, 2, 3]);
        assert!(decode_binary(bytes).is_err());
        let bad_magic = Bytes::from(vec![0u8; 32]);
        assert!(decode_binary(bad_magic).is_err());
    }

    #[test]
    fn streamed_tsv_is_byte_identical_to_one_shot() {
        let g = toy();
        let mut streamed = Vec::new();
        let mut sw =
            TsvStreamWriter::new(&mut streamed, g.n_nodes(), g.n_attrs(), g.t_len()).unwrap();
        for (_, s) in g.iter() {
            sw.write_snapshot(s).unwrap();
        }
        sw.finish().unwrap();
        let one_shot = write_tsv(&g, Vec::new()).unwrap();
        assert_eq!(streamed, one_shot);
    }

    #[test]
    fn streamed_binary_is_byte_identical_to_encode() {
        let g = toy();
        let mut streamed = Vec::new();
        let mut sw =
            BinaryStreamWriter::new(&mut streamed, g.n_nodes(), g.n_attrs(), g.t_len()).unwrap();
        for (_, s) in g.iter() {
            sw.write_snapshot(s).unwrap();
        }
        sw.finish().unwrap();
        assert_eq!(streamed.as_slice(), encode_binary(&g).as_ref());
        let decoded = decode_binary(Bytes::from(streamed)).unwrap();
        assert_eq!(g, decoded);
    }

    #[test]
    fn stream_writers_enforce_declared_shape() {
        let g = toy();
        // Wrong n/f rejected.
        let mut sw = TsvStreamWriter::new(Vec::new(), 99, 1, 2).unwrap();
        assert!(matches!(sw.write_snapshot(g.snapshot(0)), Err(GraphIoError::Shape(_))));
        // Underfilled stream rejected at finish.
        let mut sw = BinaryStreamWriter::new(Vec::new(), 3, 2, 2).unwrap();
        sw.write_snapshot(g.snapshot(0)).unwrap();
        assert!(matches!(sw.finish(), Err(GraphIoError::Shape(_))));
        // Overfilled stream rejected per write.
        let mut sw = BinaryStreamWriter::new(Vec::new(), 3, 2, 1).unwrap();
        sw.write_snapshot(g.snapshot(0)).unwrap();
        assert!(matches!(sw.write_snapshot(g.snapshot(1)), Err(GraphIoError::Shape(_))));
    }

    #[test]
    fn tsv_rejects_missing_header() {
        let dir = std::env::temp_dir().join("vrdag_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tsv");
        std::fs::write(&path, "nonsense\n").unwrap();
        assert!(load_tsv(&path).is_err());
    }
}

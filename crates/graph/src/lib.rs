//! # vrdag-graph
//!
//! Storage and algorithms for **dynamic directed attributed graphs** — the
//! data substrate of the VRDAG reproduction (*Efficient Dynamic Attributed
//! Graph Generation*, ICDE 2025).
//!
//! * [`Snapshot`] — one timestep `G_t(V, E_t, X_t)`: directed CSR adjacency
//!   in both directions, an `[n, f]` attribute matrix, and a cached
//!   undirected projection.
//! * [`DynamicGraph`] — the snapshot sequence `{G_t}_{t=1..T}` over a
//!   unified node set (§II-A).
//! * [`algo`] — weakly connected components, local clustering, k-core
//!   decomposition, degree utilities (everything the Table I metrics need).
//! * [`io`] — TSV temporal format for dropping in real datasets, plus a
//!   compact binary cache format.
//! * [`generator`] — the [`generator::DynamicGraphGenerator`] trait
//!   implemented by VRDAG and all baselines.

pub mod algo;
pub mod dynamic;
pub mod generator;
pub mod io;
pub mod snapshot;

pub use dynamic::DynamicGraph;
pub use generator::{DynamicGraphGenerator, FitReport, GeneratorError};
pub use snapshot::Snapshot;

//! A single directed attributed graph snapshot `G_t(V, E_t, X_t)`.

use std::sync::OnceLock;
use vrdag_tensor::ops::SparseAdj;
use vrdag_tensor::Matrix;

/// One snapshot of a dynamic attributed graph: a fixed node set `0..n`,
/// a directed edge set, and an `[n, f]` node-attribute matrix.
///
/// Edges are stored sorted by `(src, dst)` with duplicates and self-loops
/// removed; both out- and in-CSR adjacency are materialized eagerly (they
/// are read many times by the encoder and the metrics), the undirected
/// projection lazily.
#[derive(Debug)]
pub struct Snapshot {
    n: usize,
    edges: Vec<(u32, u32)>,
    out_adj: SparseAdj,
    in_adj: SparseAdj,
    attrs: Matrix,
    undirected: OnceLock<SparseAdj>,
}

impl Clone for Snapshot {
    fn clone(&self) -> Self {
        Snapshot {
            n: self.n,
            edges: self.edges.clone(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
            attrs: self.attrs.clone(),
            undirected: OnceLock::new(),
        }
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges && self.attrs == other.attrs
    }
}

impl Snapshot {
    /// Build a snapshot from a directed edge list and attribute matrix.
    ///
    /// Self-loops and duplicate edges are dropped. `attrs` must be `[n, f]`
    /// (use `f = 0` columns for attribute-free graphs).
    ///
    /// # Panics
    /// Panics when an endpoint is `>= n` or the attribute matrix has the
    /// wrong number of rows.
    pub fn new(n: usize, mut edges: Vec<(u32, u32)>, attrs: Matrix) -> Self {
        assert_eq!(attrs.rows(), n, "attribute matrix must have n rows");
        edges.retain(|&(u, v)| u != v);
        for &(u, v) in &edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range for n={n}");
        }
        edges.sort_unstable();
        edges.dedup();
        let (out_adj, in_adj) = build_csr(n, &edges);
        Snapshot { n, edges, out_adj, in_adj, attrs, undirected: OnceLock::new() }
    }

    /// An empty snapshot (no edges, zero attributes) over `n` nodes and `f`
    /// attribute columns.
    pub fn empty(n: usize, f: usize) -> Self {
        Snapshot::new(n, Vec::new(), Matrix::zeros(n, f))
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Attribute dimensionality `F`.
    pub fn n_attrs(&self) -> usize {
        self.attrs.cols()
    }

    /// Sorted, deduplicated directed edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Out-neighborhood CSR (`neighbors(i)` = successors of `i`).
    pub fn out_adj(&self) -> &SparseAdj {
        &self.out_adj
    }

    /// In-neighborhood CSR (`neighbors(i)` = predecessors of `i`).
    pub fn in_adj(&self) -> &SparseAdj {
        &self.in_adj
    }

    /// Node-attribute matrix `X_t ∈ R^{n×f}`.
    pub fn attrs(&self) -> &Matrix {
        &self.attrs
    }

    /// Mutable access to the attributes (used by dataset generators).
    pub fn attrs_mut(&mut self) -> &mut Matrix {
        &mut self.attrs
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out_adj.degree(i)
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_adj.degree(i)
    }

    /// True when the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.out_adj.neighbors(u as usize).binary_search(&v).is_ok()
    }

    /// Graph density `|E| / (n(n-1))`.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.edges.len() as f64 / (self.n as f64 * (self.n as f64 - 1.0))
    }

    /// Approximate resident size of this snapshot in bytes, computed in
    /// O(1) from the container lengths: the edge list, both CSR
    /// adjacencies, the attribute matrix, and — once it has been
    /// materialized by [`undirected_adj`](Self::undirected_adj) — the
    /// lazily-built undirected projection. Excludes allocator slack, so
    /// treat it as an accounting estimate, not `malloc` truth. Because the
    /// undirected CSR appears in the total only after it is built, this
    /// value can *grow* over a snapshot's lifetime; byte-budgeted caches
    /// should charge [`approx_bytes_reserved`](Self::approx_bytes_reserved)
    /// instead, which bounds it from above.
    pub fn approx_bytes(&self) -> usize {
        let undirected_bytes =
            self.undirected.get().map_or(0, |adj| Self::csr_bytes(self.n, adj.n_edges()));
        self.base_bytes() + undirected_bytes
    }

    /// Upper bound on [`approx_bytes`](Self::approx_bytes) over the whole
    /// lifetime of the snapshot: the base containers plus a reserved
    /// estimate for the undirected projection *as if it were built*
    /// (`n + 1` offsets plus at most two adjacency entries per directed
    /// edge). Never grows and never falls below `approx_bytes`, so
    /// byte-budgeted caches that charge this value cannot drift over
    /// budget when metrics later materialize the projection on a cached
    /// snapshot.
    pub fn approx_bytes_reserved(&self) -> usize {
        self.base_bytes() + Self::csr_bytes(self.n, 2 * self.edges.len())
    }

    /// Size of a CSR with `n + 1` usize offsets and `targets` u32 entries.
    fn csr_bytes(n: usize, targets: usize) -> usize {
        (n + 1) * std::mem::size_of::<usize>() + targets * std::mem::size_of::<u32>()
    }

    /// Accounting shared by `approx_bytes` and `approx_bytes_reserved`:
    /// everything except the lazily-built undirected projection.
    fn base_bytes(&self) -> usize {
        let edge_bytes = self.edges.len() * std::mem::size_of::<(u32, u32)>();
        // Out- and in-CSR each store `n + 1` offsets and one u32 per edge.
        let csr_bytes = 2 * Self::csr_bytes(self.n, self.edges.len());
        let attr_bytes = self.attrs.rows() * self.attrs.cols() * std::mem::size_of::<f32>();
        std::mem::size_of::<Snapshot>() + edge_bytes + csr_bytes + attr_bytes
    }

    /// Undirected projection as CSR with sorted, deduplicated neighbor
    /// lists (computed once, cached).
    pub fn undirected_adj(&self) -> &SparseAdj {
        self.undirected.get_or_init(|| {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.n];
            for &(u, v) in &self.edges {
                lists[u as usize].push(v);
                lists[v as usize].push(u);
            }
            for l in &mut lists {
                l.sort_unstable();
                l.dedup();
            }
            SparseAdj::from_lists(&lists)
        })
    }

    /// Distinct-neighbor (undirected) degree of every node.
    pub fn undirected_degrees(&self) -> Vec<usize> {
        let adj = self.undirected_adj();
        (0..self.n).map(|i| adj.degree(i)).collect()
    }
}

fn build_csr(n: usize, sorted_edges: &[(u32, u32)]) -> (SparseAdj, SparseAdj) {
    // Out CSR directly from the sorted edge list.
    let mut out_offsets = vec![0usize; n + 1];
    let mut out_targets = Vec::with_capacity(sorted_edges.len());
    for &(u, v) in sorted_edges {
        out_offsets[u as usize + 1] += 1;
        out_targets.push(v);
    }
    for i in 1..out_offsets.len() {
        out_offsets[i] += out_offsets[i - 1];
    }
    // In CSR via counting sort on destination.
    let mut in_counts = vec![0usize; n + 1];
    for &(_, v) in sorted_edges {
        in_counts[v as usize + 1] += 1;
    }
    for i in 1..in_counts.len() {
        in_counts[i] += in_counts[i - 1];
    }
    let in_offsets = in_counts.clone();
    let mut cursor = in_counts;
    let mut in_targets = vec![0u32; sorted_edges.len()];
    for &(u, v) in sorted_edges {
        in_targets[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    // Sources arrive in (src,dst) order, so each in-list is already sorted.
    (SparseAdj::from_raw(out_offsets, out_targets), SparseAdj::from_raw(in_offsets, in_targets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Snapshot {
        // 0->1, 0->2, 2->0, 1->2 (+ a duplicate and a self loop to sanitize)
        Snapshot::new(
            3,
            vec![(0, 1), (0, 2), (2, 0), (1, 2), (0, 1), (1, 1)],
            Matrix::from_fn(3, 2, |r, c| (r + c) as f32),
        )
    }

    #[test]
    fn sanitizes_edges() {
        let s = toy();
        assert_eq!(s.n_edges(), 4);
        assert_eq!(s.edges(), &[(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn csr_directions_are_correct() {
        let s = toy();
        assert_eq!(s.out_adj().neighbors(0), &[1, 2]);
        assert_eq!(s.out_adj().neighbors(1), &[2]);
        assert_eq!(s.in_adj().neighbors(2), &[0, 1]);
        assert_eq!(s.in_adj().neighbors(0), &[2]);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.in_degree(0), 1);
    }

    #[test]
    fn has_edge_is_directional() {
        let s = toy();
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 0));
    }

    #[test]
    fn undirected_projection_dedups() {
        // 0->2 and 2->0 collapse to one undirected neighbor relation.
        let s = toy();
        assert_eq!(s.undirected_adj().neighbors(0), &[1, 2]);
        assert_eq!(s.undirected_degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn density_of_toy() {
        let s = toy();
        assert!((s.density() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = Snapshot::new(2, vec![(0, 5)], Matrix::zeros(2, 0));
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::empty(4, 3);
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.n_edges(), 0);
        assert_eq!(s.n_attrs(), 3);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn approx_bytes_tracks_content() {
        let empty = Snapshot::empty(3, 2);
        let s = toy();
        // Same shape, more edges => strictly larger accounting.
        assert!(s.approx_bytes() > empty.approx_bytes());
        // At minimum the attribute matrix and edge list are counted.
        assert!(s.approx_bytes() >= 3 * 2 * 4 + s.n_edges() * 8);

        // Materializing the undirected projection grows the accounting by
        // exactly the projection's CSR size...
        let before = s.approx_bytes();
        let adj = s.undirected_adj();
        let undirected_csr = (s.n_nodes() + 1) * std::mem::size_of::<usize>()
            + adj.n_edges() * std::mem::size_of::<u32>();
        assert_eq!(s.approx_bytes(), before + undirected_csr);
        // ...and the reserved upper bound covers it before *and* after the
        // build (the estimate assumes two entries per directed edge, the
        // worst case), so budgeted caches charging the reserve never
        // undercount a cached snapshot that metrics later touch.
        assert!(s.approx_bytes_reserved() >= s.approx_bytes());
        assert!(before + undirected_csr <= s.approx_bytes_reserved());
        // The reserve itself is stable across the build.
        let c = toy();
        let reserved_unbuilt = c.approx_bytes_reserved();
        c.undirected_adj();
        assert_eq!(c.approx_bytes_reserved(), reserved_unbuilt);
    }

    #[test]
    fn clone_preserves_content() {
        let s = toy();
        let c = s.clone();
        assert_eq!(s, c);
    }
}

//! Node-attribute metrics: JSD / EMD between attribute distributions
//! (Fig. 3) and the mean absolute error of Spearman correlation matrices
//! (Table II).

use crate::distribution::{emd_1d, jsd};
use vrdag_graph::DynamicGraph;

/// Number of histogram bins for attribute JSD.
pub const ATTR_BINS: usize = 50;

/// Attribute distribution comparison (Fig. 3): JSD and EMD between original
/// and generated attribute value distributions, averaged over timesteps and
/// attribute dimensions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AttributeReport {
    /// Mean Jensen–Shannon divergence.
    pub jsd: f64,
    /// Mean Earth Mover's Distance.
    pub emd: f64,
}

/// Per-attribute value samples of one snapshot (one sample per node).
fn attr_column(g: &DynamicGraph, t: usize, f: usize) -> Vec<f64> {
    let s = g.snapshot(t);
    (0..s.n_nodes()).map(|i| s.attrs().get(i, f) as f64).collect()
}

/// Compute the Fig. 3 attribute report between two dynamic graphs.
///
/// # Panics
/// Panics when either graph has no attributes.
pub fn attribute_report(original: &DynamicGraph, generated: &DynamicGraph) -> AttributeReport {
    let f = original.n_attrs();
    assert!(f > 0, "attribute_report requires attributed graphs");
    assert_eq!(f, generated.n_attrs(), "attribute dimension mismatch");
    let t = original.t_len().min(generated.t_len());
    let mut jsd_acc = 0.0;
    let mut emd_acc = 0.0;
    for ti in 0..t {
        for fi in 0..f {
            let a = attr_column(original, ti, fi);
            let b = attr_column(generated, ti, fi);
            jsd_acc += jsd(&a, &b, ATTR_BINS);
            emd_acc += emd_1d(&a, &b);
        }
    }
    let denom = (t * f) as f64;
    AttributeReport { jsd: jsd_acc / denom, emd: emd_acc / denom }
}

/// Ranks with average tie handling (1-based average ranks).
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman rank correlation coefficient between two equal-length samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman: length mismatch");
    pearson(&average_ranks(a), &average_ranks(b))
}

/// Pairwise Spearman correlation matrix among the `f` attribute columns of
/// snapshot `t` (symmetric, unit diagonal).
pub fn spearman_matrix(g: &DynamicGraph, t: usize) -> Vec<Vec<f64>> {
    let f = g.n_attrs();
    let cols: Vec<Vec<f64>> = (0..f).map(|fi| attr_column(g, t, fi)).collect();
    let mut m = vec![vec![0.0; f]; f];
    for i in 0..f {
        m[i][i] = 1.0;
        for j in i + 1..f {
            let r = spearman(&cols[i], &cols[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Table II: mean absolute error between the Spearman correlation matrices
/// of the original and generated graph, averaged over off-diagonal pairs
/// and timesteps.
///
/// # Panics
/// Panics when the graphs have fewer than two attributes (the correlation
/// structure is undefined).
pub fn spearman_mae(original: &DynamicGraph, generated: &DynamicGraph) -> f64 {
    let f = original.n_attrs();
    assert!(f >= 2, "spearman_mae requires at least two attributes");
    assert_eq!(f, generated.n_attrs(), "attribute dimension mismatch");
    let t = original.t_len().min(generated.t_len());
    let mut acc = 0.0;
    let mut count = 0usize;
    for ti in 0..t {
        let mo = spearman_matrix(original, ti);
        let mg = spearman_matrix(generated, ti);
        for i in 0..f {
            for j in i + 1..f {
                acc += (mo[i][j] - mg[i][j]).abs();
                count += 1;
            }
        }
    }
    acc / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_graph::Snapshot;
    use vrdag_tensor::Matrix;

    fn graph_with_attrs(attr_fn: impl Fn(usize, usize) -> f32) -> DynamicGraph {
        let n = 50;
        let attrs = Matrix::from_fn(n, 2, attr_fn);
        let s = Snapshot::new(n, vec![(0, 1), (1, 2)], attrs);
        DynamicGraph::new(vec![s])
    }

    #[test]
    fn spearman_perfect_monotone_is_one() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x * x).collect(); // monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reversed_is_minus_one() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = vec![1.0, 1.0, 2.0, 3.0];
        let b = vec![2.0, 2.0, 4.0, 6.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_input_is_zero() {
        let a = vec![1.0; 10];
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn attribute_report_zero_for_identical() {
        let g = graph_with_attrs(|r, c| (r * (c + 1)) as f32 * 0.1);
        let rep = attribute_report(&g, &g.clone());
        assert!(rep.jsd < 1e-12);
        assert!(rep.emd < 1e-12);
    }

    #[test]
    fn attribute_report_positive_for_shifted() {
        let a = graph_with_attrs(|r, _| r as f32 * 0.1);
        let b = graph_with_attrs(|r, _| r as f32 * 0.1 + 5.0);
        let rep = attribute_report(&a, &b);
        assert!(rep.jsd > 0.1);
        assert!((rep.emd - 5.0).abs() < 0.5);
    }

    #[test]
    fn spearman_matrix_is_symmetric_unit_diagonal() {
        let g = graph_with_attrs(|r, c| ((r * 7 + 3 * c) % 13) as f32);
        let m = spearman_matrix(&g, 0);
        assert_eq!(m.len(), 2);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!((m[1][1] - 1.0).abs() < 1e-12);
        assert!((m[0][1] - m[1][0]).abs() < 1e-15);
    }

    #[test]
    fn spearman_mae_detects_broken_correlation() {
        // Original: attr1 = rank, attr2 = rank (corr 1). Generated: attr2
        // reversed (corr −1). MAE of the off-diagonal = 2.
        let orig = graph_with_attrs(|r, _| r as f32);
        let gen = graph_with_attrs(|r, c| if c == 0 { r as f32 } else { -(r as f32) });
        let mae = spearman_mae(&orig, &gen);
        assert!((mae - 2.0).abs() < 1e-9);
    }
}

//! Distribution-level discrepancy primitives: histograms, Maximum Mean
//! Discrepancy (MMD), Jensen–Shannon divergence, and 1-D Earth Mover's
//! Distance.

/// A normalized histogram over uniform bins of a real interval.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Normalized bin masses (sum to 1 unless the input was empty).
    pub probs: Vec<f64>,
}

impl Histogram {
    /// Histogram of `values` over `[lo, hi]` with `bins` uniform bins.
    /// Values outside the range are clamped into the boundary bins.
    pub fn from_values(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty histogram range");
        let mut counts = vec![0.0f64; bins];
        for &v in values {
            let pos = ((v - lo) / (hi - lo) * bins as f64).floor();
            let idx = (pos.max(0.0) as usize).min(bins - 1);
            counts[idx] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            counts.iter_mut().for_each(|c| *c /= total);
        }
        Histogram { lo, hi, probs: counts }
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.probs.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.probs.len()
    }
}

/// Shared range covering both sample sets (guarding the degenerate case of
/// identical constants).
pub fn joint_range(a: &[f64], b: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in a.iter().chain(b.iter()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    (lo, hi)
}

/// Squared Maximum Mean Discrepancy between two sample sets under a
/// Gaussian kernel, computed in closed form from histograms:
///
/// `MMD² = Σ_{ij} p_i p_j k(x_i,x_j) + Σ_{ij} q_i q_j k(x_i,x_j)
///        − 2 Σ_{ij} p_i q_j k(x_i,x_j)`
///
/// Bin centers are rescaled to `[0, 1]` before applying the kernel so that
/// `sigma` is scale-free (the paper computes MMD between degree /
/// clustering-coefficient distributions per timestep, following CPGAN).
/// Returns the non-negative `MMD²` value.
pub fn mmd_gaussian(a: &[f64], b: &[f64], bins: usize, sigma: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (lo, hi) = joint_range(a, b);
    let pa = Histogram::from_values(a, lo, hi, bins);
    let pb = Histogram::from_values(b, lo, hi, bins);
    let nb = pa.bins();
    let scale = 1.0 / nb as f64;
    let gamma = 1.0 / (2.0 * sigma * sigma);
    let kernel = |i: usize, j: usize| {
        let d = (i as f64 - j as f64) * scale;
        (-gamma * d * d).exp()
    };
    let mut kpp = 0.0;
    let mut kqq = 0.0;
    let mut kpq = 0.0;
    for i in 0..nb {
        let (pi, qi) = (pa.probs[i], pb.probs[i]);
        if pi == 0.0 && qi == 0.0 {
            continue;
        }
        for j in 0..nb {
            let k = kernel(i, j);
            kpp += pi * pa.probs[j] * k;
            kqq += qi * pb.probs[j] * k;
            kpq += pi * pb.probs[j] * k;
        }
    }
    (kpp + kqq - 2.0 * kpq).max(0.0)
}

/// Jensen–Shannon divergence (natural log, bounded by `ln 2`) between the
/// histograms of two sample sets over their joint range.
pub fn jsd(a: &[f64], b: &[f64], bins: usize) -> f64 {
    let (lo, hi) = joint_range(a, b);
    let pa = Histogram::from_values(a, lo, hi, bins);
    let pb = Histogram::from_values(b, lo, hi, bins);
    jsd_hist(&pa.probs, &pb.probs)
}

/// Jensen–Shannon divergence between two probability vectors.
pub fn jsd_hist(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "jsd: histogram sizes differ");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            acc += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            acc += 0.5 * qi * (qi / mi).ln();
        }
    }
    acc.max(0.0)
}

/// Exact 1-D Earth Mover's Distance (Wasserstein-1) between two empirical
/// distributions: `∫ |F_a(v) − F_b(v)| dv` via a merged sweep.
pub fn emd_1d(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let mut xs: Vec<f64> = a.to_vec();
    let mut ys: Vec<f64> = b.to_vec();
    xs.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
    ys.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut emd = 0.0;
    let mut prev = xs[0].min(ys[0]);
    while i < xs.len() || j < ys.len() {
        let next = match (xs.get(i), ys.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => break,
        };
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        emd += (fa - fb).abs() * (next - prev);
        prev = next;
        while i < xs.len() && xs[i] <= next {
            i += 1;
        }
        while j < ys.len() && ys[j] <= next {
            j += 1;
        }
    }
    emd
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn histogram_normalizes() {
        let h = Histogram::from_values(&[0.0, 0.5, 1.0, 1.0], 0.0, 1.0, 2);
        assert!((h.probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.probs[0] - 0.25).abs() < 1e-12);
        assert!((h.probs[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h = Histogram::from_values(&[-5.0, 10.0], 0.0, 1.0, 4);
        assert!((h.probs[0] - 0.5).abs() < 1e-12);
        assert!((h.probs[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mmd_zero_for_identical_samples() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        assert!(mmd_gaussian(&xs, &xs, 32, 0.1) < 1e-12);
    }

    #[test]
    fn mmd_grows_with_separation() {
        let a: Vec<f64> = (0..200).map(|i| (i % 5) as f64).collect();
        let b_close: Vec<f64> = (0..200).map(|i| (i % 5) as f64 + 0.5).collect();
        let b_far: Vec<f64> = (0..200).map(|i| (i % 5) as f64 + 10.0).collect();
        let close = mmd_gaussian(&a, &b_close, 64, 0.1);
        let far = mmd_gaussian(&a, &b_far, 64, 0.1);
        assert!(far > close, "far {far} close {close}");
    }

    #[test]
    fn mmd_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..10.0)).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.gen_range(3.0..12.0)).collect();
        let ab = mmd_gaussian(&a, &b, 50, 0.1);
        let ba = mmd_gaussian(&b, &a, 50, 0.1);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn jsd_bounds() {
        // Identical => 0; disjoint => ln 2.
        let a = vec![1.0, 1.0, 2.0];
        assert!(jsd(&a, &a, 16) < 1e-12);
        let b = vec![100.0, 101.0, 102.0];
        let d = jsd(&a, &b, 16);
        assert!(d <= std::f64::consts::LN_2 + 1e-12);
        assert!(d > std::f64::consts::LN_2 - 1e-6);
    }

    #[test]
    fn jsd_hist_symmetry() {
        let p = vec![0.2, 0.3, 0.5];
        let q = vec![0.5, 0.25, 0.25];
        assert!((jsd_hist(&p, &q) - jsd_hist(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn emd_of_identical_is_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(emd_1d(&a, &a), 0.0);
    }

    #[test]
    fn emd_of_shifted_is_shift() {
        let a = vec![0.0, 1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x + 2.5).collect();
        assert!((emd_1d(&a, &b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn emd_handles_different_sizes() {
        // {0,1} vs {0.5}: EMD = 0.5
        let a = vec![0.0, 1.0];
        let b = vec![0.5];
        assert!((emd_1d(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn emd_triangle_inequality_spot_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..50).map(|_| rng.gen_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..50).map(|_| rng.gen_range(0.5..1.5)).collect();
        let c: Vec<f64> = (0..50).map(|_| rng.gen_range(1.0..2.0)).collect();
        assert!(emd_1d(&a, &c) <= emd_1d(&a, &b) + emd_1d(&b, &c) + 1e-9);
    }
}

//! Dynamic difference metrics (§IV-A2, Figures 4–8): per-timestep
//! differences between consecutive snapshots, measured on structural
//! properties (degree, clustering coefficient, coreness — Eq. 20) and on
//! attributes (MAE / RMSE — Eq. 21).

use vrdag_graph::algo;
use vrdag_graph::DynamicGraph;

/// Structural node property used in the Eq. 20 difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructuralProperty {
    /// Total (in + out) degree.
    Degree,
    /// Local clustering coefficient on the undirected projection.
    Clustering,
    /// Coreness (k-core number) on the undirected projection.
    Coreness,
}

impl StructuralProperty {
    pub fn name(&self) -> &'static str {
        match self {
            StructuralProperty::Degree => "degree",
            StructuralProperty::Clustering => "clustering",
            StructuralProperty::Coreness => "coreness",
        }
    }
}

fn property_values(g: &DynamicGraph, t: usize, p: StructuralProperty) -> Vec<f64> {
    let s = g.snapshot(t);
    match p {
        StructuralProperty::Degree => {
            (0..s.n_nodes()).map(|i| (s.in_degree(i) + s.out_degree(i)) as f64).collect()
        }
        StructuralProperty::Clustering => algo::local_clustering(s),
        StructuralProperty::Coreness => algo::coreness(s).iter().map(|&c| c as f64).collect(),
    }
}

/// Eq. 20 series: for each consecutive pair `(G_t, G_{t+1})`,
/// `D_s = (1/N) Σ_i |P(v_{i,t}) − P(v_{i,t+1})|`. Length `T − 1`.
pub fn structure_difference_series(g: &DynamicGraph, p: StructuralProperty) -> Vec<f64> {
    let n = g.n_nodes() as f64;
    (0..g.t_len().saturating_sub(1))
        .map(|t| {
            let a = property_values(g, t, p);
            let b = property_values(g, t + 1, p);
            a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum::<f64>() / n
        })
        .collect()
}

/// Attribute difference flavor for Eq. 21.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttributeDifference {
    Mae,
    Rmse,
}

/// Eq. 21 series: per consecutive snapshot pair, the MAE or RMSE between a
/// node's attribute vectors, averaged over nodes (and attribute dimensions,
/// as in the paper's multi-dimensional handling). Length `T − 1`.
pub fn attribute_difference_series(g: &DynamicGraph, kind: AttributeDifference) -> Vec<f64> {
    let n = g.n_nodes();
    let f = g.n_attrs().max(1);
    (0..g.t_len().saturating_sub(1))
        .map(|t| {
            let xa = g.snapshot(t).attrs();
            let xb = g.snapshot(t + 1).attrs();
            match kind {
                AttributeDifference::Mae => {
                    let mut acc = 0.0f64;
                    for i in 0..n {
                        for c in 0..g.n_attrs() {
                            acc += (xa.get(i, c) as f64 - xb.get(i, c) as f64).abs();
                        }
                    }
                    acc / (n as f64 * f as f64)
                }
                AttributeDifference::Rmse => {
                    // Per-node RMSE over the attribute vector, averaged over
                    // nodes (Eq. 21 with the multi-dim average).
                    let mut acc = 0.0f64;
                    for i in 0..n {
                        let mut sq = 0.0f64;
                        for c in 0..g.n_attrs() {
                            let d = xa.get(i, c) as f64 - xb.get(i, c) as f64;
                            sq += d * d;
                        }
                        acc += (sq / f as f64).sqrt();
                    }
                    acc / n as f64
                }
            }
        })
        .collect()
}

/// Mean absolute deviation between two difference series (used to score how
/// closely a generator tracks the original dynamics in Figures 4–8).
pub fn series_alignment_error(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|i| (a[i] - b[i]).abs()).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_graph::Snapshot;
    use vrdag_tensor::Matrix;

    fn two_step_graph() -> DynamicGraph {
        // t0: chain 0-1-2 ; t1: star from 0.
        let s0 = Snapshot::new(4, vec![(0, 1), (1, 2)], Matrix::zeros(4, 2));
        let s1 = Snapshot::new(
            4,
            vec![(0, 1), (0, 2), (0, 3)],
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32),
        );
        DynamicGraph::new(vec![s0, s1])
    }

    #[test]
    fn degree_difference_matches_manual() {
        let g = two_step_graph();
        let d = structure_difference_series(&g, StructuralProperty::Degree);
        // t0 total degrees: [1,2,1,0]; t1: [3,1,1,1]  => |diff| = [2,1,0,1] avg=1
        assert_eq!(d.len(), 1);
        assert!((d[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn static_sequence_has_zero_difference() {
        let s = Snapshot::new(3, vec![(0, 1), (1, 2)], Matrix::ones(3, 1));
        let g = DynamicGraph::new(vec![s.clone(), s.clone(), s]);
        for p in [
            StructuralProperty::Degree,
            StructuralProperty::Clustering,
            StructuralProperty::Coreness,
        ] {
            let d = structure_difference_series(&g, p);
            assert_eq!(d.len(), 2);
            assert!(d.iter().all(|&x| x.abs() < 1e-12), "{p:?}");
        }
        for k in [AttributeDifference::Mae, AttributeDifference::Rmse] {
            let d = attribute_difference_series(&g, k);
            assert!(d.iter().all(|&x| x.abs() < 1e-12), "{k:?}");
        }
    }

    #[test]
    fn attribute_difference_mae_and_rmse() {
        let g = two_step_graph();
        // t0 attrs all zero, t1 attrs = r + c.
        // MAE = mean over 4 nodes × 2 dims of |r+c| = (0+1+1+2+2+3+3+4)/8 = 2
        let mae = attribute_difference_series(&g, AttributeDifference::Mae);
        assert!((mae[0] - 2.0).abs() < 1e-12);
        let rmse = attribute_difference_series(&g, AttributeDifference::Rmse);
        // Per node sqrt(mean(r², (r+1)²)); nodes 0..3.
        let expected: f64 = (0..4)
            .map(|r| {
                let a = (r as f64) * (r as f64);
                let b = (r as f64 + 1.0) * (r as f64 + 1.0);
                ((a + b) / 2.0).sqrt()
            })
            .sum::<f64>()
            / 4.0;
        assert!((rmse[0] - expected).abs() < 1e-12);
        assert!(rmse[0] >= mae[0] - 1.0); // sanity: same order of magnitude
    }

    #[test]
    fn alignment_error_of_identical_series_is_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(series_alignment_error(&a, &a), 0.0);
        assert!((series_alignment_error(&a, &[1.5, 2.5, 3.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn property_names() {
        assert_eq!(StructuralProperty::Degree.name(), "degree");
        assert_eq!(StructuralProperty::Clustering.name(), "clustering");
        assert_eq!(StructuralProperty::Coreness.name(), "coreness");
    }
}

//! # vrdag-metrics
//!
//! The evaluation metrics of the VRDAG paper (§IV-A2), implemented from
//! scratch:
//!
//! * [`structure`] — the eight Table I metrics: in/out-degree distribution
//!   MMD, clustering-coefficient MMD, in/out power-law exponent (PLE)
//!   discrepancy, wedge count, number of components (NC) and largest
//!   connected component (LCC) relative discrepancy (Eq. 19).
//! * [`attribute`] — Fig. 3 (JSD / EMD of attribute distributions) and
//!   Table II (MAE of Spearman attribute correlation matrices).
//! * [`dynamic`] — Figures 4–8: consecutive-snapshot difference series for
//!   degree / clustering / coreness (Eq. 20) and attribute MAE / RMSE
//!   (Eq. 21).
//! * [`distribution`] — the underlying histogram / MMD / JSD / EMD
//!   primitives.

pub mod attribute;
pub mod distribution;
pub mod dynamic;
pub mod structure;
pub mod summary;

pub use attribute::{attribute_report, spearman, spearman_mae, AttributeReport};
pub use distribution::{emd_1d, jsd, mmd_gaussian, Histogram};
pub use dynamic::{
    attribute_difference_series, series_alignment_error, structure_difference_series,
    AttributeDifference, StructuralProperty,
};
pub use structure::{power_law_exponent, structure_report, StructureReport};
pub use summary::{summarize, GraphSummary};

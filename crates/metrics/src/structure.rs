//! The eight graph-structure metrics of Table I: in/out-degree distribution
//! MMD, clustering-coefficient distribution MMD, in/out power-law exponent
//! discrepancy, wedge count, number of components (NC), and largest
//! connected component (LCC) discrepancy.

use crate::distribution::mmd_gaussian;
use vrdag_graph::algo;
use vrdag_graph::{DynamicGraph, Snapshot};

/// Number of histogram bins used for the closed-form MMD estimates.
pub const MMD_BINS: usize = 64;
/// Gaussian kernel bandwidth on the `[0,1]`-rescaled value axis.
pub const MMD_SIGMA: f64 = 0.1;

/// Power-law exponent of a degree sequence via the continuous maximum
/// likelihood estimator (Clauset et al.) with `d_min = 1`:
/// `α = 1 + n / Σ ln(d_i / (d_min − 0.5))`. Degrees below `d_min` are
/// ignored; returns `None` when fewer than two positive degrees exist.
pub fn power_law_exponent(degrees: &[usize]) -> Option<f64> {
    let d_min = 1.0f64;
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for &d in degrees {
        if d as f64 >= d_min {
            n += 1;
            log_sum += (d as f64 / (d_min - 0.5)).ln();
        }
    }
    if n < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / log_sum)
}

/// Relative discrepancy of a scalar graph metric, one term of Eq. 19:
/// `|M(G_t) − M(G̃_t)| / M(G_t)` with a small-denominator guard.
pub fn relative_discrepancy(original: f64, generated: f64) -> f64 {
    (original - generated).abs() / original.abs().max(1e-9)
}

/// Mean relative discrepancy across timesteps (Eq. 19).
pub fn mean_relative_discrepancy(orig: &[f64], gen: &[f64]) -> f64 {
    assert_eq!(orig.len(), gen.len(), "series lengths differ");
    if orig.is_empty() {
        return 0.0;
    }
    orig.iter().zip(gen.iter()).map(|(&o, &g)| relative_discrepancy(o, g)).sum::<f64>()
        / orig.len() as f64
}

/// The Table I row for one (dataset, method) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StructureReport {
    /// MMD between in-degree distributions, averaged over timesteps.
    pub in_deg_dist: f64,
    /// MMD between out-degree distributions, averaged over timesteps.
    pub out_deg_dist: f64,
    /// MMD between local clustering coefficient distributions.
    pub clus_dist: f64,
    /// Mean relative discrepancy of the in-degree power-law exponent.
    pub in_ple: f64,
    /// Mean relative discrepancy of the out-degree power-law exponent.
    pub out_ple: f64,
    /// Mean relative discrepancy of the wedge count.
    pub wedge_count: f64,
    /// Mean relative discrepancy of the number of weakly connected
    /// components.
    pub nc: f64,
    /// Mean relative discrepancy of the largest connected component size.
    pub lcc: f64,
}

impl StructureReport {
    /// The eight metric values in Table I column order.
    pub fn as_row(&self) -> [f64; 8] {
        [
            self.in_deg_dist,
            self.out_deg_dist,
            self.clus_dist,
            self.in_ple,
            self.out_ple,
            self.wedge_count,
            self.nc,
            self.lcc,
        ]
    }

    /// Column headers matching [`Self::as_row`].
    pub fn headers() -> [&'static str; 8] {
        [
            "In-deg dist",
            "Out-deg dist",
            "Clus dist",
            "In-PLE",
            "Out-PLE",
            "Wedge count",
            "NC",
            "LCC",
        ]
    }
}

fn to_f64(v: &[usize]) -> Vec<f64> {
    v.iter().map(|&x| x as f64).collect()
}

/// Per-snapshot scalar metrics used by the Eq. 19 discrepancy columns.
struct SnapshotScalars {
    in_ple: f64,
    out_ple: f64,
    wedges: f64,
    nc: f64,
    lcc: f64,
}

fn snapshot_scalars(s: &Snapshot) -> SnapshotScalars {
    let comps = algo::weakly_connected_components(s);
    SnapshotScalars {
        in_ple: power_law_exponent(&algo::in_degrees(s)).unwrap_or(0.0),
        out_ple: power_law_exponent(&algo::out_degrees(s)).unwrap_or(0.0),
        wedges: algo::wedge_count(s) as f64,
        nc: comps.count() as f64,
        lcc: comps.largest() as f64,
    }
}

/// Compute the full Table I structure comparison between an original and a
/// generated dynamic graph. Snapshots are compared timestep by timestep up
/// to the shorter of the two sequences.
pub fn structure_report(original: &DynamicGraph, generated: &DynamicGraph) -> StructureReport {
    let t = original.t_len().min(generated.t_len());
    assert!(t > 0, "need at least one snapshot to compare");
    let mut in_mmd = 0.0;
    let mut out_mmd = 0.0;
    let mut clus_mmd = 0.0;
    let mut orig_scalars = Vec::with_capacity(t);
    let mut gen_scalars = Vec::with_capacity(t);
    for ti in 0..t {
        let (so, sg) = (original.snapshot(ti), generated.snapshot(ti));
        in_mmd += mmd_gaussian(
            &to_f64(&algo::in_degrees(so)),
            &to_f64(&algo::in_degrees(sg)),
            MMD_BINS,
            MMD_SIGMA,
        );
        out_mmd += mmd_gaussian(
            &to_f64(&algo::out_degrees(so)),
            &to_f64(&algo::out_degrees(sg)),
            MMD_BINS,
            MMD_SIGMA,
        );
        clus_mmd += mmd_gaussian(
            &algo::local_clustering(so),
            &algo::local_clustering(sg),
            MMD_BINS,
            MMD_SIGMA,
        );
        orig_scalars.push(snapshot_scalars(so));
        gen_scalars.push(snapshot_scalars(sg));
    }
    let tf = t as f64;
    let series = |f: fn(&SnapshotScalars) -> f64| -> (Vec<f64>, Vec<f64>) {
        (orig_scalars.iter().map(f).collect(), gen_scalars.iter().map(f).collect())
    };
    let (o, g) = series(|s| s.in_ple);
    let in_ple = mean_relative_discrepancy(&o, &g);
    let (o, g) = series(|s| s.out_ple);
    let out_ple = mean_relative_discrepancy(&o, &g);
    let (o, g) = series(|s| s.wedges);
    let wedge = mean_relative_discrepancy(&o, &g);
    let (o, g) = series(|s| s.nc);
    let nc = mean_relative_discrepancy(&o, &g);
    let (o, g) = series(|s| s.lcc);
    let lcc = mean_relative_discrepancy(&o, &g);

    StructureReport {
        in_deg_dist: in_mmd / tf,
        out_deg_dist: out_mmd / tf,
        clus_dist: clus_mmd / tf,
        in_ple,
        out_ple,
        wedge_count: wedge,
        nc,
        lcc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_tensor::Matrix;

    fn star_snapshot(n: usize) -> Snapshot {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    fn chain_snapshot(n: usize) -> Snapshot {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Snapshot::new(n, edges, Matrix::zeros(n, 0))
    }

    #[test]
    fn identical_graphs_report_zero() {
        let g = DynamicGraph::new(vec![star_snapshot(20), chain_snapshot(20)]);
        let r = structure_report(&g, &g.clone());
        for v in r.as_row() {
            assert!(v.abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn different_graphs_report_positive() {
        // Note the *in*-degree distributions of a star and a chain coincide
        // (one source node, n−1 nodes of in-degree 1), so the discriminating
        // columns are out-degree and wedge count.
        let a = DynamicGraph::new(vec![star_snapshot(30)]);
        let b = DynamicGraph::new(vec![chain_snapshot(30)]);
        let r = structure_report(&a, &b);
        assert!(r.out_deg_dist > 0.0);
        assert!(r.wedge_count > 0.0); // star has many wedges, chain few
        assert!(r.out_ple > 0.0);
    }

    #[test]
    fn power_law_exponent_exact_on_constant_degrees() {
        // All degrees 2: α = 1 + n / (n · ln(2/0.5)) = 1 + 1/ln 4.
        let degrees = vec![2usize; 1000];
        let est = power_law_exponent(&degrees).unwrap();
        assert!((est - (1.0 + 1.0 / 4.0f64.ln())).abs() < 1e-9, "estimated {est}");
    }

    #[test]
    fn power_law_exponent_orders_heavier_tails_lower() {
        // Heavier tail (smaller α) must yield a smaller estimate. Sample two
        // power laws via inverse CDF and compare the *ordering* (the
        // continuous MLE on rounded data is biased, so we do not test the
        // absolute value on discretized samples).
        let sample = |alpha: f64| -> Vec<usize> {
            let n = 100_000;
            (0..n)
                .map(|i| {
                    let u = (i as f64 + 0.5) / n as f64;
                    let x = 0.5 * (1.0 - u).powf(-1.0 / (alpha - 1.0));
                    x.round().max(1.0) as usize
                })
                .collect()
        };
        let heavy = power_law_exponent(&sample(2.0)).unwrap();
        let light = power_law_exponent(&sample(3.5)).unwrap();
        assert!(heavy < light, "heavy {heavy} light {light}");
        assert!(heavy > 1.0 && light > 1.0);
    }

    #[test]
    fn power_law_exponent_degenerate_cases() {
        assert!(power_law_exponent(&[]).is_none());
        assert!(power_law_exponent(&[0, 0, 0]).is_none());
        assert!(power_law_exponent(&[1, 1, 1]).is_some());
    }

    #[test]
    fn relative_discrepancy_guards_zero_denominator() {
        assert!(relative_discrepancy(0.0, 5.0).is_finite());
        assert_eq!(relative_discrepancy(10.0, 8.0), 0.2);
    }

    #[test]
    fn mean_relative_discrepancy_averages() {
        let o = vec![10.0, 20.0];
        let g = vec![8.0, 30.0];
        assert!((mean_relative_discrepancy(&o, &g) - (0.2 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_headers_match_row_len() {
        assert_eq!(StructureReport::headers().len(), StructureReport::default().as_row().len());
    }
}

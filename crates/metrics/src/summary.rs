//! Descriptive statistics of a dynamic attributed graph — the left-hand
//! columns of the paper's Table I plus the temporal characteristics the
//! dataset generators target. Useful for sanity-checking synthetic data
//! against a real dataset before swapping it in.

use vrdag_graph::algo;
use vrdag_graph::DynamicGraph;

/// Aggregate statistics of a dynamic attributed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Node count `N`.
    pub n: usize,
    /// Temporal edge count `M`.
    pub m: usize,
    /// Attribute dimensionality `F`.
    pub f: usize,
    /// Snapshot count `T`.
    pub t: usize,
    /// Mean edges per snapshot.
    pub mean_edges_per_snapshot: f64,
    /// Mean directed density per snapshot.
    pub mean_density: f64,
    /// Max out-degree observed in any snapshot.
    pub max_out_degree: usize,
    /// Max in-degree observed in any snapshot.
    pub max_in_degree: usize,
    /// Mean local clustering coefficient (averaged over snapshots).
    pub mean_clustering: f64,
    /// Mean reciprocity: fraction of edges whose reverse also exists in the
    /// same snapshot.
    pub mean_reciprocity: f64,
    /// Mean edge persistence: fraction of a snapshot's edges that also
    /// exist in the next snapshot.
    pub mean_edge_persistence: f64,
    /// Mean in-degree power-law exponent across snapshots (0 if
    /// inestimable).
    pub mean_in_ple: f64,
    /// Fraction of nodes with at least one edge in any snapshot.
    pub active_fraction: f64,
}

/// Compute the summary (single pass over snapshots plus the per-snapshot
/// metric helpers).
pub fn summarize(g: &DynamicGraph) -> GraphSummary {
    let t = g.t_len();
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut clus_acc = 0.0f64;
    let mut recip_acc = 0.0f64;
    let mut ple_acc = 0.0f64;
    let mut ple_count = 0usize;
    let mut density_acc = 0.0f64;
    for (_, s) in g.iter() {
        for i in 0..s.n_nodes() {
            max_out = max_out.max(s.out_degree(i));
            max_in = max_in.max(s.in_degree(i));
        }
        let clus = algo::local_clustering(s);
        if !clus.is_empty() {
            clus_acc += clus.iter().sum::<f64>() / clus.len() as f64;
        }
        if s.n_edges() > 0 {
            let recip = s.edges().iter().filter(|&&(u, v)| s.has_edge(v, u)).count() as f64
                / s.n_edges() as f64;
            recip_acc += recip;
        }
        if let Some(ple) = crate::structure::power_law_exponent(&algo::in_degrees(s)) {
            ple_acc += ple;
            ple_count += 1;
        }
        density_acc += s.density();
    }
    let mut persist_acc = 0.0f64;
    for ti in 0..t.saturating_sub(1) {
        let cur = g.snapshot(ti);
        let nxt = g.snapshot(ti + 1);
        if cur.n_edges() > 0 {
            let kept = cur.edges().iter().filter(|&&(u, v)| nxt.has_edge(u, v)).count() as f64;
            persist_acc += kept / cur.n_edges() as f64;
        }
    }
    GraphSummary {
        n: g.n_nodes(),
        m: g.temporal_edge_count(),
        f: g.n_attrs(),
        t,
        mean_edges_per_snapshot: g.mean_edges_per_snapshot(),
        mean_density: density_acc / t as f64,
        max_out_degree: max_out,
        max_in_degree: max_in,
        mean_clustering: clus_acc / t as f64,
        mean_reciprocity: recip_acc / t as f64,
        mean_edge_persistence: if t > 1 { persist_acc / (t - 1) as f64 } else { 0.0 },
        mean_in_ple: if ple_count > 0 { ple_acc / ple_count as f64 } else { 0.0 },
        active_fraction: g.active_nodes().len() as f64 / g.n_nodes().max(1) as f64,
    }
}

impl GraphSummary {
    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        format!(
            "N={} M={} F={} T={}\n\
             edges/snapshot={:.1} density={:.5}\n\
             max out-degree={} max in-degree={}\n\
             clustering={:.4} reciprocity={:.3} persistence={:.3}\n\
             in-PLE={:.2} active nodes={:.1}%",
            self.n,
            self.m,
            self.f,
            self.t,
            self.mean_edges_per_snapshot,
            self.mean_density,
            self.max_out_degree,
            self.max_in_degree,
            self.mean_clustering,
            self.mean_reciprocity,
            self.mean_edge_persistence,
            self.mean_in_ple,
            100.0 * self.active_fraction,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_graph::Snapshot;
    use vrdag_tensor::Matrix;

    fn toy() -> DynamicGraph {
        // t0: 0->1, 1->0 (reciprocal pair), 1->2 ; t1: 0->1, 2->0
        let s0 = Snapshot::new(3, vec![(0, 1), (1, 0), (1, 2)], Matrix::zeros(3, 1));
        let s1 = Snapshot::new(3, vec![(0, 1), (2, 0)], Matrix::zeros(3, 1));
        DynamicGraph::new(vec![s0, s1])
    }

    #[test]
    fn shape_fields_match() {
        let g = toy();
        let s = summarize(&g);
        assert_eq!((s.n, s.m, s.f, s.t), (3, 5, 1, 2));
        assert!((s.mean_edges_per_snapshot - 2.5).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 2); // node 1 at t0
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn reciprocity_counts_mutual_edges() {
        let g = toy();
        let s = summarize(&g);
        // t0: 2 of 3 edges reciprocated; t1: 0 of 2. Mean = (2/3)/2 = 1/3.
        assert!((s.mean_reciprocity - (2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn persistence_counts_surviving_edges() {
        let g = toy();
        let s = summarize(&g);
        // Of t0's 3 edges only (0,1) survives to t1 => 1/3.
        assert!((s.mean_edge_persistence - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn active_fraction_counts_touched_nodes() {
        let g = toy();
        assert!((summarize(&g).active_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_is_nonempty_and_mentions_shape() {
        let s = summarize(&toy());
        let r = s.render();
        assert!(r.contains("N=3"));
        assert!(r.contains("T=2"));
    }

    #[test]
    fn synthetic_dataset_matches_spec_regime() {
        let spec = vrdag_datasets_testhelper();
        let g = vrdag_graph_from(&spec);
        let s = summarize(&g);
        // Persistence parameter should be visible in the measured value.
        assert!(s.mean_edge_persistence > 0.15, "persistence {:.3}", s.mean_edge_persistence);
        assert!(s.mean_reciprocity >= 0.0);
    }

    // Local shims to avoid a dev-dependency cycle with vrdag-datasets:
    // build a persistence-heavy graph by hand.
    fn vrdag_datasets_testhelper() -> Vec<(u32, u32)> {
        (0..30u32).map(|i| (i % 10, (i + 1) % 10)).collect()
    }

    fn vrdag_graph_from(edges: &[(u32, u32)]) -> DynamicGraph {
        let s0 = Snapshot::new(10, edges.to_vec(), Matrix::zeros(10, 0));
        let mut e1 = edges.to_vec();
        e1.truncate(edges.len() / 2);
        let s1 = Snapshot::new(10, e1, Matrix::zeros(10, 0));
        DynamicGraph::new(vec![s0, s1])
    }
}

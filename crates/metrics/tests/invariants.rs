//! Integration-level invariants of the metrics crate on known tiny
//! graphs: the degree-distribution metrics and the attribute/summary
//! reports that validate generated output must behave as mathematical
//! objects (identity ⇒ zero, symmetry where promised, hand-computable
//! values on toy inputs) before any fidelity number is trusted.

use vrdag_graph::{algo, DynamicGraph, Snapshot};
use vrdag_metrics::{
    attribute_report, jsd, mmd_gaussian, spearman_mae, structure_report, summarize, StructureReport,
};
use vrdag_tensor::Matrix;

/// A hand-checkable two-snapshot graph: a directed triangle that loses
/// one edge at t1, with monotone attributes.
fn toy() -> DynamicGraph {
    let attrs0 = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
    let attrs1 = Matrix::from_fn(4, 2, |r, c| (r * (c + 2)) as f32);
    let s0 = Snapshot::new(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)], attrs0);
    let s1 = Snapshot::new(4, vec![(0, 1), (1, 2), (2, 0)], attrs1);
    DynamicGraph::new(vec![s0, s1])
}

/// A structurally different graph over the same nodes: a star.
fn star() -> DynamicGraph {
    let attrs = Matrix::from_fn(4, 2, |r, _| (10 - r) as f32);
    let s0 = Snapshot::new(4, vec![(0, 1), (0, 2), (0, 3)], attrs.clone());
    let s1 = Snapshot::new(4, vec![(0, 1), (0, 2), (0, 3)], attrs);
    DynamicGraph::new(vec![s0, s1])
}

#[test]
fn degree_sequences_are_consistent_with_edge_counts() {
    let g = toy();
    for (_, s) in g.iter() {
        let in_deg = algo::in_degrees(s);
        let out_deg = algo::out_degrees(s);
        // Every directed edge contributes one in- and one out-degree.
        assert_eq!(in_deg.iter().sum::<usize>(), s.n_edges());
        assert_eq!(out_deg.iter().sum::<usize>(), s.n_edges());
        // The histogram partitions the nodes.
        let hist = algo::degree_histogram(&in_deg);
        assert_eq!(hist.iter().sum::<usize>(), s.n_nodes());
    }
}

#[test]
fn degree_distribution_mmd_is_a_discrepancy() {
    let a: Vec<f64> = algo::in_degrees(toy().snapshot(0)).iter().map(|&d| d as f64).collect();
    let b: Vec<f64> = algo::in_degrees(star().snapshot(0)).iter().map(|&d| d as f64).collect();
    // Identity of indiscernibles, non-negativity, symmetry.
    assert!(mmd_gaussian(&a, &a, 64, 0.1) < 1e-12);
    let ab = mmd_gaussian(&a, &b, 64, 0.1);
    let ba = mmd_gaussian(&b, &a, 64, 0.1);
    assert!(ab > 0.0, "triangle vs star degree distributions must differ");
    assert!((ab - ba).abs() < 1e-12);
}

#[test]
fn structure_report_is_zero_on_identical_graphs() {
    let g = toy();
    let report = structure_report(&g, &g.clone());
    for (name, v) in StructureReport::headers().iter().zip(report.as_row()) {
        assert!(v.abs() < 1e-9, "{name} = {v} on identical graphs");
    }
}

#[test]
fn structure_report_detects_different_topology() {
    let report = structure_report(&toy(), &star());
    let total: f64 = report.as_row().iter().map(|v| v.abs()).sum();
    assert!(total > 1e-6, "star vs triangle must register structural discrepancy");
    // Every Table-I column is finite (no NaN leaks from degenerate cases).
    for (name, v) in StructureReport::headers().iter().zip(report.as_row()) {
        assert!(v.is_finite(), "{name} is not finite");
    }
}

#[test]
fn attribute_report_identity_and_sensitivity() {
    let g = toy();
    let zero = attribute_report(&g, &g.clone());
    assert!(zero.jsd < 1e-12, "identical attributes must have zero JSD");
    assert!(zero.emd < 1e-12, "identical attributes must have zero EMD");

    let diff = attribute_report(&toy(), &star());
    assert!(diff.jsd > 0.0);
    assert!(diff.emd > 0.0);
    // JSD is bounded by ln 2 per construction.
    assert!(diff.jsd <= std::f64::consts::LN_2 + 1e-12);
}

#[test]
fn spearman_mae_is_zero_for_identical_and_bounded() {
    let g = toy();
    assert!(spearman_mae(&g, &g.clone()).abs() < 1e-12);
    // MAE of correlations in [-1, 1] can never exceed 2.
    let mae = spearman_mae(&toy(), &star());
    assert!((0.0..=2.0).contains(&mae), "mae {mae} out of bounds");
}

#[test]
fn summary_matches_hand_computed_values() {
    let g = toy();
    let s = summarize(&g);
    assert_eq!((s.n, s.m, s.f, s.t), (4, 7, 2, 2));
    assert!((s.mean_edges_per_snapshot - 3.5).abs() < 1e-12);
    // t0 density 4/12, t1 density 3/12.
    assert!((s.mean_density - (4.0 / 12.0 + 3.0 / 12.0) / 2.0).abs() < 1e-12);
    // Node 0 at t0 has out-degree 2; nobody exceeds in-degree 1.
    assert_eq!(s.max_out_degree, 2);
    assert_eq!(s.max_in_degree, 1);
    // All of t1's edges existed at t0 is irrelevant; persistence looks
    // forward: 3 of t0's 4 edges survive to t1.
    assert!((s.mean_edge_persistence - 3.0 / 4.0).abs() < 1e-12);
    // Every node touches an edge at t0.
    assert!((s.active_fraction - 1.0).abs() < 1e-12);
    // No reciprocal pairs anywhere.
    assert_eq!(s.mean_reciprocity, 0.0);
}

#[test]
fn summary_render_reports_every_headline_number() {
    let s = summarize(&toy());
    let r = s.render();
    for needle in ["N=4", "M=7", "F=2", "T=2"] {
        assert!(r.contains(needle), "render missing {needle}: {r}");
    }
}

#[test]
fn jsd_of_disjoint_attribute_columns_saturates() {
    // Two constant columns far apart: maximal divergence, exactly ln 2.
    let a: Vec<f64> = vec![0.0; 32];
    let b: Vec<f64> = vec![100.0; 32];
    let d = jsd(&a, &b, 16);
    assert!((d - std::f64::consts::LN_2).abs() < 1e-9);
}

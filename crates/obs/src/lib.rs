//! Observability primitives for the serving stack: structured leveled
//! logging, a process-local metrics registry with deterministic
//! Prometheus text exposition, and per-job stage tracing.
//!
//! Like the `crates/compat/` shims, this crate is deliberately
//! zero-dependency (std only) so the workspace stays buildable offline.
//! The three modules are independent — the serve crate wires them
//! together:
//!
//! - [`log`]: a cheap-to-clone [`Logger`] that emits human-readable or
//!   JSON lines to a pluggable `io::Write` sink and keeps a bounded
//!   in-memory ring of recent events for post-hoc inspection.
//! - [`metrics`]: a [`Registry`] of named counters, gauges, and
//!   log-bucketed histograms, rendered as Prometheus text exposition
//!   (deterministic ordering, fixed bucket boundaries) or as JSON.
//! - [`trace`]: a [`JobTrace`] of monotonic stage timestamps
//!   (submitted → dequeued → first/last snapshot → delivered) from
//!   which queue-wait, time-to-first-snapshot, generation, and
//!   delivery durations are derived.
//! - [`span`]: completed-request [`Span`]s — one per finished request
//!   per tier, keyed by a distributed trace id ([`mint_trace_id`]) —
//!   retained in a bounded [`SpanRecorder`] ring with deterministic
//!   JSON export for the HTTP `/traces` endpoint.

pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub use crate::log::{Level, LogEvent, Logger};
pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use crate::span::{mint_trace_id, Span, SpanRecorder};
pub use crate::trace::{JobTrace, StageDurations};

//! Structured leveled logging with a pluggable sink and a bounded ring
//! of recent events.
//!
//! A [`Logger`] is an `Arc` around its state, so clones share the sink,
//! the ring, and the level; handing one to every layer of the serve
//! stack costs a pointer copy. Emission is line-oriented: one event is
//! one `\n`-terminated line, either human-readable
//! (`ts=1722950000.123 level=warn target=serve.frontend msg="..." k=v`)
//! or JSON (see [`LogEvent::to_json`] for the schema). Events below the
//! configured level are dropped before any formatting work happens.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default capacity of the in-memory ring of recent events.
pub const DEFAULT_RING: usize = 256;

/// Internal level sentinel: the atomic stores `level as u8 + 1`, with
/// `0` meaning fully disabled (even errors are dropped).
const DISABLED: u8 = 0;

/// Severity of a log event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    /// Lowercase name as it appears on the wire and in JSON lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (case-insensitive). Returns `None` for
    /// anything that is not one of `error|warn|info|debug`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log event, as captured in the ring.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Milliseconds since the unix epoch at emission time.
    pub unix_millis: u64,
    pub level: Level,
    /// Dotted component path, e.g. `serve.frontend`.
    pub target: String,
    pub message: String,
    /// Ordered key/value context fields.
    pub fields: Vec<(String, String)>,
}

impl LogEvent {
    /// Render as a single JSON object (no trailing newline):
    /// `{"ts_ms":...,"level":"warn","target":"...","msg":"...","fields":{...}}`.
    /// `fields` is omitted when empty.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_ms\":");
        out.push_str(&self.unix_millis.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"target\":\"");
        json_escape_into(&mut out, &self.target);
        out.push_str("\",\"msg\":\"");
        json_escape_into(&mut out, &self.message);
        out.push('"');
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(&mut out, k);
                out.push_str("\":\"");
                json_escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render as a human-readable `key=value` line (no trailing
    /// newline). Values containing spaces or `"` are quoted.
    pub fn to_human(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "ts={}.{:03} level={} target={} msg=",
            self.unix_millis / 1000,
            self.unix_millis % 1000,
            self.level.as_str(),
            self.target
        ));
        push_human_value(&mut out, &self.message);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            push_human_value(&mut out, v);
        }
        out
    }
}

fn push_human_value(out: &mut String, v: &str) {
    if !v.is_empty() && !v.contains(' ') && !v.contains('"') && !v.contains('\n') {
        out.push_str(v);
    } else {
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct SinkState {
    out: Option<Box<dyn Write + Send>>,
    ring: VecDeque<LogEvent>,
    ring_cap: usize,
}

struct Inner {
    level: AtomicU8,
    json: bool,
    sink: Mutex<SinkState>,
}

/// A cheap-to-clone structured logger. See the module docs.
#[derive(Clone)]
pub struct Logger {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level())
            .field("json", &self.inner.json)
            .finish()
    }
}

impl Default for Logger {
    /// The default logger is disabled (no sink, nothing recorded).
    fn default() -> Self {
        Logger::disabled()
    }
}

impl Logger {
    /// A logger that drops everything: no sink, no ring. This is the
    /// default inside library code so embedding the serve stack stays
    /// silent unless the host opts in.
    pub fn disabled() -> Logger {
        Logger {
            inner: Arc::new(Inner {
                level: AtomicU8::new(DISABLED),
                json: false,
                sink: Mutex::new(SinkState { out: None, ring: VecDeque::new(), ring_cap: 0 }),
            }),
        }
    }

    /// A logger writing to stderr.
    pub fn to_stderr(level: Level, json: bool) -> Logger {
        Logger::with_sink(level, json, Box::new(io::stderr()))
    }

    /// A logger writing to an arbitrary sink (a file, a `Vec<u8>`
    /// behind a wrapper, a pipe...).
    pub fn with_sink(level: Level, json: bool, sink: Box<dyn Write + Send>) -> Logger {
        Logger {
            inner: Arc::new(Inner {
                level: AtomicU8::new(level as u8 + 1),
                json,
                sink: Mutex::new(SinkState {
                    out: Some(sink),
                    ring: VecDeque::new(),
                    ring_cap: DEFAULT_RING,
                }),
            }),
        }
    }

    /// A logger with no output sink that still records events in the
    /// ring — useful in tests.
    pub fn ring_only(level: Level) -> Logger {
        Logger {
            inner: Arc::new(Inner {
                level: AtomicU8::new(level as u8 + 1),
                json: false,
                sink: Mutex::new(SinkState {
                    out: None,
                    ring: VecDeque::new(),
                    ring_cap: DEFAULT_RING,
                }),
            }),
        }
    }

    /// Current threshold; events strictly less severe are dropped.
    /// `None` means the logger is fully disabled.
    pub fn level(&self) -> Option<Level> {
        match self.inner.level.load(Ordering::Relaxed) {
            DISABLED => None,
            v => Some(Level::from_u8(v - 1)),
        }
    }

    /// Change the threshold at runtime.
    pub fn set_level(&self, level: Level) {
        self.inner.level.store(level as u8 + 1, Ordering::Relaxed);
    }

    /// Would an event at `level` be recorded?
    pub fn enabled(&self, level: Level) -> bool {
        // Stored as `level + 1` (DISABLED = 0), so `v > level` is
        // exactly "not disabled AND threshold at or above `level`".
        self.inner.level.load(Ordering::Relaxed) > level as u8
    }

    /// Emit an event. `fields` are `(key, value)` context pairs; keys
    /// should be bare identifiers (`job`, `tenant`, `waited_ms`).
    pub fn log(&self, level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        let unix_millis =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        let event = LogEvent {
            unix_millis,
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        };
        let line = if self.inner.json { event.to_json() } else { event.to_human() };
        let mut sink = match self.inner.sink.lock() {
            Ok(sink) => sink,
            Err(poisoned) => poisoned.into_inner(),
        };
        if sink.ring_cap > 0 {
            if sink.ring.len() == sink.ring_cap {
                sink.ring.pop_front();
            }
            sink.ring.push_back(event);
        }
        if let Some(out) = sink.out.as_mut() {
            // A full pipe or closed fd must never take the server down.
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
            let _ = out.flush();
        }
    }

    pub fn error(&self, target: &str, message: &str, fields: &[(&str, String)]) {
        self.log(Level::Error, target, message, fields);
    }

    pub fn warn(&self, target: &str, message: &str, fields: &[(&str, String)]) {
        self.log(Level::Warn, target, message, fields);
    }

    pub fn info(&self, target: &str, message: &str, fields: &[(&str, String)]) {
        self.log(Level::Info, target, message, fields);
    }

    pub fn debug(&self, target: &str, message: &str, fields: &[(&str, String)]) {
        self.log(Level::Debug, target, message, fields);
    }

    /// Snapshot of the bounded ring of recent events, oldest first.
    pub fn recent(&self) -> Vec<LogEvent> {
        let sink = match self.inner.sink.lock() {
            Ok(sink) => sink,
            Err(poisoned) => poisoned.into_inner(),
        };
        sink.ring.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{channel, Sender};

    /// A `Write` sink that forwards complete lines over a channel.
    struct LineSink {
        buf: Vec<u8>,
        tx: Sender<String>,
    }

    impl Write for LineSink {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.buf.extend_from_slice(data);
            while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                let _ = self.tx.send(text);
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn levels_filter_and_ring_records() {
        let log = Logger::ring_only(Level::Warn);
        log.debug("t", "dropped", &[]);
        log.info("t", "dropped too", &[]);
        log.warn("t", "kept", &[("k", "v".to_string())]);
        log.error("t", "kept too", &[]);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].message, "kept");
        assert_eq!(recent[0].fields, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(recent[1].level, Level::Error);
    }

    #[test]
    fn disabled_logger_drops_everything() {
        let log = Logger::disabled();
        assert_eq!(log.level(), None);
        log.error("t", "nope", &[]);
        assert!(log.recent().is_empty());
        assert!(!log.enabled(Level::Error));
    }

    #[test]
    fn ring_is_bounded() {
        let log = Logger::ring_only(Level::Info);
        for i in 0..(DEFAULT_RING + 10) {
            log.info("t", &format!("m{i}"), &[]);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), DEFAULT_RING);
        assert_eq!(recent[0].message, "m10");
    }

    #[test]
    fn json_lines_escape_and_carry_fields() {
        let (tx, rx) = channel();
        let log = Logger::with_sink(Level::Info, true, Box::new(LineSink { buf: Vec::new(), tx }));
        log.info("serve.cli", "he said \"hi\"\n", &[("path", "a\\b".to_string())]);
        let line = rx.recv().unwrap();
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"msg\":\"he said \\\"hi\\\"\\n\""), "{line}");
        assert!(line.contains("\"fields\":{\"path\":\"a\\\\b\"}"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn human_lines_quote_spaces() {
        let (tx, rx) = channel();
        let log =
            Logger::with_sink(Level::Debug, false, Box::new(LineSink { buf: Vec::new(), tx }));
        log.debug("t", "two words", &[("n", "3".to_string())]);
        let line = rx.recv().unwrap();
        assert!(line.contains("msg=\"two words\""), "{line}");
        assert!(line.ends_with(" n=3"), "{line}");
    }

    #[test]
    fn set_level_takes_effect() {
        let log = Logger::ring_only(Level::Error);
        log.warn("t", "dropped", &[]);
        log.set_level(Level::Debug);
        log.warn("t", "kept", &[]);
        assert_eq!(log.recent().len(), 1);
    }
}

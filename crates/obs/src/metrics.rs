//! A process-local metrics registry with deterministic Prometheus
//! text exposition.
//!
//! Metrics are registered by `(name, sorted label pairs)` and come in
//! three kinds: monotonic [`Counter`]s, free-standing [`Gauge`]s, and
//! log-bucketed [`Histogram`]s with **fixed** bucket boundaries (so the
//! exposition is byte-deterministic for a given sequence of
//! observations). Handles are `Arc`s around atomics — recording is
//! lock-free; only registration and rendering take the registry lock.
//!
//! [`Registry::render`] emits Prometheus text exposition: families
//! sorted by name, series sorted by label values, label values escaped
//! (`\\`, `\"`, `\n`), histograms as cumulative `_bucket{le=...}`
//! series plus `_sum` and `_count`. [`Registry::render_json`] emits the
//! same data as a single JSON object for file dumps.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram boundaries: log-spaced 1–2.5–5 per decade, in
/// seconds, from 1ms to 60s. Observations above the last bound land in
/// the implicit `+Inf` bucket.
pub const DURATION_BUCKETS: &[f64] =
    &[0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0];

/// A monotonic counter. `set` exists for mirror metrics that are
/// refreshed from an external authoritative source at render time; it
/// must only ever move the value forward.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value (refresh-from-source pattern).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Strictly increasing, finite upper bounds; the `+Inf` bucket is
    /// implicit as `counts[bounds.len()]`.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A histogram with fixed bucket boundaries.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| value > b);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // f64 addition via CAS on the bit pattern.
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let mut cumulative = Vec::with_capacity(inner.counts.len());
        let mut acc = 0u64;
        for c in &inner.counts {
            acc += c.load(Ordering::Relaxed);
            cumulative.push(acc);
        }
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            cumulative,
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`Histogram`]. `cumulative[i]` counts
/// observations `<= bounds[i]`; the final element is the `+Inf` bucket
/// and equals `count`.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    pub cumulative: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

type LabelSet = Vec<(String, String)>;

#[derive(Default)]
struct RegistryInner {
    /// name → (series by sorted label set). All series of a family
    /// share one kind, checked at registration.
    families: BTreeMap<String, BTreeMap<LabelSet, Handle>>,
}

/// A clonable registry of metrics. See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry").field("families", &inner.families.len()).finish()
    }
}

fn sorted_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut out: LabelSet = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// Escape a label value for the Prometheus text format.
fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Format an f64 the way Prometheus expects (`+Inf` for infinity).
fn format_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_series_name(out: &mut String, name: &str, labels: &LabelSet, extra: Option<(&str, &str)>) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(out, v);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(out, v);
            out.push('"');
        }
        out.push('}');
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let key = sorted_labels(labels);
        let mut inner = self.lock();
        let family = inner.families.entry(name.to_string()).or_default();
        if let Some(existing) = family.get(&key) {
            return existing.clone();
        }
        let handle = make();
        if let Some((_, sibling)) = family.iter().next() {
            assert_eq!(
                sibling.kind(),
                handle.kind(),
                "metric family {name} registered with conflicting kinds"
            );
        }
        family.insert(key, handle.clone());
        handle
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, || Handle::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Handle::Counter(c) => c,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, || Handle::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Handle::Gauge(g) => g,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name{labels}` with the default
    /// [`DURATION_BUCKETS`] boundaries.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, DURATION_BUCKETS)
    }

    /// Get or create a histogram with explicit bucket boundaries
    /// (must be strictly increasing and finite).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be strictly increasing and finite"
        );
        match self.register(name, labels, || {
            Handle::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            })))
        }) {
            Handle::Histogram(h) => h,
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Render the whole registry in Prometheus text-exposition format.
    /// Deterministic: families sorted by name, series by label set.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(1024);
        for (name, family) in &inner.families {
            let kind = match family.values().next() {
                Some(handle) => handle.kind(),
                None => continue,
            };
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            for (labels, handle) in family {
                match handle {
                    Handle::Counter(c) => {
                        write_series_name(&mut out, name, labels, None);
                        out.push(' ');
                        out.push_str(&c.get().to_string());
                        out.push('\n');
                    }
                    Handle::Gauge(g) => {
                        write_series_name(&mut out, name, labels, None);
                        out.push(' ');
                        out.push_str(&g.get().to_string());
                        out.push('\n');
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        for (i, bound) in snap.bounds.iter().enumerate() {
                            let bucket = format!("{name}_bucket");
                            write_series_name(
                                &mut out,
                                &bucket,
                                labels,
                                Some(("le", &format_f64(*bound))),
                            );
                            out.push(' ');
                            out.push_str(&snap.cumulative[i].to_string());
                            out.push('\n');
                        }
                        let bucket = format!("{name}_bucket");
                        write_series_name(&mut out, &bucket, labels, Some(("le", "+Inf")));
                        out.push(' ');
                        out.push_str(&snap.count.to_string());
                        out.push('\n');
                        write_series_name(&mut out, &format!("{name}_sum"), labels, None);
                        out.push(' ');
                        out.push_str(&format_f64(snap.sum));
                        out.push('\n');
                        write_series_name(&mut out, &format!("{name}_count"), labels, None);
                        out.push(' ');
                        out.push_str(&snap.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Render the registry as one JSON object:
    /// `{"counters":{"name{k=\"v\"}":n,...},"gauges":{...},`
    /// `"histograms":{"name{...}":{"sum":s,"count":n,"buckets":[[le,cum],...]}}}`.
    pub fn render_json(&self) -> String {
        use crate::log::json_escape_into;
        let inner = self.lock();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, family) in &inner.families {
            for (labels, handle) in family {
                let mut series = String::new();
                write_series_name(&mut series, name, labels, None);
                let (buf, value) = match handle {
                    Handle::Counter(c) => (&mut counters, c.get().to_string()),
                    Handle::Gauge(g) => (&mut gauges, g.get().to_string()),
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut v = format!(
                            "{{\"sum\":{},\"count\":{},\"buckets\":[",
                            if snap.sum.is_finite() { snap.sum } else { 0.0 },
                            snap.count
                        );
                        for (i, bound) in snap.bounds.iter().enumerate() {
                            if i > 0 {
                                v.push(',');
                            }
                            v.push_str(&format!("[{},{}]", bound, snap.cumulative[i]));
                        }
                        v.push_str("]}");
                        (&mut histograms, v)
                    }
                };
                if !buf.is_empty() {
                    buf.push(',');
                }
                buf.push('"');
                json_escape_into(buf, &series);
                buf.push_str("\":");
                buf.push_str(&value);
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_render_sorted_and_deduped() {
        let reg = Registry::new();
        let a = reg.counter("jobs_total", &[("outcome", "ok")]);
        let b = reg.counter("jobs_total", &[("outcome", "failed")]);
        let a2 = reg.counter("jobs_total", &[("outcome", "ok")]);
        a.add(3);
        a2.inc();
        b.inc();
        let g = reg.gauge("depth", &[]);
        g.set(7);
        let text = reg.render();
        let expected = "# TYPE depth gauge\n\
                        depth 7\n\
                        # TYPE jobs_total counter\n\
                        jobs_total{outcome=\"failed\"} 1\n\
                        jobs_total{outcome=\"ok\"} 4\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_adds_up() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat", &[], &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative, vec![1, 3, 4, 5]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 56.05).abs() < 1e-9, "{}", snap.sum);
        let text = reg.render();
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5\n"), "{text}");
        assert!(text.contains("lat_count 5\n"), "{text}");
    }

    #[test]
    fn boundary_value_lands_in_its_bucket() {
        let reg = Registry::new();
        let h = reg.histogram_with("h", &[], &[1.0, 2.0]);
        h.observe(1.0); // le="1" is inclusive, Prometheus-style
        h.observe(2.0);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative, vec![1, 2, 2]);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("c", &[("path", "a\\b\"c\nd")]).inc();
        let text = reg.render();
        assert!(text.contains("c{path=\"a\\\\b\\\"c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn label_order_is_normalized() {
        let reg = Registry::new();
        let a = reg.counter("c", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("c", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series regardless of label order");
        assert!(reg.render().contains("c{a=\"1\",b=\"2\"} 2\n"));
    }

    #[test]
    fn render_json_carries_all_kinds() {
        let reg = Registry::new();
        reg.counter("c", &[]).add(2);
        reg.gauge("g", &[("x", "y")]).set(9);
        reg.histogram_with("h", &[], &[1.0]).observe(0.5);
        let json = reg.render_json();
        assert!(json.contains("\"counters\":{\"c\":2}"), "{json}");
        assert!(json.contains("\"g{x=\\\"y\\\"}\":9"), "{json}");
        assert!(json.contains("\"h\":{\"sum\":0.5,\"count\":1,\"buckets\":[[1,1]]}"), "{json}");
    }

    /// Map arbitrary bytes to a label value exercising the escapes.
    fn label_value(bytes: &[u8]) -> String {
        bytes
            .iter()
            .map(|&b| match b % 7 {
                0 => '\\',
                1 => '"',
                2 => '\n',
                3 => 'a',
                4 => 'Z',
                5 => '7',
                _ => ' ',
            })
            .collect()
    }

    /// Undo Prometheus label-value escaping.
    fn unescape(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => out.push('\\'),
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Label escaping round-trips: the rendered series line contains
        // no raw newline inside the quoted value, and unescaping
        // recovers the original value byte-for-byte.
        #[test]
        fn prop_label_escaping_round_trips(bytes in prop::collection::vec(0u8..255, 0..24)) {
            let value = label_value(&bytes);
            let reg = Registry::new();
            reg.counter("m", &[("l", value.as_str())]).inc();
            let text = reg.render();
            let line = text.lines().find(|l| l.starts_with("m{")).unwrap();
            prop_assert!(line.ends_with("} 1"), "{line}");
            let inner = &line["m{l=\"".len()..line.len() - "\"} 1".len()];
            prop_assert!(!inner.contains('\n'));
            prop_assert_eq!(unescape(inner), value);
        }

        // Histogram invariants: cumulative bucket counts are
        // monotonically non-decreasing, the +Inf bucket equals _count,
        // and _sum equals the sum of observations.
        #[test]
        fn prop_histogram_buckets_monotone_and_consistent(
            obs in prop::collection::vec(0.0f64..100.0, 1..64),
        ) {
            let reg = Registry::new();
            let h = reg.histogram_with("h", &[], &[0.5, 1.0, 5.0, 25.0, 80.0]);
            let mut expect_sum = 0.0;
            for &v in &obs {
                h.observe(v);
                expect_sum += v;
            }
            let snap = h.snapshot();
            prop_assert!(snap.cumulative.windows(2).all(|w| w[0] <= w[1]), "{:?}", snap);
            prop_assert_eq!(*snap.cumulative.last().unwrap(), obs.len() as u64);
            prop_assert_eq!(snap.count, obs.len() as u64);
            prop_assert!((snap.sum - expect_sum).abs() < 1e-6 * (1.0 + expect_sum.abs()));

            // And the rendered text agrees with the snapshot.
            let text = reg.render();
            let inf_line = format!("h_bucket{{le=\"+Inf\"}} {}", obs.len());
            let count_line = format!("h_count {}", obs.len());
            prop_assert!(text.contains(&inf_line), "{text}");
            prop_assert!(text.contains(&count_line), "{text}");
        }

        // Rendering is deterministic: two registries fed the same
        // operations produce identical text.
        #[test]
        fn prop_render_is_deterministic(
            ops in prop::collection::vec((0u8..3, 0u8..4, 0u64..1000), 0..32),
        ) {
            let build = || {
                let reg = Registry::new();
                for &(kind, series, value) in &ops {
                    let label = series.to_string();
                    let labels = [("s", label.as_str())];
                    match kind {
                        0 => reg.counter("c", &labels).add(value),
                        1 => reg.gauge("g", &labels).set(value),
                        _ => reg.histogram("h", &labels).observe(value as f64 / 100.0),
                    }
                }
                reg.render()
            };
            prop_assert_eq!(build(), build());
        }
    }
}

//! Completed-request spans and the bounded ring that retains them.
//!
//! A [`Span`] is the *record* of one finished request as one tier saw
//! it: the distributed trace id, which tier produced the span, the
//! request identity (tenant, model, seed), the outcome, and a list of
//! named stage durations. The serve tier records one span per completed
//! `GEN`/`SUB` (stages from [`StageDurations`]); the router records one
//! relay span per routed request (dial / queue / relay phases) under
//! the **same trace id** — joining the two by id reconstructs the
//! cross-node timeline of a routed request.
//!
//! Trace ids are minted by the first tier that sees a request
//! ([`mint_trace_id`]): a per-process random nonce plus a counter,
//! formatted in an alphabet that is valid as a wire `trace=` token
//! (`[0-9a-f-]`, well under the 64-byte tag cap). Ids are unique per
//! process and collision-resistant across a fleet; they carry no
//! ordering or timing semantics.
//!
//! The [`SpanRecorder`] is a cheap-to-clone handle on a bounded ring of
//! completed spans (like [`Logger`](crate::Logger)'s event ring):
//! recording is a mutex push, the cap evicts oldest-first, and
//! [`SpanRecorder::to_json`] renders the most recent spans as a
//! deterministic JSON array for the HTTP `/traces` endpoint.

use crate::log::json_escape_into;
use crate::trace::StageDurations;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default span-ring capacity (spans retained per process).
pub const DEFAULT_SPAN_RING: usize = 256;

/// Stage-name ordering used when converting [`StageDurations`] into a
/// span's named stage list (only marked stages appear).
const STAGE_ORDER: [&str; 6] =
    ["queue_wait", "first_snapshot", "generation", "delivery", "encode_wait", "total"];

static TRACE_NONCE: OnceLock<u64> = OnceLock::new();
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Mint a process-unique trace id: `<nonce:016x>-<counter:x>`. The
/// nonce is derived once per process from the wall clock and the pid,
/// so two nodes minting concurrently do not collide; the counter makes
/// ids unique within the process. The result uses only `[0-9a-f-]`,
/// which is a subset of the wire tag alphabet, and is at most 33 bytes
/// — always a valid `trace=` token.
pub fn mint_trace_id() -> String {
    let nonce = *TRACE_NONCE.get_or_init(|| {
        let ns =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        // Mix the pid into the high bits so processes started within
        // the same clock tick still diverge.
        ns ^ (u64::from(std::process::id()).rotate_left(32)) | 1
    });
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{nonce:016x}-{n:x}")
}

/// One completed request as one tier saw it. See the module docs.
#[derive(Debug, Clone)]
pub struct Span {
    /// The distributed trace id joining this span with its peers.
    pub trace: String,
    /// Which tier recorded the span: `"serve"` or `"route"`.
    pub tier: &'static str,
    /// The upstream hop that minted the trace id, when it was not this
    /// tier (`Some("route")` on a backend serving a routed request;
    /// `None` on the tier that minted the id itself).
    pub parent: Option<&'static str>,
    /// Tenant the request ran as, when known.
    pub tenant: Option<String>,
    /// Model name of the request.
    pub model: String,
    /// Model fingerprint, when the tier knows it.
    pub model_fp: Option<u64>,
    /// Request seed.
    pub seed: u64,
    /// Terminal outcome: `"ok"`, `"cancelled"`, `"error"`, …
    pub outcome: &'static str,
    /// The backend address the request was placed on (router spans).
    pub backend: Option<String>,
    /// Named stage durations in milliseconds, in recording order.
    pub stages_ms: Vec<(&'static str, f64)>,
}

impl Span {
    /// Convert serve-tier [`StageDurations`] into the span's named
    /// stage list. Unmarked stages are omitted (a cache hit has no
    /// `first_snapshot`), and ordering is fixed so the JSON export is
    /// deterministic for a given set of marked stages.
    pub fn stages_from(durations: &StageDurations) -> Vec<(&'static str, f64)> {
        let values = [
            durations.queue_wait,
            durations.first_snapshot,
            durations.generation,
            durations.delivery,
            durations.encode_wait,
            durations.total,
        ];
        STAGE_ORDER
            .iter()
            .zip(values)
            .filter_map(|(name, d)| d.map(|d| (*name, d.as_secs_f64() * 1e3)))
            .collect()
    }

    /// Render the span as one JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"trace\":\"");
        json_escape_into(&mut out, &self.trace);
        out.push_str("\",\"tier\":\"");
        json_escape_into(&mut out, self.tier);
        out.push_str("\",\"parent\":");
        match self.parent {
            Some(parent) => {
                out.push('"');
                json_escape_into(&mut out, parent);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"tenant\":");
        match &self.tenant {
            Some(tenant) => {
                out.push('"');
                json_escape_into(&mut out, tenant);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"model\":\"");
        json_escape_into(&mut out, &self.model);
        out.push_str("\",\"model_fp\":");
        match self.model_fp {
            Some(fp) => {
                use std::fmt::Write as _;
                let _ = write!(out, "\"{fp:016x}\"");
            }
            None => out.push_str("null"),
        }
        {
            use std::fmt::Write as _;
            let _ = write!(out, ",\"seed\":{}", self.seed);
        }
        out.push_str(",\"outcome\":\"");
        json_escape_into(&mut out, self.outcome);
        out.push_str("\",\"backend\":");
        match &self.backend {
            Some(addr) => {
                out.push('"');
                json_escape_into(&mut out, addr);
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"stages_ms\":{");
        for (i, (name, ms)) in self.stages_ms.iter().enumerate() {
            use std::fmt::Write as _;
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(&mut out, name);
            let _ = write!(out, "\":{ms:.3}");
        }
        out.push_str("}}");
        out
    }
}

struct RecorderInner {
    ring: Mutex<VecDeque<Span>>,
    cap: usize,
}

/// Bounded ring of completed [`Span`]s — cheap to clone (an `Arc`),
/// safe to record into from any thread.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::with_capacity(DEFAULT_SPAN_RING)
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("len", &self.len())
            .field("cap", &self.inner.cap)
            .finish()
    }
}

impl SpanRecorder {
    /// A recorder retaining the most recent `cap` spans (min 1).
    pub fn with_capacity(cap: usize) -> SpanRecorder {
        SpanRecorder {
            inner: Arc::new(RecorderInner { ring: Mutex::new(VecDeque::new()), cap: cap.max(1) }),
        }
    }

    /// Record one completed span; the oldest is evicted at capacity.
    pub fn record(&self, span: Span) {
        let mut ring = self.inner.ring.lock().expect("span ring poisoned");
        if ring.len() == self.inner.cap {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The most recent `limit` spans, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<Span> {
        let ring = self.inner.ring.lock().expect("span ring poisoned");
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().expect("span ring poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the most recent `limit` spans as a JSON array (oldest
    /// first, one deterministic object per span).
    pub fn to_json(&self, limit: usize) -> String {
        let spans = self.recent(limit);
        let mut out = String::with_capacity(2 + spans.len() * 192);
        out.push('[');
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(trace: &str, seed: u64) -> Span {
        Span {
            trace: trace.to_string(),
            tier: "serve",
            parent: None,
            tenant: None,
            model: "m".to_string(),
            model_fp: None,
            seed,
            outcome: "ok",
            backend: None,
            stages_ms: Vec::new(),
        }
    }

    #[test]
    fn minted_ids_are_unique_and_wire_safe() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert!(id.len() <= 64, "{id}");
            assert!(
                id.bytes().all(|b| b.is_ascii_hexdigit() || b == b'-'),
                "{id} must fit the wire tag alphabet"
            );
        }
    }

    #[test]
    fn ring_is_bounded_and_recent_is_oldest_first() {
        let rec = SpanRecorder::with_capacity(3);
        for seed in 0..5 {
            rec.record(span("t", seed));
        }
        assert_eq!(rec.len(), 3);
        let seeds: Vec<u64> = rec.recent(10).iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![2, 3, 4]);
        let seeds: Vec<u64> = rec.recent(2).iter().map(|s| s.seed).collect();
        assert_eq!(seeds, vec![3, 4], "limit keeps the most recent");
    }

    #[test]
    fn json_export_is_deterministic_and_escaped() {
        let rec = SpanRecorder::default();
        let mut s = span("abc-1", 7);
        s.tenant = Some("go\"ld".to_string());
        s.model_fp = Some(0x1234);
        s.backend = Some("127.0.0.1:7001".to_string());
        s.stages_ms = vec![("queue_wait", 1.5), ("generation", 2.0)];
        rec.record(s);
        let json = rec.to_json(10);
        assert_eq!(
            json,
            "[{\"trace\":\"abc-1\",\"tier\":\"serve\",\"parent\":null,\
             \"tenant\":\"go\\\"ld\",\"model\":\"m\",\"model_fp\":\"0000000000001234\",\
             \"seed\":7,\"outcome\":\"ok\",\"backend\":\"127.0.0.1:7001\",\
             \"stages_ms\":{\"queue_wait\":1.500,\"generation\":2.000}}]"
        );
        assert_eq!(SpanRecorder::default().to_json(10), "[]");
    }

    #[test]
    fn stage_conversion_omits_unmarked_stages() {
        let durations = StageDurations {
            queue_wait: Some(Duration::from_millis(2)),
            generation: Some(Duration::from_micros(1500)),
            ..Default::default()
        };
        let stages = Span::stages_from(&durations);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "queue_wait");
        assert!((stages[0].1 - 2.0).abs() < 1e-9);
        assert_eq!(stages[1].0, "generation");
        assert!((stages[1].1 - 1.5).abs() < 1e-9);
    }
}

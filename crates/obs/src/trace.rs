//! Per-job stage tracing.
//!
//! A [`JobTrace`] is a tiny `Arc` of atomic stage timestamps, cheap to
//! clone into every layer that touches a job. Each stage is marked at
//! most semantically once (first-write-wins, except the last-snapshot
//! mark which tracks the most recent snapshot), using a monotonic clock
//! anchored at trace creation. [`JobTrace::durations`] derives the
//! stage durations the serve stack reports:
//!
//! - `queue_wait`: submitted → dequeued by a worker
//! - `first_snapshot`: dequeued → first snapshot written to the sink
//! - `generation`: dequeued → last snapshot written to the sink
//! - `delivery`: last snapshot → result delivered to the ticket
//! - `total`: submitted → delivered
//!
//! One stage is *cumulative* rather than a span between two marks:
//! `encode_wait` sums the time the decode thread spent blocked handing
//! snapshots to the pipelined encode/stream helper ([`JobTrace::
//! add_encode_wait`]). Near zero means the job was decode-bound (the
//! pipeline hid the encode cost entirely); values approaching
//! `generation` mean the sink was the bottleneck. It is the per-job
//! parallel-efficiency signal of the intra-job pipeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stage timestamps are stored as nanoseconds-since-base **plus one**,
/// so `0` unambiguously means "not marked yet".
struct Inner {
    base: Instant,
    submitted: AtomicU64,
    dequeued: AtomicU64,
    first_snapshot: AtomicU64,
    last_snapshot: AtomicU64,
    delivered: AtomicU64,
    /// Cumulative nanoseconds (no +1 encoding; 0 simply means "none").
    encode_wait: AtomicU64,
}

/// Monotonic stage timestamps for one job. See the module docs.
#[derive(Clone)]
pub struct JobTrace {
    inner: Arc<Inner>,
}

impl Default for JobTrace {
    fn default() -> Self {
        JobTrace::new()
    }
}

impl std::fmt::Debug for JobTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTrace").field("durations", &self.durations()).finish()
    }
}

fn now_ns(base: Instant) -> u64 {
    Instant::now().duration_since(base).as_nanos() as u64
}

fn mark_once(slot: &AtomicU64, base: Instant) {
    let _ = slot.compare_exchange(0, now_ns(base) + 1, Ordering::Relaxed, Ordering::Relaxed);
}

fn read(slot: &AtomicU64) -> Option<u64> {
    match slot.load(Ordering::Relaxed) {
        0 => None,
        v => Some(v - 1),
    }
}

impl JobTrace {
    /// A fresh trace with no stages marked; the clock starts now.
    pub fn new() -> JobTrace {
        JobTrace {
            inner: Arc::new(Inner {
                base: Instant::now(),
                submitted: AtomicU64::new(0),
                dequeued: AtomicU64::new(0),
                first_snapshot: AtomicU64::new(0),
                last_snapshot: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                encode_wait: AtomicU64::new(0),
            }),
        }
    }

    /// The job was accepted into the queue.
    pub fn mark_submitted(&self) {
        mark_once(&self.inner.submitted, self.inner.base);
    }

    /// A worker popped the job off the queue.
    pub fn mark_dequeued(&self) {
        mark_once(&self.inner.dequeued, self.inner.base);
    }

    /// One snapshot was written to the job's sink: records the first
    /// occurrence for `first_snapshot` and keeps updating
    /// `last_snapshot`.
    pub fn mark_snapshot(&self) {
        let ns = now_ns(self.inner.base) + 1;
        let _ =
            self.inner.first_snapshot.compare_exchange(0, ns, Ordering::Relaxed, Ordering::Relaxed);
        self.inner.last_snapshot.store(ns, Ordering::Relaxed);
    }

    /// The finished result was handed to the reply channel.
    pub fn mark_delivered(&self) {
        mark_once(&self.inner.delivered, self.inner.base);
    }

    /// Accumulate time the decode thread spent blocked on the pipelined
    /// encode helper (may be called many times per job; sums).
    pub fn add_encode_wait(&self, wait: Duration) {
        self.inner.encode_wait.fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Derive stage durations from whatever stages have been marked.
    /// A duration is `None` until both of its endpoints exist; clock
    /// retrograde (impossible with `Instant`, but cheap to guard)
    /// saturates to zero.
    pub fn durations(&self) -> StageDurations {
        let sub = read(&self.inner.submitted);
        let deq = read(&self.inner.dequeued);
        let first = read(&self.inner.first_snapshot);
        let last = read(&self.inner.last_snapshot);
        let done = read(&self.inner.delivered);
        let span = |a: Option<u64>, b: Option<u64>| -> Option<Duration> {
            Some(Duration::from_nanos(b?.saturating_sub(a?)))
        };
        StageDurations {
            queue_wait: span(sub, deq),
            first_snapshot: span(deq, first),
            generation: span(deq, last),
            delivery: span(last, done),
            total: span(sub, done),
            encode_wait: match self.inner.encode_wait.load(Ordering::Relaxed) {
                0 => None,
                ns => Some(Duration::from_nanos(ns)),
            },
        }
    }
}

/// Derived per-stage durations of one job. All fields are `None` until
/// both endpoints of the stage have been marked (e.g. a cache hit that
/// replays zero snapshots never gets `first_snapshot`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageDurations {
    pub queue_wait: Option<Duration>,
    pub first_snapshot: Option<Duration>,
    pub generation: Option<Duration>,
    pub delivery: Option<Duration>,
    pub total: Option<Duration>,
    /// Cumulative decode-thread stall waiting on the pipelined encode
    /// helper (`None` when the job never pipelined or never stalled).
    pub encode_wait: Option<Duration>,
}

impl StageDurations {
    /// Queue wait in whole milliseconds, if known.
    pub fn queue_wait_ms(&self) -> Option<u64> {
        self.queue_wait.map(|d| d.as_millis() as u64)
    }

    /// Generation (dequeue → last snapshot) in whole milliseconds.
    pub fn generation_ms(&self) -> Option<u64> {
        self.generation.map(|d| d.as_millis() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmarked_stages_stay_none() {
        let trace = JobTrace::new();
        assert_eq!(trace.durations(), StageDurations::default());
        trace.mark_submitted();
        let d = trace.durations();
        assert!(d.queue_wait.is_none() && d.total.is_none());
    }

    #[test]
    fn full_lifecycle_orders_durations() {
        let trace = JobTrace::new();
        trace.mark_submitted();
        std::thread::sleep(Duration::from_millis(2));
        trace.mark_dequeued();
        trace.mark_snapshot();
        std::thread::sleep(Duration::from_millis(2));
        trace.mark_snapshot();
        trace.mark_delivered();
        let d = trace.durations();
        assert!(d.queue_wait.unwrap() >= Duration::from_millis(2));
        assert!(d.first_snapshot.unwrap() <= d.generation.unwrap());
        assert!(d.total.unwrap() >= d.queue_wait.unwrap() + d.generation.unwrap());
        assert!(d.delivery.is_some());
    }

    #[test]
    fn marks_are_first_write_wins() {
        let trace = JobTrace::new();
        trace.mark_submitted();
        let before = trace.durations();
        std::thread::sleep(Duration::from_millis(2));
        trace.mark_submitted(); // ignored
        trace.mark_dequeued();
        trace.mark_delivered();
        let after = trace.durations();
        assert!(after.queue_wait.unwrap() >= Duration::from_millis(2), "{before:?} {after:?}");
    }

    #[test]
    fn encode_wait_accumulates() {
        let trace = JobTrace::new();
        assert!(trace.durations().encode_wait.is_none());
        trace.add_encode_wait(Duration::from_millis(3));
        trace.add_encode_wait(Duration::from_millis(4));
        assert_eq!(trace.durations().encode_wait, Some(Duration::from_millis(7)));
    }

    #[test]
    fn clones_share_state() {
        let trace = JobTrace::new();
        let clone = trace.clone();
        clone.mark_submitted();
        clone.mark_dequeued();
        assert!(trace.durations().queue_wait.is_some());
    }
}

//! Backend pool for the router tier ([`Router`](crate::Router)):
//! addresses, health, and consistent placement.
//!
//! Placement uses **rendezvous (highest-random-weight) hashing**: every
//! request key scores each backend with a mixed hash of `(key, slot)`
//! and picks the highest score. Two properties make it the right fit
//! here:
//!
//! * **Cache locality** — identical keys always land on the same
//!   backend, so a repeated `(model fingerprint, seed-range)` hits that
//!   node's `SnapshotCache` instead of re-generating elsewhere.
//! * **Minimal disruption** — when a backend dies, only the keys that
//!   scored it highest move (each to its second-choice node); every
//!   other key keeps its placement, so a single failure does not
//!   invalidate the whole fleet's caches. When the backend returns, the
//!   same keys move back.
//!
//! The request key itself is `(model fingerprint, seed / seed_range)`:
//! seeds are bucketed into ranges so a tenant sweeping consecutive
//! seeds fans out across the fleet at `seed_range` granularity while
//! still batching neighbouring seeds (which share generation shape and
//! scheduler affinity) on one node.
//!
//! Health is advisory and demand-driven: a dial failure or mid-stream
//! death marks the backend down (and drops its
//! `vrdag_route_backend_up` gauge); a later request whose first-choice
//! placement lands on a down backend re-probes it after a short
//! hold-down (`REPROBE_AFTER`) so a recovered node resumes taking its
//! shard —
//! there is no separate health-check thread to configure or drift.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vrdag_obs::{Gauge, Registry};

/// Down backends are left alone for this long before a request whose
/// first-choice placement is that backend attempts a recovery dial.
pub(crate) const REPROBE_AFTER: Duration = Duration::from_secs(2);

/// `splitmix64` finalizer — a full-avalanche 64-bit mixer (the same
/// construction the generator uses for seed streams), so placement
/// quality never depends on the raw key distribution.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, for keying models the router has no
/// fingerprint for (backend unreachable at startup).
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One backend `vrdag-serve` node as the router sees it.
pub struct BackendMeta {
    slot: usize,
    addr: SocketAddr,
    up: AtomicBool,
    /// Dial failures since the last successful connect (diagnostic).
    dial_failures: AtomicU64,
    /// When the last recovery dial of a *down* backend was attempted.
    last_reprobe: Mutex<Option<Instant>>,
    up_gauge: Gauge,
}

impl BackendMeta {
    /// Pool index of this backend.
    pub fn slot(&self) -> usize {
        self.slot
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    pub(crate) fn mark_up(&self) {
        self.up.store(true, Ordering::SeqCst);
        self.up_gauge.set(1);
    }

    pub(crate) fn mark_down(&self) {
        self.up.store(false, Ordering::SeqCst);
        self.up_gauge.set(0);
    }

    pub(crate) fn note_dial_failure(&self) {
        self.dial_failures.fetch_add(1, Ordering::SeqCst);
    }

    pub fn dial_failures(&self) -> u64 {
        self.dial_failures.load(Ordering::SeqCst)
    }

    /// Should a request whose placement prefers this (down) backend
    /// spend a dial on probing it? At most once per [`REPROBE_AFTER`]
    /// across all sessions, so a dead node costs the fleet one
    /// connect-timeout per window, not one per request.
    pub(crate) fn take_reprobe_slot(&self) -> bool {
        let mut last = self.last_reprobe.lock().expect("reprobe clock poisoned");
        match *last {
            Some(at) if at.elapsed() < REPROBE_AFTER => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }
}

/// The router's set of backends plus the placement function.
pub struct BackendPool {
    backends: Vec<Arc<BackendMeta>>,
    /// Seed-bucket width of the placement key (`seed / seed_range`).
    seed_range: u64,
}

impl BackendPool {
    /// Build the pool. Every backend starts *up* (optimistic: the first
    /// failed dial corrects it) with its `vrdag_route_backend_up` gauge
    /// published immediately, so a scrape of a fresh router already
    /// lists the fleet.
    pub fn new(addrs: Vec<SocketAddr>, seed_range: u64, metrics: &Registry) -> BackendPool {
        let backends = addrs
            .into_iter()
            .enumerate()
            .map(|(slot, addr)| {
                let up_gauge =
                    metrics.gauge("vrdag_route_backend_up", &[("backend", &addr.to_string())]);
                up_gauge.set(1);
                Arc::new(BackendMeta {
                    slot,
                    addr,
                    up: AtomicBool::new(true),
                    dial_failures: AtomicU64::new(0),
                    last_reprobe: Mutex::new(None),
                    up_gauge,
                })
            })
            .collect();
        BackendPool { backends, seed_range: seed_range.max(1) }
    }

    pub fn len(&self) -> usize {
        self.backends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    pub fn get(&self, slot: usize) -> &Arc<BackendMeta> {
        &self.backends[slot]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<BackendMeta>> {
        self.backends.iter()
    }

    pub fn up_count(&self) -> usize {
        self.backends.iter().filter(|b| b.is_up()).count()
    }

    /// The placement key of one request: model identity (fingerprint
    /// when known, name hash otherwise) combined with the seed bucket.
    pub fn request_key(&self, model_key: u64, seed: u64) -> u64 {
        mix64(model_key ^ mix64(seed / self.seed_range))
    }

    /// Rendezvous placement over **all** slots — where the key lives
    /// when the whole fleet is healthy (the cache-locality home).
    pub fn place(&self, key: u64) -> Option<usize> {
        Self::rendezvous(key, self.backends.iter().map(|b| b.slot))
    }

    /// Rendezvous placement over the currently-up slots, optionally
    /// excluding one (the backend that just failed mid-request).
    pub fn place_healthy(&self, key: u64, exclude: Option<usize>) -> Option<usize> {
        Self::rendezvous(
            key,
            self.backends.iter().filter(|b| b.is_up() && Some(b.slot) != exclude).map(|b| b.slot),
        )
    }

    fn rendezvous(key: u64, slots: impl Iterator<Item = usize>) -> Option<usize> {
        slots.max_by_key(|&slot| mix64(key ^ mix64(slot as u64 ^ 0x5bf0_3635)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> BackendPool {
        let addrs = (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap()).collect();
        BackendPool::new(addrs, 16, &Registry::default())
    }

    #[test]
    fn placement_is_deterministic_and_spreads() {
        let pool = pool(4);
        let mut used = [0usize; 4];
        for model in 0..8u64 {
            for seed in 0..64u64 {
                let key = pool.request_key(mix64(model), seed);
                let a = pool.place(key).unwrap();
                let b = pool.place(key).unwrap();
                assert_eq!(a, b, "placement must be stable");
                used[a] += 1;
            }
        }
        // 512 keys over 4 backends: every backend takes a real share.
        for (slot, count) in used.iter().enumerate() {
            assert!(*count > 32, "slot {slot} only took {count} of 512 keys");
        }
    }

    #[test]
    fn seeds_in_one_range_share_a_backend() {
        let pool = pool(4);
        let home = pool.place(pool.request_key(7, 0)).unwrap();
        for seed in 0..16u64 {
            assert_eq!(pool.place(pool.request_key(7, seed)), Some(home));
        }
    }

    #[test]
    fn losing_a_backend_only_moves_its_keys() {
        let pool = pool(4);
        let keys: Vec<u64> = (0..512u64).map(|i| pool.request_key(mix64(i), i)).collect();
        let before: Vec<usize> = keys.iter().map(|&k| pool.place(k).unwrap()).collect();
        let dead = before[0];
        pool.get(dead).mark_down();
        for (key, &home) in keys.iter().zip(&before) {
            let now = pool.place_healthy(*key, None).unwrap();
            if home != dead {
                // Rendezvous guarantee: keys not on the dead node stay put.
                assert_eq!(now, home, "key moved off a healthy backend");
            } else {
                assert_ne!(now, dead);
            }
        }
        // Recovery moves exactly those keys back.
        pool.get(dead).mark_up();
        let after: Vec<usize> =
            keys.iter().map(|&k| pool.place_healthy(k, None).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn reprobe_slot_is_rate_limited() {
        let pool = pool(1);
        let b = pool.get(0);
        b.mark_down();
        assert!(b.take_reprobe_slot());
        assert!(!b.take_reprobe_slot(), "second probe inside the window must be refused");
    }
}

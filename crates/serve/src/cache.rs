//! Bounded, thread-safe LRU cache over generated snapshot sequences.
//!
//! The generator is seed-addressed and deterministic: a
//! `(model, t_len, seed)` triple always yields the same sequence (the
//! contract `tests/cache_determinism.rs` locks down). That makes whole
//! sequences perfectly cacheable — a [`SnapshotCache`] entry is the
//! `Arc<DynamicGraph>` a cold generation produced, keyed by
//! [`CacheKey`], and a hit is bit-identical to regenerating.
//!
//! The model component of the key is the **artifact fingerprint**
//! (`vrdag::artifact_fingerprint` over the serialized bytes), not the
//! registry name: re-registering identical bytes under another name (or
//! in another registry) still hits, while any retrain misses.
//!
//! Bounded by a [`CacheBudget`] — max entries *and* max bytes. Byte
//! accounting charges `DynamicGraph::approx_bytes_reserved`, the lifetime
//! upper bound that pre-accounts each snapshot's lazily-built undirected
//! projection: metrics code touching a *cached* graph can materialize
//! those projections after admission, and charging the reserve keeps the
//! budget honest instead of drifting over it. Eviction is
//! least-recently-used; every `get` hit refreshes recency. Counters
//! ([`CacheStats`]) feed `BatchReport` and the service `stats()` snapshot.

use crate::tenant::TenantId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::sync::Mutex;
use vrdag_graph::DynamicGraph;

/// Identity of a cached generation: which artifact, how many snapshots,
/// which seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `vrdag::artifact_fingerprint` of the serialized model artifact.
    pub model_fingerprint: u64,
    /// Serialized artifact length in bytes — a second, free
    /// discriminator so two artifacts must collide in *both* hash and
    /// size before the cache could ever conflate them (the fingerprint
    /// alone is a probabilistic 64-bit content hash).
    pub model_size: usize,
    /// Number of snapshots generated.
    pub t_len: usize,
    /// RNG seed of the request.
    pub seed: u64,
}

/// Capacity limits of a [`SnapshotCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum number of cached sequences; `0` disables the cache.
    pub max_entries: usize,
    /// Maximum total `approx_bytes_reserved` across cached sequences. A
    /// single sequence larger than this is never admitted.
    pub max_bytes: usize,
}

impl Default for CacheBudget {
    fn default() -> Self {
        CacheBudget { max_entries: 64, max_bytes: 256 << 20 }
    }
}

impl CacheBudget {
    /// Budget of `max_entries` sequences with the default byte cap.
    pub fn entries(max_entries: usize) -> Self {
        CacheBudget { max_entries, ..CacheBudget::default() }
    }

    /// A budget that admits nothing (every request is a miss).
    pub fn disabled() -> Self {
        CacheBudget { max_entries: 0, max_bytes: 0 }
    }

    /// True when the budget can admit at least one entry.
    pub fn is_enabled(&self) -> bool {
        self.max_entries > 0 && self.max_bytes > 0
    }
}

/// Point-in-time counters of a [`SnapshotCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that returned a cached sequence.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Sequences admitted by `insert`.
    pub insertions: u64,
    /// Sequences evicted to satisfy the budget.
    pub evictions: u64,
    /// Total bytes (reserved accounting) freed by those evictions —
    /// replacement removals don't count, only budget pressure does.
    pub evicted_bytes: u64,
    /// Sequences currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident (reserved accounting, an
    /// upper bound on the actual resident size).
    pub bytes: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    graph: Arc<DynamicGraph>,
    bytes: usize,
    /// Tenant whose insertion this entry is charged against.
    owner: TenantId,
    /// Stamp of this entry's newest ticket in `recency`; older tickets
    /// for the same key are stale and skipped during eviction.
    stamp: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency tickets, oldest first. Touching a key pushes a new ticket
    /// instead of moving the old one (O(1)); stale tickets are discarded
    /// lazily during eviction and compaction.
    recency: VecDeque<(u64, CacheKey)>,
    /// Resident bytes charged to each tenant (see
    /// [`SnapshotCache::insert_charged`]); entries are removed when a
    /// tenant's residency drops to zero.
    by_owner: HashMap<TenantId, usize>,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl Inner {
    /// Remove `key` from the map, keeping the byte accounting (global
    /// and per-owner) consistent. The entry's recency tickets become
    /// stale and are discarded lazily.
    fn remove_entry(&mut self, key: &CacheKey) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        self.bytes -= entry.bytes;
        match self.by_owner.get_mut(&entry.owner) {
            Some(owned) if *owned > entry.bytes => *owned -= entry.bytes,
            _ => {
                self.by_owner.remove(&entry.owner);
            }
        }
        Some(entry)
    }
}

/// Bounded, thread-safe LRU over generated [`DynamicGraph`] sequences.
///
/// Cloneable and `Send + Sync`; clones share the same storage. All
/// operations take one short mutex-guarded critical section — the cached
/// sequences themselves are shared immutably behind `Arc`, so a hit never
/// copies graph data.
#[derive(Clone)]
pub struct SnapshotCache {
    inner: Arc<Mutex<Inner>>,
    budget: CacheBudget,
}

impl SnapshotCache {
    /// An empty cache bounded by `budget`.
    pub fn new(budget: CacheBudget) -> Self {
        SnapshotCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                recency: VecDeque::new(),
                by_owner: HashMap::new(),
                clock: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                evicted_bytes: 0,
            })),
            budget,
        }
    }

    /// The budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// True when the budget can admit at least one entry.
    pub fn is_enabled(&self) -> bool {
        self.budget.is_enabled()
    }

    /// True when `key` is currently resident. Unlike [`get`](Self::get)
    /// this touches neither the hit/miss counters nor the entry's
    /// recency — it is a scheduling peek (the job queue uses it to
    /// decide whether a duplicate of an in-flight request still needs to
    /// be held back), not a lookup.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().expect("cache lock poisoned").map.contains_key(key)
    }

    /// Look up a sequence, refreshing its recency on a hit. Counts a hit
    /// or miss either way.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<DynamicGraph>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let inner = &mut *inner;
        match inner.map.get_mut(key) {
            Some(entry) => {
                inner.clock += 1;
                entry.stamp = inner.clock;
                inner.recency.push_back((inner.clock, *key));
                inner.hits += 1;
                let graph = Arc::clone(&entry.graph);
                Self::maybe_compact(inner);
                Some(graph)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Admit a sequence with no tenant charge (anonymous owner, no
    /// share cap) — see [`insert_charged`](Self::insert_charged) for the
    /// semantics shared by both entry points.
    pub fn insert(&self, key: CacheKey, graph: Arc<DynamicGraph>) -> bool {
        self.insert_charged(key, graph, TenantId::anonymous(), None)
    }

    /// Admit a sequence on behalf of `owner`, evicting entries until the
    /// budgets hold. Returns `false` (and stores nothing) when the cache
    /// is disabled, the sequence alone exceeds the byte budget, or it
    /// alone exceeds `owner_cap`. Re-inserting an existing key replaces
    /// the entry (and re-charges the new owner) and refreshes recency.
    ///
    /// `owner_cap` is the owner's byte share: while the owner's resident
    /// bytes would exceed it, the owner's *own* least-recently-used
    /// entries are evicted first — so one tenant's burst can evict at
    /// most its own share, never the whole working set. The global
    /// entry/byte budget then applies as before (LRU across all
    /// tenants).
    pub fn insert_charged(
        &self,
        key: CacheKey,
        graph: Arc<DynamicGraph>,
        owner: TenantId,
        owner_cap: Option<usize>,
    ) -> bool {
        let bytes = graph.approx_bytes_reserved();
        if !self.budget.is_enabled() || bytes > self.budget.max_bytes {
            return false;
        }
        if owner_cap.is_some_and(|cap| bytes > cap) {
            return false;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        let inner = &mut *inner;
        inner.clock += 1;
        let stamp = inner.clock;
        // Replacement first, so the owner-share check below sees the
        // accounting without the key's previous incarnation.
        inner.remove_entry(&key);
        if let Some(cap) = owner_cap {
            // Evict the owner's own LRU entries until the share holds.
            // Walking the shared recency queue without popping keeps
            // other tenants' tickets intact; the removed entries'
            // tickets go stale and are discarded lazily.
            while inner.by_owner.get(&owner).copied().unwrap_or(0) + bytes > cap {
                let victim = inner
                    .recency
                    .iter()
                    .find(|(s, k)| {
                        inner.map.get(k).is_some_and(|e| e.stamp == *s && e.owner == owner)
                    })
                    .map(|&(_, k)| k);
                match victim {
                    Some(k) => {
                        let freed = inner.remove_entry(&k).map_or(0, |e| e.bytes);
                        inner.evictions += 1;
                        inner.evicted_bytes += freed as u64;
                    }
                    None => break,
                }
            }
        }
        inner.map.insert(key, Entry { graph, bytes, owner: owner.clone(), stamp });
        inner.bytes += bytes;
        *inner.by_owner.entry(owner).or_insert(0) += bytes;
        inner.recency.push_back((stamp, key));
        inner.insertions += 1;
        while inner.map.len() > self.budget.max_entries || inner.bytes > self.budget.max_bytes {
            let (old_stamp, old_key) =
                inner.recency.pop_front().expect("budget exceeded with empty recency queue");
            // Skip stale tickets (the key was touched or replaced since).
            let is_current = inner.map.get(&old_key).is_some_and(|e| e.stamp == old_stamp);
            if is_current {
                let freed = inner.remove_entry(&old_key).expect("checked above").bytes;
                inner.evictions += 1;
                inner.evicted_bytes += freed as u64;
            }
        }
        Self::maybe_compact(inner);
        true
    }

    /// Resident bytes currently charged to `owner`.
    pub fn owner_bytes(&self, owner: &TenantId) -> usize {
        self.inner.lock().expect("cache lock poisoned").by_owner.get(owner).copied().unwrap_or(0)
    }

    /// Drop every cached sequence (counters keep their totals).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.clear();
        inner.recency.clear();
        inner.by_owner.clear();
        inner.bytes = 0;
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            evicted_bytes: inner.evicted_bytes,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Keep the ticket queue proportional to the live entry count: when
    /// touches have piled up stale tickets, rebuild the queue from the
    /// live stamps.
    fn maybe_compact(inner: &mut Inner) {
        if inner.recency.len() > 8 * inner.map.len() + 16 {
            let mut live: Vec<(u64, CacheKey)> =
                inner.map.iter().map(|(k, e)| (e.stamp, *k)).collect();
            live.sort_unstable_by_key(|&(stamp, _)| stamp);
            inner.recency = live.into();
        }
    }
}

impl std::fmt::Debug for SnapshotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SnapshotCache")
            .field("budget", &self.budget)
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrdag_graph::Snapshot;
    use vrdag_tensor::Matrix;

    fn key(seed: u64) -> CacheKey {
        CacheKey { model_fingerprint: 7, model_size: 100, t_len: 2, seed }
    }

    fn tiny_graph(edge_count: usize) -> Arc<DynamicGraph> {
        let n = 8;
        let edges: Vec<(u32, u32)> = (0..edge_count as u32).map(|i| (i % n, (i + 1) % n)).collect();
        let s = Snapshot::new(n as usize, edges, Matrix::zeros(n as usize, 1));
        Arc::new(DynamicGraph::new(vec![s]))
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = SnapshotCache::new(CacheBudget::entries(4));
        let g = tiny_graph(3);
        assert!(cache.insert(key(1), Arc::clone(&g)));
        let hit = cache.get(&key(1)).expect("hit");
        assert!(Arc::ptr_eq(&hit, &g));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 1));
    }

    #[test]
    fn miss_on_any_key_component_change() {
        let cache = SnapshotCache::new(CacheBudget::entries(4));
        cache.insert(key(1), tiny_graph(1));
        assert!(cache.get(&CacheKey { seed: 2, ..key(1) }).is_none());
        assert!(cache.get(&CacheKey { t_len: 3, ..key(1) }).is_none());
        assert!(cache.get(&CacheKey { model_fingerprint: 8, ..key(1) }).is_none());
        assert!(cache.get(&CacheKey { model_size: 101, ..key(1) }).is_none());
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = SnapshotCache::new(CacheBudget::entries(2));
        cache.insert(key(1), tiny_graph(1));
        cache.insert(key(2), tiny_graph(1));
        // Touch key 1 so key 2 becomes the LRU entry.
        cache.get(&key(1)).unwrap();
        cache.insert(key(3), tiny_graph(1));
        assert!(cache.get(&key(1)).is_some(), "recently used entry survived");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn byte_budget_evicts_and_rejects() {
        let unit = tiny_graph(2).approx_bytes_reserved();
        let cache =
            SnapshotCache::new(CacheBudget { max_entries: 100, max_bytes: 2 * unit + unit / 2 });
        assert!(cache.insert(key(1), tiny_graph(2)));
        assert!(cache.insert(key(2), tiny_graph(2)));
        // Third entry exceeds the byte budget: the oldest is evicted.
        assert!(cache.insert(key(3), tiny_graph(2)));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= cache.budget().max_bytes);
        assert!(cache.get(&key(1)).is_none());

        // A single oversized sequence is never admitted.
        let n = 4096;
        let huge = Snapshot::new(n, vec![(0, 1)], Matrix::zeros(n, 8));
        let huge = Arc::new(DynamicGraph::new(vec![huge]));
        assert!(huge.approx_bytes_reserved() > cache.budget().max_bytes);
        assert!(!cache.insert(key(9), huge));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn accounting_covers_lazily_built_projections() {
        // The resident accounting is the *reserved* size: building the
        // undirected CSR on a cached snapshot (as metrics do) must never
        // push actual residency past what the budget was charged.
        let cache = SnapshotCache::new(CacheBudget::default());
        let g = tiny_graph(6);
        assert!(cache.insert(key(1), Arc::clone(&g)));
        let charged = cache.stats().bytes;
        assert!(charged >= g.approx_bytes());
        g.snapshot(0).undirected_adj();
        assert!(charged >= g.approx_bytes(), "projection build outgrew the charge");
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = SnapshotCache::new(CacheBudget::disabled());
        assert!(!cache.is_enabled());
        assert!(!cache.insert(key(1), tiny_graph(1)));
        assert!(cache.get(&key(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.insertions, stats.misses), (0, 0, 1));
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = SnapshotCache::new(CacheBudget::entries(4));
        cache.insert(key(1), tiny_graph(1));
        let small = cache.stats().bytes;
        cache.insert(key(1), tiny_graph(6));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > small);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn heavy_touching_compacts_recency_queue() {
        let cache = SnapshotCache::new(CacheBudget::entries(2));
        cache.insert(key(1), tiny_graph(1));
        cache.insert(key(2), tiny_graph(1));
        for _ in 0..10_000 {
            cache.get(&key(1)).unwrap();
            cache.get(&key(2)).unwrap();
        }
        let inner = cache.inner.lock().unwrap();
        assert!(
            inner.recency.len() <= 8 * inner.map.len() + 16,
            "recency queue unbounded: {}",
            inner.recency.len()
        );
    }

    #[test]
    fn tenant_share_evicts_own_entries_first() {
        let unit = tiny_graph(2).approx_bytes_reserved();
        // Room for ~6 units globally; tenant `a` is capped at ~2 units.
        let cache = SnapshotCache::new(CacheBudget { max_entries: 100, max_bytes: 6 * unit + 8 });
        let a = TenantId::new("a").unwrap();
        let b = TenantId::new("b").unwrap();
        let a_share = 2 * unit + 8;
        let a_cap = Some(a_share);
        // Tenant b fills three entries (no cap of its own).
        for seed in 0..3 {
            assert!(cache.insert_charged(key(seed), tiny_graph(2), b.clone(), None));
        }
        let b_resident = cache.owner_bytes(&b);
        assert_eq!(b_resident, 3 * unit);
        // Tenant a bursts five entries under a two-unit share: each
        // insertion past the share evicts a's own LRU entry, never b's.
        for seed in 10..15 {
            assert!(cache.insert_charged(key(seed), tiny_graph(2), a.clone(), a_cap));
            assert!(cache.owner_bytes(&a) <= a_share, "share exceeded");
        }
        assert_eq!(cache.owner_bytes(&b), b_resident, "b's working set survived a's burst");
        for seed in 0..3 {
            assert!(cache.get(&key(seed)).is_some(), "b's entry {seed} evicted");
        }
        // a holds exactly its two newest entries.
        assert_eq!(cache.owner_bytes(&a), 2 * unit);
        assert!(cache.get(&key(14)).is_some());
        assert!(cache.get(&key(10)).is_none());
        // A single sequence larger than the share is never admitted.
        assert!(!cache.insert_charged(key(20), tiny_graph(64), a.clone(), Some(unit / 2)));
    }

    #[test]
    fn replacing_a_key_transfers_the_owner_charge() {
        let cache = SnapshotCache::new(CacheBudget::default());
        let a = TenantId::new("a").unwrap();
        let b = TenantId::new("b").unwrap();
        assert!(cache.insert_charged(key(1), tiny_graph(2), a.clone(), None));
        let charged = cache.owner_bytes(&a);
        assert!(charged > 0);
        // Same key re-inserted by another tenant: the charge moves.
        assert!(cache.insert_charged(key(1), tiny_graph(2), b.clone(), None));
        assert_eq!(cache.owner_bytes(&a), 0);
        assert_eq!(cache.owner_bytes(&b), charged);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_inserters_under_a_tight_budget_stay_consistent() {
        // Two threads hammer a byte budget that holds only a couple of
        // entries: no panic, the budget is never exceeded (observed from
        // a third thread mid-flight and at the end), and the counters
        // add up.
        let unit = tiny_graph(2).approx_bytes_reserved();
        let cache = SnapshotCache::new(CacheBudget { max_entries: 64, max_bytes: 2 * unit + 8 });
        let writers: Vec<_> = (0..2u64)
            .map(|thread| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let seed = thread * 10_000 + i;
                        cache.insert(key(seed), tiny_graph(2));
                        let stats = cache.stats();
                        assert!(
                            stats.bytes <= cache.budget().max_bytes,
                            "budget exceeded mid-flight: {stats:?}"
                        );
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("inserter panicked");
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 1000);
        assert!(stats.bytes <= cache.budget().max_bytes, "{stats:?}");
        assert_eq!(stats.entries as u64, stats.insertions - stats.evictions, "{stats:?}");
        assert!(stats.entries >= 1 && stats.entries <= 2, "{stats:?}");
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = SnapshotCache::new(CacheBudget::entries(4));
        cache.insert(key(1), tiny_graph(1));
        cache.get(&key(1)).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes), (0, 0));
        assert_eq!((stats.hits, stats.insertions), (1, 1));
        assert!(cache.get(&key(1)).is_none());
    }
}

//! The long-lived, non-blocking service core: a [`ServeHandle`] is a
//! cheaply clonable, `Send + Sync` front door to a fixed pool of
//! `std::thread` workers draining a shared [`JobQueue`](crate::JobQueue).
//!
//! `submit` never blocks on generation — it resolves the model, applies
//! admission control, enqueues, and returns a [`Ticket`] the caller can
//! [`wait`](Ticket::wait) on or poll; each job's [`JobResult`] is
//! delivered over the ticket's private channel by the worker that ran it
//! ("workers push completions"). There is no end-of-batch report baked
//! into the lifecycle: [`ServeHandle::stats`] takes an on-demand
//! [`ServeStats`] snapshot (running cache / affinity / latency counters)
//! at any point while the service keeps accepting traffic. The batch
//! convenience wrapper [`Scheduler`](crate::Scheduler) and the TCP
//! [`Frontend`](crate::Frontend) are both thin layers over this core.
//!
//! Shutdown is explicit and layered: [`close`](ServeHandle::close) stops
//! admission and lets workers drain, [`abort`](ServeHandle::abort)
//! additionally discards queued jobs (counted in
//! [`ServeStats::dropped_jobs`]; their tickets observe the dropped reply
//! channel as [`ServeError::JobDropped`]), and dropping the last handle
//! aborts and joins the workers so a core can never leak parked threads.

use crate::cache::{CacheKey, SnapshotCache};
use crate::queue::{Job, JobQueue};
use crate::registry::{ModelHandle, ModelRegistry};
use crate::stream::StreamStats;
use crate::tenant::{Tenant, TenantId, TenantRegistry};
use crate::{CacheBudget, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vrdag::Vrdag;
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_obs::metrics::{Counter, Histogram, Registry as MetricsRegistry};
use vrdag_obs::{JobTrace, Logger, StageDurations};

/// Per-snapshot streaming consumer (see [`GenSink::Callback`]).
pub type SnapshotCallback = Box<dyn FnMut(usize, &Snapshot) + Send>;

/// Cooperative cancellation for one job: a cheap, clonable flag shared
/// between the submitter and the worker. Once [`cancel`](Self::cancel)
/// is called the generation loop stops at the next snapshot boundary —
/// whether it is stepping the model cold or replaying a cache hit — the
/// job's partial file output (if any) is removed, nothing is inserted
/// into the snapshot cache, and the [`JobResult`] reports
/// [`cancelled`](JobResult::cancelled) with the snapshots actually
/// delivered. A job cancelled while still queued never instantiates a
/// model at all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// snapshot boundary.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Where a job's snapshots go, one at a time.
pub enum GenSink {
    /// Stream to a TSV file (`vrdag_graph::io` temporal format),
    /// flushed per snapshot.
    TsvFile(PathBuf),
    /// Stream to a compact binary file, flushed per snapshot.
    BinaryFile(PathBuf),
    /// Hand each `(timestep, snapshot)` to a consumer as it is produced.
    Callback(SnapshotCallback),
    /// Collect the full sequence into [`JobResult::graph`] (unbounded
    /// memory — intended for small sequences, tests, and cached serving).
    InMemory,
    /// Generate and drop (throughput measurement / cache warming).
    Discard,
}

impl std::fmt::Debug for GenSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenSink::TsvFile(p) => f.debug_tuple("TsvFile").field(p).finish(),
            GenSink::BinaryFile(p) => f.debug_tuple("BinaryFile").field(p).finish(),
            GenSink::Callback(_) => f.write_str("Callback(..)"),
            GenSink::InMemory => f.write_str("InMemory"),
            GenSink::Discard => f.write_str("Discard"),
        }
    }
}

/// Exactly-once completion hook attached to a [`GenRequest`].
///
/// The frontend's reactor uses this to learn that a job's [`Ticket`] has
/// become ready without parking a waiter thread per job: the hook fires
/// *after* the [`JobResult`] is delivered on the ticket channel when a
/// worker finishes the job, and fires on drop when the job is discarded
/// (an [`abort`](ServeHandle::abort) — the ticket reports
/// [`ServeError::JobDropped`] by then, because the job's reply sender
/// drops before this field does). Either way, by the time the hook runs,
/// [`Ticket::try_wait`] is guaranteed to resolve.
#[derive(Default)]
pub struct CompletionNotify(Option<Box<dyn FnOnce() + Send>>);

impl CompletionNotify {
    /// Arm the hook. `f` must be cheap and non-blocking: the worker that
    /// finished the job calls it inline.
    pub fn new(f: impl FnOnce() + Send + 'static) -> Self {
        CompletionNotify(Some(Box::new(f)))
    }

    /// Run the hook now if still armed (idempotent).
    pub(crate) fn fire(&mut self) {
        if let Some(f) = self.0.take() {
            f();
        }
    }
}

impl Drop for CompletionNotify {
    fn drop(&mut self) {
        self.fire();
    }
}

impl std::fmt::Debug for CompletionNotify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "CompletionNotify(armed)"
        } else {
            "CompletionNotify(none)"
        })
    }
}

/// A seed-addressed generation request.
#[derive(Debug)]
pub struct GenRequest {
    /// Registered model name (resolved against the registry at submit
    /// time, so unknown names fail fast).
    pub model: String,
    /// Number of snapshots to generate (must be `>= 1`).
    pub t_len: usize,
    /// Determinism address: the same `(model, t_len, seed)` always yields
    /// the same sequence, regardless of which worker runs it and whether
    /// the snapshot cache serves it.
    pub seed: u64,
    /// Scheduling priority. Higher drains first; the scheduler treats it
    /// per model group (a group's priority is the max over its queued
    /// jobs), and jobs within a group stay FIFO.
    pub priority: i32,
    /// Where the snapshots go.
    pub sink: GenSink,
    /// Cooperative cancellation flag (optional). See [`CancelToken`].
    pub cancel: Option<CancelToken>,
    /// Tenant this job runs on behalf of; `None` maps to the built-in
    /// anonymous tenant (no quotas, weight 1). Resolved against the
    /// service's [`TenantRegistry`] at submit time.
    pub tenant: Option<TenantId>,
    /// Stage trace carried through the job's whole lifecycle
    /// (submitted → dequeued → snapshots → delivered); `None` lets
    /// `submit` create a fresh one. Pass a pre-made trace to anchor the
    /// clock earlier (e.g. when the request was parsed off the wire).
    pub trace: Option<JobTrace>,
    /// Exactly-once completion hook (see [`CompletionNotify`]); unarmed
    /// by default. Note: a request *rejected by `submit`* fires the hook
    /// too (the request is consumed either way), so listeners must
    /// tolerate a notification for work they never recorded as pending.
    pub notify: CompletionNotify,
}

impl GenRequest {
    /// A request with default (zero) priority, no cancellation token,
    /// and the anonymous tenant.
    pub fn new(model: impl Into<String>, t_len: usize, seed: u64, sink: GenSink) -> Self {
        GenRequest {
            model: model.into(),
            t_len,
            seed,
            priority: 0,
            sink,
            cancel: None,
            tenant: None,
            trace: None,
            notify: CompletionNotify::default(),
        }
    }

    /// Set the scheduling priority (higher drains first).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Attach a cancellation token the caller can trip later.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Run the job on behalf of `tenant` (must be registered with the
    /// service's [`TenantRegistry`], or the submit fails).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Attach a pre-created [`JobTrace`] (e.g. anchored when the request
    /// came off the wire) instead of letting `submit` start one.
    pub fn with_trace(mut self, trace: JobTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Arm an exactly-once completion hook: it runs after the job's
    /// result is deliverable on its [`Ticket`] (worker finished, or job
    /// discarded by an abort). See [`CompletionNotify`].
    pub fn with_notify(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.notify = CompletionNotify::new(f);
        self
    }
}

/// Opaque job identifier (submission order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Outcome and throughput of one executed job, delivered on its
/// [`Ticket`]'s channel by the worker that ran it.
#[derive(Debug)]
pub struct JobResult {
    pub id: JobId,
    pub model: String,
    /// Tenant the job ran on behalf of (`anonymous` unless the request
    /// carried one).
    pub tenant: TenantId,
    pub t_len: usize,
    pub seed: u64,
    /// Snapshots produced (`t_len` on success; 0 on failure — a failed
    /// file-sink job also has its partial output file removed).
    pub snapshots: usize,
    /// Total temporal edges produced.
    pub edges: usize,
    /// Approximate bytes of snapshot data streamed to the sink
    /// (`Snapshot::approx_bytes` summed over delivered snapshots) —
    /// the unit the per-tenant `bytes_streamed` accounting uses.
    pub bytes: usize,
    /// Wall-clock job duration in seconds (excluding queue wait).
    pub seconds: f64,
    /// Generation rate of this job.
    pub snapshots_per_sec: f64,
    /// True when the snapshot cache served this job without regenerating.
    pub cache_hit: bool,
    /// True when the job was stopped early by its [`CancelToken`]:
    /// `snapshots` holds how many were delivered before the stop,
    /// `error` stays `None` (cancellation is not a failure), and no
    /// partial output survives (file sinks are removed, nothing enters
    /// the cache).
    pub cancelled: bool,
    /// Service-wide completion sequence number (1-based): results sorted
    /// by `seq` are in completion order, even though each travels on its
    /// own ticket channel.
    pub seq: u64,
    /// The generated sequence, for [`GenSink::InMemory`] jobs. Shared
    /// with the snapshot cache when caching is enabled.
    pub graph: Option<Arc<DynamicGraph>>,
    /// Error message if the job failed.
    pub error: Option<String>,
    /// Per-stage durations derived from the job's [`JobTrace`]
    /// (queue wait, time to first snapshot, generation, delivery).
    pub stages: StageDurations,
}

impl JobResult {
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Coalescing identity of a job — exactly the snapshot-cache key, so
/// "identical request" means "would be served by the same cache entry".
pub(crate) fn job_cache_key(handle: &ModelHandle, t_len: usize, seed: u64) -> CacheKey {
    CacheKey {
        model_fingerprint: handle.fingerprint(),
        model_size: handle.size_bytes(),
        t_len,
        seed,
    }
}

/// Construction-time knobs of a [`ServeHandle`] (and, through it, of the
/// batch [`Scheduler`](crate::Scheduler) facade).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (must be `>= 1`).
    pub workers: usize,
    /// Admission control: `submit` fails with [`ServeError::QueueFull`]
    /// once this many jobs are queued (in-flight jobs do not count).
    /// `None` disables the cap.
    pub max_queue_depth: Option<usize>,
    /// Snapshot-cache budget; [`CacheBudget::disabled`] turns caching off.
    pub cache: CacheBudget,
    /// Tenant identities, tokens, quotas, and fair-share weights. The
    /// default ([`TenantRegistry::anonymous_only`]) disables auth and
    /// maps every request to the quota-free anonymous tenant —
    /// behavior-identical to the pre-tenant service.
    pub tenants: TenantRegistry,
    /// Structured logger the service (and its frontends) emit events
    /// through. The default is [`Logger::disabled`] — zero overhead and
    /// behavior-identical to the pre-observability service.
    pub logger: Logger,
    /// Threads each worker may use *inside* one job (parallel per-row
    /// decode; see `vrdag_tensor::par`). `None` derives the request from
    /// `VRDAG_THREADS` / available parallelism. Whatever is requested is
    /// clamped so `workers × intra-job threads` never oversubscribes the
    /// host ([`ServeHandle::intra_threads`] reports the effective value).
    /// The thread count never changes output bytes — see
    /// `tests/parallel_determinism.rs`.
    pub intra_threads: Option<usize>,
}

/// The pre-refactor name of [`ServeConfig`], kept as an alias for the
/// batch-era API surface.
pub type SchedulerConfig = ServeConfig;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_queue_depth: None,
            cache: CacheBudget::disabled(),
            tenants: TenantRegistry::anonymous_only(),
            logger: Logger::disabled(),
            intra_threads: None,
        }
    }
}

/// How well model-affinity batching amortized instantiation: a "run" is a
/// maximal stretch of consecutive same-model jobs executed by one worker
/// (one model instantiation each, at most). Live snapshots count each
/// worker's currently open run, so the numbers are meaningful mid-flight.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AffinityStats {
    /// Number of same-model runs across all workers (open runs included).
    pub batches: usize,
    /// Length of the longest run.
    pub max_batch_len: usize,
    /// Mean jobs per run.
    pub mean_batch_len: f64,
}

/// Wall-clock latency distribution over the most recent completed jobs
/// (a bounded sliding window, so a long-lived service pays O(window), not
/// O(lifetime)).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Total jobs ever measured (window or not).
    pub samples: u64,
    /// Jobs inside the current window the percentiles are computed over.
    pub window: usize,
    pub mean_seconds: f64,
    /// Median wall time.
    pub p50_seconds: f64,
    /// 95th-percentile wall time.
    pub p95_seconds: f64,
    /// 99th-percentile wall time.
    pub p99_seconds: f64,
    pub max_seconds: f64,
}

/// Per-stage latency percentiles derived from each job's [`JobTrace`]
/// marks, over the same bounded windows as [`LatencyStats`]. Stages a
/// job never reached (e.g. `first_snapshot` for a queued-cancelled job)
/// are simply not sampled.
#[derive(Clone, Debug, Default)]
pub struct StageLatencyStats {
    /// Submit accepted → worker pickup.
    pub queue_wait: LatencyStats,
    /// Worker pickup → first snapshot written to the sink.
    pub first_snapshot: LatencyStats,
    /// Worker pickup → last snapshot written to the sink.
    pub generation: LatencyStats,
    /// Last snapshot → result handoff to the ticket.
    pub delivery: LatencyStats,
    /// Cumulative decode-thread stall waiting on the pipelined encode
    /// helper — the per-job parallel-efficiency signal (near zero means
    /// the pipeline fully hid the sink cost). Only jobs that pipelined
    /// *and* stalled at least once are sampled.
    pub encode_wait: LatencyStats,
}

/// Point-in-time per-tenant counters inside a [`ServeStats`] snapshot.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Tenant id (`anonymous` for unauthenticated traffic).
    pub id: String,
    /// Fair-share weight the scheduler applies to this tenant.
    pub weight: u32,
    /// Jobs accepted by `submit` on behalf of this tenant.
    pub submitted: u64,
    /// Jobs that finished executing (success, failure, or cancelled).
    pub completed: u64,
    /// Completed jobs that failed.
    pub failed: u64,
    /// Completed jobs stopped early by their [`CancelToken`].
    pub cancelled: u64,
    /// Submissions refused by admission control (tenant quotas, the
    /// rate limit, or the global queue cap).
    pub rejected: u64,
    /// Approximate bytes of snapshot data streamed to this tenant's
    /// sinks ([`JobResult::bytes`] summed).
    pub bytes_streamed: u64,
    /// Median job wall time over this tenant's recent jobs.
    pub p50_seconds: f64,
    /// 95th-percentile job wall time over this tenant's recent jobs.
    pub p95_seconds: f64,
}

impl LatencyStats {
    /// `p50/p95/p99` rendered in milliseconds.
    pub fn render(&self) -> String {
        format!(
            "p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  (mean {:.2}ms, max {:.2}ms over {} of {} jobs)",
            self.p50_seconds * 1e3,
            self.p95_seconds * 1e3,
            self.p99_seconds * 1e3,
            self.mean_seconds * 1e3,
            self.max_seconds * 1e3,
            self.window,
            self.samples,
        )
    }
}

/// On-demand point-in-time snapshot of a running service — the
/// replacement for the retired end-of-batch report: callers pull it
/// whenever they want instead of waiting for a drain.
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Worker threads the pool was built with.
    pub workers: usize,
    /// Seconds since the core was created.
    pub uptime_seconds: f64,
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs that finished executing (success or failure).
    pub completed: u64,
    /// Completed jobs that failed.
    pub failed: u64,
    /// Completed jobs stopped early by their [`CancelToken`] (not
    /// counted as failures).
    pub cancelled: u64,
    /// Queued jobs discarded by `abort`/drop without ever running.
    pub dropped_jobs: u64,
    /// Jobs queued and not yet picked up by a worker.
    pub queue_depth: usize,
    /// Jobs currently executing.
    pub in_flight: usize,
    /// Highest observed number of simultaneously executing jobs.
    pub max_in_flight: usize,
    /// Snapshots produced by completed jobs.
    pub snapshots: u64,
    /// Temporal edges produced by completed jobs.
    pub edges: u64,
    /// Snapshot-cache counters (all zero when disabled).
    pub cache: crate::CacheStats,
    /// Model-affinity batching statistics.
    pub affinity: AffinityStats,
    /// Per-job wall-time percentiles.
    pub latency: LatencyStats,
    /// Per-stage percentiles from the jobs' [`JobTrace`] marks.
    pub stages: StageLatencyStats,
    /// Per-tenant counters, sorted by tenant id. Only tenants that have
    /// submitted (or been rejected) at least once appear.
    pub tenants: Vec<TenantStats>,
}

impl ServeStats {
    /// Completed jobs per uptime second (coarse; prefer your own clock
    /// for micro-benchmarks).
    pub fn jobs_per_sec(&self) -> f64 {
        self.completed as f64 / self.uptime_seconds.max(1e-9)
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: {} submitted / {} completed ({} failed, {} cancelled, {} dropped) on {} workers in {:.3}s  (peak {} in flight, {} queued now)",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.dropped_jobs,
            self.workers,
            self.uptime_seconds,
            self.max_in_flight,
            self.queue_depth,
        );
        let _ = writeln!(
            out,
            "  throughput: {} snapshots / {} edges total",
            self.snapshots, self.edges,
        );
        let _ = writeln!(
            out,
            "  gauges: uptime_secs={:.0} jobs_inflight={}",
            self.uptime_seconds, self.in_flight
        );
        let _ = writeln!(out, "  latency: {}", self.latency.render());
        let _ = writeln!(
            out,
            "  stages: queue p50 {:.2}ms p95 {:.2}ms | first-snapshot p50 {:.2}ms p95 {:.2}ms | generation p50 {:.2}ms p95 {:.2}ms | delivery p50 {:.2}ms p95 {:.2}ms | encode-wait p50 {:.2}ms p95 {:.2}ms",
            self.stages.queue_wait.p50_seconds * 1e3,
            self.stages.queue_wait.p95_seconds * 1e3,
            self.stages.first_snapshot.p50_seconds * 1e3,
            self.stages.first_snapshot.p95_seconds * 1e3,
            self.stages.generation.p50_seconds * 1e3,
            self.stages.generation.p95_seconds * 1e3,
            self.stages.delivery.p50_seconds * 1e3,
            self.stages.delivery.p95_seconds * 1e3,
            self.stages.encode_wait.p50_seconds * 1e3,
            self.stages.encode_wait.p95_seconds * 1e3,
        );
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} entries / {} KiB resident",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.evictions,
            self.cache.entries,
            self.cache.bytes / 1024,
        );
        let _ = writeln!(
            out,
            "  affinity: {} model batches, max {} jobs/batch, mean {:.1}",
            self.affinity.batches, self.affinity.max_batch_len, self.affinity.mean_batch_len,
        );
        // Anonymous-only traffic keeps the legacy single-tenant summary;
        // the per-tenant section appears once named tenants show up.
        if self.tenants.iter().any(|t| t.id != crate::tenant::ANONYMOUS_TENANT) {
            let _ = writeln!(out, "  tenants:");
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "    {:<16} w={}  {} submitted / {} completed ({} failed, {} cancelled, {} rejected)  {} KiB streamed  p50 {:.2}ms p95 {:.2}ms",
                    t.id,
                    t.weight,
                    t.submitted,
                    t.completed,
                    t.failed,
                    t.cancelled,
                    t.rejected,
                    t.bytes_streamed / 1024,
                    t.p50_seconds * 1e3,
                    t.p95_seconds * 1e3,
                );
            }
        }
        out
    }
}

/// Claim on one submitted job: the receive side of its private result
/// channel. The result is delivered exactly once — after a successful
/// [`try_wait`](Ticket::try_wait)/[`wait_timeout`](Ticket::wait_timeout),
/// further waits report [`ServeError::JobDropped`].
#[derive(Debug)]
pub struct Ticket {
    id: JobId,
    model: String,
    t_len: usize,
    seed: u64,
    rx: Receiver<JobResult>,
}

impl Ticket {
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The request's registered model name.
    pub fn model(&self) -> &str {
        &self.model
    }

    pub fn t_len(&self) -> usize {
        self.t_len
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Block until the job completes. Returns
    /// [`ServeError::JobDropped`] when the job was discarded by an
    /// abort/drop before a worker ran it (or its result was already
    /// consumed by a poll).
    pub fn wait(self) -> Result<JobResult, ServeError> {
        self.rx.recv().map_err(|_| ServeError::JobDropped)
    }

    /// Non-blocking poll: `Ok(None)` while the job is still queued or
    /// running.
    pub fn try_wait(&mut self) -> Result<Option<JobResult>, ServeError> {
        match self.rx.try_recv() {
            Ok(result) => Ok(Some(result)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ServeError::JobDropped),
        }
    }

    /// Bounded wait: `Ok(None)` on timeout.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<JobResult>, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(Some(result)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::JobDropped),
        }
    }
}

/// Latency samples kept for percentile estimation (per core).
const LATENCY_WINDOW: usize = 4096;

/// Latency samples kept per tenant (smaller: one window per tenant).
const TENANT_LATENCY_WINDOW: usize = 512;

/// Bounded ring of recent per-job wall times with nearest-rank
/// percentile queries — the one implementation behind both the
/// service-wide [`LatencyStats`] and the per-tenant percentiles.
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
    cap: usize,
}

impl LatencyRing {
    fn new(cap: usize) -> LatencyRing {
        LatencyRing { samples: Vec::with_capacity(cap.min(1024)), next: 0, cap }
    }

    fn record(&mut self, seconds: f64) {
        if self.samples.len() < self.cap {
            self.samples.push(seconds);
        } else {
            self.samples[self.next] = seconds;
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The window's samples, sorted ascending (for [`rank`](Self::rank)).
    fn sorted(&self) -> Vec<f64> {
        let mut window = self.samples.clone();
        window.sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        window
    }

    /// Nearest-rank percentile over a sorted, non-empty window.
    fn rank(window: &[f64], q: f64) -> f64 {
        let idx = ((q * window.len() as f64).ceil() as usize).clamp(1, window.len()) - 1;
        window[idx]
    }
}

/// Running per-tenant counters (see [`TenantStats`] for the snapshot).
struct TenantRunning {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    bytes_streamed: u64,
    latency: LatencyRing,
}

impl Default for TenantRunning {
    fn default() -> Self {
        TenantRunning {
            submitted: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            rejected: 0,
            bytes_streamed: 0,
            latency: LatencyRing::new(TENANT_LATENCY_WINDOW),
        }
    }
}

impl TenantRunning {
    fn record_result(&mut self, result: &JobResult) {
        self.completed += 1;
        if result.error.is_some() {
            self.failed += 1;
        }
        if result.cancelled {
            self.cancelled += 1;
        }
        self.bytes_streamed += result.bytes as u64;
        self.latency.record(result.seconds);
    }

    /// `(p50, p95)` over the tenant's latency window.
    fn percentiles(&self) -> (f64, f64) {
        if self.latency.is_empty() {
            return (0.0, 0.0);
        }
        let window = self.latency.sorted();
        (LatencyRing::rank(&window, 0.50), LatencyRing::rank(&window, 0.95))
    }
}

/// Mutable running statistics updated by workers as they complete jobs.
struct RunningStats {
    /// Closed affinity runs: count / total jobs / longest.
    runs: usize,
    runs_sum: usize,
    runs_max: usize,
    /// Per-worker open run: (model fingerprint, jobs so far).
    open_runs: Vec<(Option<u64>, usize)>,
    latency: LatencyRing,
    latency_total: u64,
    /// Per-stage rings (queue wait, first snapshot, generation,
    /// delivery) fed from each job's [`JobTrace`]; indices match
    /// [`STAGE_NAMES`].
    stage_rings: [LatencyRing; STAGE_COUNT],
    stage_totals: [u64; STAGE_COUNT],
    /// Per-tenant counters, created lazily on first traffic.
    tenants: std::collections::HashMap<TenantId, TenantRunning>,
}

/// Stage labels, in [`RunningStats::stage_rings`] index order.
const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["queue_wait", "first_snapshot", "generation", "delivery", "encode_wait"];
const STAGE_COUNT: usize = 5;

impl RunningStats {
    fn new(workers: usize) -> Self {
        RunningStats {
            runs: 0,
            runs_sum: 0,
            runs_max: 0,
            open_runs: vec![(None, 0); workers],
            latency: LatencyRing::new(LATENCY_WINDOW),
            latency_total: 0,
            stage_rings: std::array::from_fn(|_| LatencyRing::new(LATENCY_WINDOW)),
            stage_totals: [0; STAGE_COUNT],
            tenants: std::collections::HashMap::new(),
        }
    }

    fn tenant_mut(&mut self, id: &TenantId) -> &mut TenantRunning {
        self.tenants.entry(id.clone()).or_default()
    }

    fn close_run(&mut self, worker: usize) {
        let (_, len) = self.open_runs[worker];
        if len > 0 {
            self.runs += 1;
            self.runs_sum += len;
            self.runs_max = self.runs_max.max(len);
        }
        self.open_runs[worker] = (None, 0);
    }

    fn record_latency(&mut self, seconds: f64) {
        self.latency.record(seconds);
        self.latency_total += 1;
    }

    fn record_stages(&mut self, stages: &StageDurations) {
        let values = [
            stages.queue_wait,
            stages.first_snapshot,
            stages.generation,
            stages.delivery,
            stages.encode_wait,
        ];
        for (i, v) in values.iter().enumerate() {
            if let Some(d) = v {
                self.stage_rings[i].record(d.as_secs_f64());
                self.stage_totals[i] += 1;
            }
        }
    }

    fn stage_stats(&self) -> StageLatencyStats {
        let one = |i: usize| ring_stats(&self.stage_rings[i], self.stage_totals[i]);
        StageLatencyStats {
            queue_wait: one(0),
            first_snapshot: one(1),
            generation: one(2),
            delivery: one(3),
            encode_wait: one(4),
        }
    }

    fn affinity(&self) -> AffinityStats {
        let open: Vec<usize> =
            self.open_runs.iter().map(|&(_, len)| len).filter(|&len| len > 0).collect();
        let batches = self.runs + open.len();
        let sum = self.runs_sum + open.iter().sum::<usize>();
        let max = self.runs_max.max(open.iter().copied().max().unwrap_or(0));
        AffinityStats {
            batches,
            max_batch_len: max,
            mean_batch_len: if batches == 0 { 0.0 } else { sum as f64 / batches as f64 },
        }
    }

    fn latency_stats(&self) -> LatencyStats {
        ring_stats(&self.latency, self.latency_total)
    }
}

/// [`LatencyStats`] over one ring's current window (`total` = lifetime
/// sample count, window or not).
fn ring_stats(ring: &LatencyRing, total: u64) -> LatencyStats {
    if ring.is_empty() {
        return LatencyStats::default();
    }
    let window = ring.sorted();
    LatencyStats {
        samples: total,
        window: window.len(),
        mean_seconds: window.iter().sum::<f64>() / window.len() as f64,
        p50_seconds: LatencyRing::rank(&window, 0.50),
        p95_seconds: LatencyRing::rank(&window, 0.95),
        p99_seconds: LatencyRing::rank(&window, 0.99),
        max_seconds: *window.last().expect("non-empty"),
    }
}

/// State shared between handles and workers (workers hold only this, so
/// dropping the last handle — which owns the join handles — can never
/// deadlock on a worker keeping the core alive).
/// Wall time past which a completed job earns a warn-level log event.
const SLOW_JOB_WARN_SECONDS: f64 = 10.0;

/// Natively instrumented metric handles — values only the hot path can
/// see (busy time, stage durations). Families that mirror counters the
/// core already tracks elsewhere (jobs, cache, queue) are refreshed from
/// those sources at render time instead, so `METRICS` and `STATS` can
/// never drift apart (see `ServeHandle::metrics_text`).
struct CoreMetrics {
    registry: MetricsRegistry,
    /// Milliseconds workers spent executing jobs (all workers summed).
    worker_busy_ms: Counter,
    /// `vrdag_job_stage_seconds{stage=...}`, indexed like [`STAGE_NAMES`].
    stage_seconds: [Histogram; STAGE_COUNT],
}

impl CoreMetrics {
    fn new() -> CoreMetrics {
        let registry = MetricsRegistry::new();
        crate::publish_build_info(&registry);
        let stage_seconds = std::array::from_fn(|i| {
            registry.histogram("vrdag_job_stage_seconds", &[("stage", STAGE_NAMES[i])])
        });
        CoreMetrics {
            worker_busy_ms: registry.counter("vrdag_worker_busy_ms_total", &[]),
            stage_seconds,
            registry,
        }
    }

    fn observe_stages(&self, stages: &StageDurations) {
        let values = [
            stages.queue_wait,
            stages.first_snapshot,
            stages.generation,
            stages.delivery,
            stages.encode_wait,
        ];
        for (i, v) in values.iter().enumerate() {
            if let Some(d) = v {
                self.stage_seconds[i].observe(d.as_secs_f64());
            }
        }
    }
}

struct Shared {
    queue: JobQueue,
    cache: SnapshotCache,
    logger: Logger,
    metrics: CoreMetrics,
    /// Effective intra-job thread count each worker runs its jobs under
    /// (the requested/default value, clamped against oversubscription).
    intra_threads: usize,
    stats: Mutex<RunningStats>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    dropped: AtomicU64,
    snapshots: AtomicU64,
    edges: AtomicU64,
    /// Completion sequence; see [`JobResult::seq`].
    seq: AtomicU64,
    closed: AtomicBool,
}

struct Core {
    shared: Arc<Shared>,
    registry: ModelRegistry,
    tenants: TenantRegistry,
    next_id: AtomicU64,
    max_queue_depth: Option<usize>,
    worker_count: usize,
    started: Instant,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for Core {
    fn drop(&mut self) {
        // The last handle is gone: abort (a drop is not a drain — error
        // paths must exit promptly instead of silently finishing minutes
        // of submitted work) and join so no worker is leaked parked on
        // the condvar. Discarded jobs stay observable as `dropped_jobs`
        // right until the counters themselves go away with the core.
        self.shared.closed.store(true, Ordering::SeqCst);
        let dropped = self.shared.queue.close_discard();
        self.shared.dropped.fetch_add(dropped as u64, Ordering::SeqCst);
        for handle in self.workers.get_mut().expect("workers lock poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Cheap, clonable, `Send + Sync` front door to a running service core.
///
/// All clones share one worker pool, queue, cache, and statistics; the
/// core shuts down (abort + join) when the last clone drops. See the
/// crate docs for the lifecycle.
#[derive(Clone)]
pub struct ServeHandle {
    core: Arc<Core>,
}

impl ServeHandle {
    /// Spawn `workers` threads draining a fresh queue, with caching and
    /// admission control disabled. Fails with [`ServeError::NoWorkers`]
    /// when `workers == 0`.
    pub fn new(registry: ModelRegistry, workers: usize) -> Result<ServeHandle, ServeError> {
        ServeHandle::with_config(registry, ServeConfig { workers, ..Default::default() })
    }

    /// Spawn a pool with explicit [`ServeConfig`]. Fails with
    /// [`ServeError::NoWorkers`] when `config.workers == 0` — a pool
    /// without workers would accept jobs that can never run.
    pub fn with_config(
        registry: ModelRegistry,
        config: ServeConfig,
    ) -> Result<ServeHandle, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        let cache = SnapshotCache::new(config.cache);
        // Coalescing only pays off when finished twins can be served
        // from the cache.
        let queue = JobQueue::with_cache(cache.is_enabled().then(|| cache.clone()));
        let intra_threads = effective_intra_threads(config.workers, config.intra_threads);
        let shared = Arc::new(Shared {
            queue,
            cache,
            logger: config.logger.clone(),
            metrics: CoreMetrics::new(),
            intra_threads,
            stats: Mutex::new(RunningStats::new(config.workers)),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            edges: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vrdag-serve-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(ServeHandle {
            core: Arc::new(Core {
                shared,
                registry,
                tenants: config.tenants,
                next_id: AtomicU64::new(0),
                max_queue_depth: config.max_queue_depth,
                worker_count: config.workers,
                started: Instant::now(),
                workers: Mutex::new(workers),
            }),
        })
    }

    /// The tenant registry this service authenticates and schedules
    /// against. An [`auth_enabled`](TenantRegistry::auth_enabled)
    /// registry makes the TCP frontend demand an `AUTH` greeting.
    pub fn tenants(&self) -> &TenantRegistry {
        &self.core.tenants
    }

    /// The registry this service resolves model names against. Models
    /// registered or removed here are picked up by subsequent submits —
    /// the registry is shared, not snapshotted.
    pub fn registry(&self) -> &ModelRegistry {
        &self.core.registry
    }

    /// The snapshot cache shared by this service's workers.
    pub fn cache(&self) -> &SnapshotCache {
        &self.core.shared.cache
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.core.shared.queue.depth()
    }

    /// Worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.core.worker_count
    }

    /// Effective intra-job thread count each worker runs its jobs under:
    /// [`ServeConfig::intra_threads`] (or the `VRDAG_THREADS`/host
    /// default), clamped so `workers × intra_threads` never exceeds the
    /// host's available parallelism. Determinism is unaffected — thread
    /// count never changes output bytes.
    pub fn intra_threads(&self) -> usize {
        self.core.shared.intra_threads
    }

    /// Enqueue a request without blocking on generation and return the
    /// [`Ticket`] its result will be delivered on. Fails fast with a
    /// typed error instead of accepting work it cannot run:
    ///
    /// * [`ServeError::SchedulerClosed`] after [`close`](Self::close) /
    ///   [`abort`](Self::abort),
    /// * [`ServeError::UnknownModel`] for unregistered names,
    /// * [`ServeError::InvalidRequest`] for `t_len == 0`,
    /// * [`ServeError::QueueFull`] when the admission cap is reached —
    ///   the caller's backpressure signal,
    /// * [`ServeError::QuotaExceeded`] when the request's *tenant* is
    ///   over one of its own quotas (rate limit, `max_inflight`,
    ///   `max_queue_share`) — per-tenant backpressure that leaves every
    ///   other tenant's admission untouched.
    pub fn submit(&self, req: GenRequest) -> Result<Ticket, ServeError> {
        if self.core.shared.closed.load(Ordering::SeqCst) {
            return Err(ServeError::SchedulerClosed);
        }
        if req.t_len == 0 {
            return Err(ServeError::InvalidRequest(
                "t_len must be >= 1 (a dynamic graph needs at least one snapshot)".into(),
            ));
        }
        let tenant: Arc<Tenant> = match &req.tenant {
            None => self.core.tenants.anonymous(),
            Some(id) => self.core.tenants.get(id).ok_or_else(|| {
                ServeError::InvalidRequest(format!("unknown tenant {:?}", id.as_str()))
            })?,
        };
        let handle = self.core.registry.resolve(&req.model)?;
        if !self.core.tenants.try_acquire_rate(&tenant) {
            self.note_rejected(tenant.id());
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.id().to_string(),
                quota: "rate",
                cap: tenant.rate_limit.map_or(0, |r| r.per_sec.ceil() as u64),
            });
        }
        let (tx, rx) = mpsc::channel();
        let id = JobId(self.core.next_id.fetch_add(1, Ordering::SeqCst));
        let ticket = Ticket { id, model: req.model, t_len: req.t_len, seed: req.seed, rx };
        let tenant_id = tenant.id().clone();
        let trace = req.trace.unwrap_or_default();
        trace.mark_submitted();
        let job = Job {
            id,
            handle,
            tenant: Arc::clone(&tenant),
            t_len: req.t_len,
            seed: req.seed,
            priority: req.priority,
            sink: req.sink,
            cancel: req.cancel,
            trace,
            reply: tx,
            notify: req.notify,
        };
        match self.core.shared.queue.push_checked(job, self.core.max_queue_depth) {
            Ok(()) => {
                self.core.shared.submitted.fetch_add(1, Ordering::SeqCst);
                let mut stats = self.core.shared.stats.lock().expect("stats lock poisoned");
                stats.tenant_mut(&tenant_id).submitted += 1;
                drop(stats);
                Ok(ticket)
            }
            // A close/abort from another handle clone can win the race
            // against the pre-flight `closed` check above; that is the
            // same typed error, not a panic. A rejected job must not
            // burn the rate budget its retry will need.
            Err(crate::queue::PushRejected::Closed) => {
                self.core.tenants.refund_rate(&tenant);
                Err(ServeError::SchedulerClosed)
            }
            Err(crate::queue::PushRejected::Full { depth }) => {
                self.core.tenants.refund_rate(&tenant);
                self.note_rejected(&tenant_id);
                Err(ServeError::QueueFull {
                    depth,
                    cap: self.core.max_queue_depth.expect("cap enforced implies cap set"),
                })
            }
            Err(crate::queue::PushRejected::Quota { tenant: t, quota, cap }) => {
                self.core.tenants.refund_rate(&tenant);
                self.note_rejected(&t);
                Err(ServeError::QuotaExceeded { tenant: t.to_string(), quota, cap: cap as u64 })
            }
        }
    }

    /// Count one refused submission into the tenant's `rejected` stat.
    fn note_rejected(&self, tenant: &TenantId) {
        let mut stats = self.core.shared.stats.lock().expect("stats lock poisoned");
        stats.tenant_mut(tenant).rejected += 1;
    }

    /// Stop accepting submissions; workers finish everything already
    /// queued and then exit. Idempotent.
    pub fn close(&self) {
        self.core.shared.closed.store(true, Ordering::SeqCst);
        self.core.shared.queue.close();
    }

    /// Stop accepting submissions *and* discard queued jobs (in-flight
    /// jobs finish). Each discarded job counts into
    /// [`ServeStats::dropped_jobs`] and its ticket reports
    /// [`ServeError::JobDropped`]. Idempotent.
    pub fn abort(&self) {
        self.core.shared.closed.store(true, Ordering::SeqCst);
        let dropped = self.core.shared.queue.close_discard();
        self.core.shared.dropped.fetch_add(dropped as u64, Ordering::SeqCst);
    }

    /// Block until every worker thread has exited. Only meaningful after
    /// [`close`](Self::close) or [`abort`](Self::abort) — otherwise the
    /// workers never exit and this blocks forever. Safe to call from
    /// multiple handles; later callers return once the first join is
    /// done.
    pub fn join_workers(&self) {
        let handles: Vec<_> =
            self.core.workers.lock().expect("workers lock poisoned").drain(..).collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    }

    /// Graceful shutdown: close, drain, join, and return the final
    /// statistics snapshot.
    pub fn shutdown(&self) -> ServeStats {
        self.close();
        self.join_workers();
        self.stats()
    }

    /// On-demand statistics snapshot; callable at any time, including
    /// while jobs are queued and executing.
    pub fn stats(&self) -> ServeStats {
        let shared = &self.core.shared;
        let (affinity, latency, stages, mut tenants) = {
            let stats = shared.stats.lock().expect("stats lock poisoned");
            let tenants: Vec<TenantStats> = stats
                .tenants
                .iter()
                .map(|(id, t)| {
                    let (p50, p95) = t.percentiles();
                    TenantStats {
                        id: id.to_string(),
                        weight: self.core.tenants.get(id).map_or(1, |cfg| cfg.weight),
                        submitted: t.submitted,
                        completed: t.completed,
                        failed: t.failed,
                        cancelled: t.cancelled,
                        rejected: t.rejected,
                        bytes_streamed: t.bytes_streamed,
                        p50_seconds: p50,
                        p95_seconds: p95,
                    }
                })
                .collect();
            (stats.affinity(), stats.latency_stats(), stats.stage_stats(), tenants)
        };
        tenants.sort_by(|a, b| a.id.cmp(&b.id));
        ServeStats {
            workers: self.core.worker_count,
            uptime_seconds: self.core.started.elapsed().as_secs_f64().max(1e-9),
            submitted: shared.submitted.load(Ordering::SeqCst),
            completed: shared.completed.load(Ordering::SeqCst),
            failed: shared.failed.load(Ordering::SeqCst),
            cancelled: shared.cancelled.load(Ordering::SeqCst),
            dropped_jobs: shared.dropped.load(Ordering::SeqCst),
            queue_depth: shared.queue.depth(),
            in_flight: shared.queue.in_flight(),
            max_in_flight: shared.queue.max_in_flight(),
            snapshots: shared.snapshots.load(Ordering::SeqCst),
            edges: shared.edges.load(Ordering::SeqCst),
            cache: shared.cache.stats(),
            affinity,
            latency,
            stages,
            tenants,
        }
    }

    /// The structured logger this service (and any frontend built on
    /// it) emits events through; configured via [`ServeConfig::logger`].
    pub fn logger(&self) -> &Logger {
        &self.core.shared.logger
    }

    /// Whether the scheduler is still accepting submissions — `false`
    /// once [`close`](Self::close)/[`shutdown`](Self::shutdown)/
    /// [`abort`](Self::abort) ran and every [`submit`](Self::submit)
    /// would return [`ServeError::SchedulerClosed`]. This is the serve
    /// tier's `/readyz` predicate.
    pub fn is_accepting(&self) -> bool {
        !self.core.shared.closed.load(Ordering::SeqCst)
    }

    /// The metrics registry backing [`metrics_text`](Self::metrics_text).
    /// Frontends register their own families here so one `METRICS`
    /// payload covers the whole stack.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.core.shared.metrics.registry
    }

    /// Prometheus text exposition of every registered family. Mirror
    /// families (jobs, cache, queue, uptime) are refreshed from the same
    /// authoritative sources [`stats`](Self::stats) reads immediately
    /// before rendering, so `METRICS` and `STATS` agree exactly.
    pub fn metrics_text(&self) -> String {
        self.refresh_metrics();
        self.core.shared.metrics.registry.render()
    }

    /// JSON rendering of the same registry state as
    /// [`metrics_text`](Self::metrics_text) (for `--metrics-json` dumps).
    pub fn metrics_json(&self) -> String {
        self.refresh_metrics();
        self.core.shared.metrics.registry.render_json()
    }

    /// Re-derive the mirror metric families from the counters `stats()`
    /// reads. Registering is idempotent (name + labels key), so repeated
    /// renders reuse the same handles.
    fn refresh_metrics(&self) {
        let shared = &self.core.shared;
        let reg = &shared.metrics.registry;
        let set = |name: &str, v: u64| reg.counter(name, &[]).set(v);
        set("vrdag_jobs_submitted_total", shared.submitted.load(Ordering::SeqCst));
        set("vrdag_jobs_completed_total", shared.completed.load(Ordering::SeqCst));
        set("vrdag_jobs_failed_total", shared.failed.load(Ordering::SeqCst));
        set("vrdag_jobs_cancelled_total", shared.cancelled.load(Ordering::SeqCst));
        set("vrdag_jobs_dropped_total", shared.dropped.load(Ordering::SeqCst));
        set("vrdag_snapshots_total", shared.snapshots.load(Ordering::SeqCst));
        set("vrdag_edges_total", shared.edges.load(Ordering::SeqCst));
        let cache = shared.cache.stats();
        set("vrdag_cache_hits_total", cache.hits);
        set("vrdag_cache_misses_total", cache.misses);
        set("vrdag_cache_insertions_total", cache.insertions);
        set("vrdag_cache_evictions_total", cache.evictions);
        set("vrdag_cache_evicted_bytes_total", cache.evicted_bytes);
        reg.gauge("vrdag_cache_entries", &[]).set(cache.entries as u64);
        reg.gauge("vrdag_cache_bytes", &[]).set(cache.bytes as u64);
        reg.gauge("vrdag_intra_threads", &[]).set(shared.intra_threads as u64);
        reg.gauge("vrdag_queue_depth", &[]).set(shared.queue.depth() as u64);
        reg.gauge("vrdag_jobs_inflight", &[]).set(shared.queue.in_flight() as u64);
        reg.gauge("vrdag_jobs_inflight_peak", &[]).set(shared.queue.max_in_flight() as u64);
        reg.gauge("vrdag_uptime_seconds", &[]).set(self.core.started.elapsed().as_secs());
        for lane in shared.queue.lane_stats() {
            let labels = [("tenant", lane.tenant.as_str())];
            reg.gauge("vrdag_tenant_queue_depth", &labels).set(lane.queued as u64);
            reg.gauge("vrdag_tenant_lane_deficit", &labels).set(lane.deficit);
        }
    }
}

/// A worker's single cached model instance: the artifact it belongs to
/// and the deserialized model. Affinity scheduling makes one instance
/// (instead of a per-model map) the right shape — switching models is
/// exactly the batch boundary.
struct WorkerInstance {
    fingerprint: u64,
    model: Vrdag,
}

/// Resolve the intra-job thread count a worker pool runs under: the
/// requested value (or the `VRDAG_THREADS`/host default) clamped so
/// `workers × intra_threads` never oversubscribes the host. At least 1.
fn effective_intra_threads(workers: usize, requested: Option<usize>) -> usize {
    let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let per_worker_cap = (host / workers.max(1)).max(1);
    requested.unwrap_or_else(vrdag_tensor::par::num_threads).clamp(1, per_worker_cap)
}

fn worker_loop(worker: usize, shared: &Shared) {
    let mut instance: Option<WorkerInstance> = None;
    // Run accounting follows the *jobs* (consecutive same-model
    // stretches), not the instance: a cache-hit job for another model
    // never needs an instance, so the old one is kept until a miss
    // actually demands a different artifact (see run_job).
    while let Some(mut job) = shared.queue.pop(instance.as_ref().map(|i| i.fingerprint)) {
        job.trace.mark_dequeued();
        // Take the completion hook out of the job before run_job consumes
        // it: the hook must fire *after* the result send below, never
        // from a drop inside the job's own execution.
        let mut notify = std::mem::take(&mut job.notify);
        let fp = job.handle.fingerprint();
        {
            let mut stats = shared.stats.lock().expect("stats lock poisoned");
            if stats.open_runs[worker].0 != Some(fp) {
                stats.close_run(worker);
                stats.open_runs[worker].0 = Some(fp);
            }
        }
        let key = job_cache_key(&job.handle, job.t_len, job.seed);
        let reply = job.reply.clone();
        // User code runs inside run_job (Callback sinks): contain a
        // panic to this *job* instead of killing the worker — a dead
        // worker would strand every queued job's reply channel inside
        // the queue, deadlocking the tickets waiting on them.
        let id = job.id;
        let model_name = job.handle.name().to_string();
        let tenant = Arc::clone(&job.tenant);
        let trace = job.trace.clone();
        let (t_len, seed) = (job.t_len, job.seed);
        let sink_path = match &job.sink {
            GenSink::TsvFile(p) | GenSink::BinaryFile(p) => Some(p.clone()),
            _ => None,
        };
        let started = Instant::now();
        // The whole job runs under the pool's oversubscription clamp:
        // parallel sections inside the decode see `intra_threads` on this
        // worker thread only (the override is scoped and thread-local).
        let outcome = vrdag_tensor::par::with_threads(shared.intra_threads, || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(job, &mut instance, &shared.cache)
            }))
        });
        let mut result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                // The panic may have unwound mid-generation: discard the
                // cached model instance and any truncated output file.
                instance = None;
                if let Some(path) = &sink_path {
                    let _ = std::fs::remove_file(path);
                }
                JobResult {
                    id,
                    model: model_name,
                    tenant: tenant.id().clone(),
                    t_len,
                    seed,
                    snapshots: 0,
                    edges: 0,
                    bytes: 0,
                    seconds: started.elapsed().as_secs_f64().max(1e-9),
                    snapshots_per_sec: 0.0,
                    cache_hit: false,
                    cancelled: false,
                    seq: 0,
                    graph: None,
                    error: Some(format!("job panicked: {}", panic_message(payload.as_ref()))),
                    stages: StageDurations::default(),
                }
            }
        };
        shared.completed.fetch_add(1, Ordering::SeqCst);
        if result.error.is_some() {
            shared.failed.fetch_add(1, Ordering::SeqCst);
        }
        if result.cancelled {
            shared.cancelled.fetch_add(1, Ordering::SeqCst);
        }
        shared.snapshots.fetch_add(result.snapshots as u64, Ordering::SeqCst);
        shared.edges.fetch_add(result.edges as u64, Ordering::SeqCst);
        result.seq = shared.seq.fetch_add(1, Ordering::SeqCst) + 1;
        // "Delivered" is marked at handoff (just before the ticket send
        // below) so the derived durations can ride on the result itself.
        trace.mark_delivered();
        result.stages = trace.durations();
        shared.metrics.worker_busy_ms.add((result.seconds * 1e3) as u64);
        shared.metrics.observe_stages(&result.stages);
        if result.seconds >= SLOW_JOB_WARN_SECONDS {
            shared.logger.warn(
                "serve.worker",
                "slow job",
                &[
                    ("id", id.0.to_string()),
                    ("model", result.model.clone()),
                    ("tenant", tenant.id().to_string()),
                    ("t_len", t_len.to_string()),
                    ("seed", seed.to_string()),
                    ("seconds", format!("{:.3}", result.seconds)),
                ],
            );
        }
        {
            let mut stats = shared.stats.lock().expect("stats lock poisoned");
            stats.open_runs[worker].1 += 1;
            stats.record_latency(result.seconds);
            stats.record_stages(&result.stages);
            stats.tenant_mut(tenant.id()).record_result(&result);
        }
        // Release the queue's accounting (busy key, per-tenant
        // executing count) *before* delivering the result: a client
        // that resubmits the moment its wait() returns must never see a
        // spurious max_inflight rejection for a job it just observed
        // finishing — the same release-before-completion ordering the
        // frontend applies to its tag slots.
        shared.queue.finish_one(&key, tenant.id());
        // The caller may have dropped its ticket; completion is still
        // fully accounted above, so ignore a closed channel.
        let _ = reply.send(result);
        // Only after the result is on the channel: the reactor's
        // completion pump relies on `try_wait` resolving by the time the
        // hook runs.
        notify.fire();
    }
    // Fold the final open run into the closed totals so post-shutdown
    // snapshots see every run.
    shared.stats.lock().expect("stats lock poisoned").close_run(worker);
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_job(job: Job, instance: &mut Option<WorkerInstance>, cache: &SnapshotCache) -> JobResult {
    let Job {
        id,
        handle,
        tenant,
        t_len,
        seed,
        priority: _,
        mut sink,
        cancel,
        trace,
        reply: _,
        notify: _,
    } = job;
    let model_name = handle.name().to_string();
    let key = job_cache_key(&handle, t_len, seed);
    let started = Instant::now();
    let mut cache_hit = false;
    let cancel = cancel.as_ref();
    // Whether this job actually opened its sink: a job cancelled while
    // still queued never did, and must not delete whatever a *previous*
    // job left at the same output path.
    let mut touched_sink = false;
    let touched = &mut touched_sink;
    let outcome = (|| -> Result<(StreamStats, Option<Arc<DynamicGraph>>, bool), ServeError> {
        // A job whose token tripped while it sat queued never touches a
        // model instance (or the cache) at all.
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Ok((StreamStats::default(), None, true));
        }
        *touched = true;
        if cache.is_enabled() {
            if let Some(graph) = cache.get(&key) {
                // Hit: replay the cached sequence into the sink (no
                // model instance needed, so the worker's current one is
                // left alone). The determinism contract makes this
                // bit-identical to regenerating
                // (tests/cache_determinism.rs). Cancellation stops the
                // replay at a snapshot boundary exactly like cold
                // generation, so subscribers observe the same frames
                // either way.
                cache_hit = true;
                let (stats, cancelled) = replay_into_sink(&graph, &mut sink, cancel, &trace)?;
                let out = (matches!(sink, GenSink::InMemory) && !cancelled).then_some(graph);
                return Ok((stats, out, cancelled));
            }
        }
        // Miss: make sure this worker's instance matches the artifact
        // (invalidated lazily, only when a miss actually needs another
        // model — the worker still holds at most one instance).
        if instance.as_ref().map(|i| i.fingerprint) != Some(handle.fingerprint()) {
            *instance = None;
            let model = handle.instantiate()?;
            *instance = Some(WorkerInstance { fingerprint: handle.fingerprint(), model });
        }
        let model = &instance.as_ref().expect("just ensured").model;
        // One generation pass: the sink streams per snapshot exactly as
        // with caching off, and the sequence is additionally retained
        // for the cache only while it fits the byte budget.
        let budget = cache.is_enabled().then(|| cache.budget().max_bytes);
        let (stats, graph, cancelled) =
            generate_into_sink(model, t_len, seed, &mut sink, budget, cancel, &trace)?;
        let graph = graph.map(Arc::new);
        if cache.is_enabled() && !cancelled {
            if let Some(g) = &graph {
                // Charge the insertion against the tenant's byte share:
                // once a tenant exceeds it, its *own* LRU entries are
                // evicted first, so it can never push another tenant's
                // working set out of the cache.
                let owner_cap = tenant
                    .cache_byte_share
                    .map(|share| (share * cache.budget().max_bytes as f64) as usize);
                cache.insert_charged(key, Arc::clone(g), tenant.id().clone(), owner_cap);
            }
        }
        let out = if matches!(sink, GenSink::InMemory) && !cancelled { graph } else { None };
        Ok((stats, out, cancelled))
    })();
    let cancelled = matches!(outcome, Ok((_, _, true)));
    if (outcome.is_err() || cancelled) && touched_sink {
        // Never leave a truncated file (header promises t_len snapshots)
        // next to complete ones in the output directory.
        if let GenSink::TsvFile(path) | GenSink::BinaryFile(path) = &sink {
            let _ = std::fs::remove_file(path);
        }
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    match outcome {
        Ok((stats, graph, cancelled)) => JobResult {
            id,
            model: model_name,
            tenant: tenant.id().clone(),
            t_len,
            seed,
            snapshots: stats.snapshots,
            edges: stats.edges,
            bytes: stats.bytes,
            seconds,
            snapshots_per_sec: stats.snapshots as f64 / seconds,
            cache_hit,
            cancelled,
            seq: 0,
            graph,
            error: None,
            stages: StageDurations::default(),
        },
        Err(e) => JobResult {
            id,
            model: model_name,
            tenant: tenant.id().clone(),
            t_len,
            seed,
            snapshots: 0,
            edges: 0,
            bytes: 0,
            seconds,
            snapshots_per_sec: 0.0,
            cache_hit: false,
            cancelled: false,
            seq: 0,
            graph: None,
            error: Some(e.to_string()),
            stages: StageDurations::default(),
        },
    }
}

/// The emitting half of a [`GenSink`], shared by cold generation and
/// cache-hit replay so the two paths can never desynchronize (same
/// writer construction, same per-snapshot flushing, same finish). The
/// in-memory collection of [`GenSink::InMemory`] is handled by the
/// callers — for this writer it is a no-op like [`GenSink::Discard`].
enum SinkWriter<'a> {
    Tsv(TsvStreamWriter<BufWriter<std::fs::File>>),
    Bin(BinaryStreamWriter<BufWriter<std::fs::File>>),
    Callback(&'a mut (dyn FnMut(usize, &Snapshot) + Send)),
    Null,
}

impl<'a> SinkWriter<'a> {
    fn open(
        sink: &'a mut GenSink,
        n: usize,
        f: usize,
        t_len: usize,
    ) -> Result<SinkWriter<'a>, ServeError> {
        Ok(match sink {
            GenSink::TsvFile(path) => {
                let w = BufWriter::new(std::fs::File::create(path)?);
                SinkWriter::Tsv(TsvStreamWriter::new(w, n, f, t_len)?)
            }
            GenSink::BinaryFile(path) => {
                let w = BufWriter::new(std::fs::File::create(path)?);
                SinkWriter::Bin(BinaryStreamWriter::new(w, n, f, t_len)?)
            }
            GenSink::Callback(cb) => SinkWriter::Callback(cb.as_mut()),
            GenSink::InMemory | GenSink::Discard => SinkWriter::Null,
        })
    }

    fn write(&mut self, t: usize, snapshot: &Snapshot) -> Result<(), ServeError> {
        match self {
            SinkWriter::Tsv(w) => w.write_snapshot(snapshot)?,
            SinkWriter::Bin(w) => w.write_snapshot(snapshot)?,
            SinkWriter::Callback(cb) => cb(t, snapshot),
            SinkWriter::Null => {}
        }
        Ok(())
    }

    fn finish(self) -> Result<(), ServeError> {
        match self {
            SinkWriter::Tsv(w) => {
                w.finish()?;
            }
            SinkWriter::Bin(w) => {
                w.finish()?;
            }
            SinkWriter::Callback(_) | SinkWriter::Null => {}
        }
        Ok(())
    }
}

/// Feed a cached sequence through a sink, exactly as generation would
/// have (same writers, same per-snapshot flushing). Returns the
/// delivered stats and whether the replay was cancelled mid-stream —
/// the same snapshot-boundary cancellation points as cold generation.
fn replay_into_sink(
    graph: &DynamicGraph,
    sink: &mut GenSink,
    cancel: Option<&CancelToken>,
    trace: &JobTrace,
) -> Result<(StreamStats, bool), ServeError> {
    let mut stats = StreamStats::default();
    let mut writer = SinkWriter::open(sink, graph.n_nodes(), graph.n_attrs(), graph.t_len())?;
    let mut cancelled = false;
    for (t, s) in graph.iter() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            break;
        }
        writer.write(t, s)?;
        trace.mark_snapshot();
        stats.snapshots += 1;
        stats.edges += s.n_edges();
        stats.bytes += s.approx_bytes();
    }
    if !cancelled {
        writer.finish()?;
    }
    Ok((stats, cancelled))
}

/// How many decoded snapshots may sit between the decode thread and the
/// pipelined encode helper. Depth 2 lets decode run one full step ahead
/// while the helper drains the previous snapshot, without letting an
/// encode-bound job buffer an unbounded number of snapshots.
const PIPELINE_DEPTH: usize = 2;

/// Opportunistic cache/result collection shared by the serial and
/// pipelined generation paths: push snapshots (in `t` order) until the
/// reserved-byte budget is exceeded, unless the caller wants the full
/// result regardless.
struct Collector {
    collected: Option<Vec<Snapshot>>,
    bytes: usize,
    budget: Option<usize>,
    want_result: bool,
}

impl Collector {
    fn new(t_len: usize, budget: Option<usize>, want_result: bool) -> Collector {
        Collector {
            collected: (want_result || budget.is_some()).then(|| Vec::with_capacity(t_len)),
            bytes: 0,
            budget,
            want_result,
        }
    }

    fn push(&mut self, snapshot: Snapshot) {
        if self.collected.is_some() {
            // Reserved accounting to match the cache's admission charge.
            self.bytes += snapshot.approx_bytes_reserved();
            let over = self.budget.is_some_and(|max| self.bytes > max);
            if over && !self.want_result {
                self.collected = None;
            } else if let Some(v) = &mut self.collected {
                v.push(snapshot);
            }
        }
    }
}

/// The encode half of the intra-job pipeline: drain `(t, snapshot)`
/// pairs, write each through the sink writer, mark the trace, account
/// the stream stats, and hand the snapshot back for cache collection.
/// Cancellation is honored at snapshot boundaries on this side too, so
/// a snapshot decoded ahead of a trip is never written.
fn encode_loop(
    mut writer: SinkWriter<'_>,
    rx: Receiver<(usize, Snapshot)>,
    ret: mpsc::Sender<Snapshot>,
    cancel: Option<&CancelToken>,
    trace: &JobTrace,
) -> Result<(StreamStats, bool), ServeError> {
    let mut stats = StreamStats::default();
    let mut cancelled = false;
    while let Ok((t, snapshot)) = rx.recv() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            cancelled = true;
            break;
        }
        writer.write(t, &snapshot)?;
        trace.mark_snapshot();
        stats.snapshots += 1;
        stats.edges += snapshot.n_edges();
        stats.bytes += snapshot.approx_bytes();
        // The decode thread may have dropped its end already (e.g. it
        // finished and is draining); the snapshot is simply discarded.
        let _ = ret.send(snapshot);
    }
    if !cancelled {
        writer.finish()?;
    }
    Ok((stats, cancelled))
}

/// Drive Algorithm 1 one snapshot at a time straight into the sink.
///
/// Real sinks (file writers, streaming callbacks) run **pipelined**:
/// snapshot `t−1` is encoded/streamed (EVT framing, TSV/binary encode,
/// `approx_bytes` accounting) on a scoped helper thread while the model
/// decodes snapshot `t`. Output bytes are unaffected — the helper writes
/// in submission order — and the decode thread's cumulative stall waiting
/// on the helper is recorded as the job's `encode_wait` stage. Null
/// sinks ([`GenSink::InMemory`]/[`GenSink::Discard`]) have no encode
/// cost and keep the serial loop.
///
/// The full sequence is materialized only when the caller needs it: for
/// [`GenSink::InMemory`] (the job asked for it), or opportunistically
/// for the snapshot cache when `collect_budget` is set — in which case
/// collection is abandoned the moment the accumulated reserved bytes
/// exceed the budget, so an uncacheable (oversized) sequence never
/// breaks the streaming sinks' memory bound.
fn generate_into_sink(
    model: &Vrdag,
    t_len: usize,
    seed: u64,
    sink: &mut GenSink,
    collect_budget: Option<usize>,
    cancel: Option<&CancelToken>,
    trace: &JobTrace,
) -> Result<(StreamStats, Option<DynamicGraph>, bool), ServeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = model.begin_generation(&mut rng)?;
    let n = model.n_nodes().expect("begin_generation succeeded");
    let f = model.n_attrs().expect("begin_generation succeeded");
    let want_result = matches!(sink, GenSink::InMemory);
    let mut collector = Collector::new(t_len, collect_budget, want_result);
    let mut writer = SinkWriter::open(sink, n, f, t_len)?;

    if matches!(writer, SinkWriter::Null) {
        // Serial path: nothing to encode, so a helper thread would be
        // pure overhead.
        let mut stats = StreamStats::default();
        let mut cancelled = false;
        for t in 0..t_len {
            // Cooperative cancellation at snapshot boundaries: the
            // stepper is abandoned, the partial collection is discarded
            // (a cancelled sequence must never populate the cache), and
            // the caller removes any partial file output.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                cancelled = true;
                break;
            }
            let snapshot = state.step(model);
            stats.snapshots += 1;
            stats.edges += snapshot.n_edges();
            stats.bytes += snapshot.approx_bytes();
            writer.write(t, &snapshot)?;
            trace.mark_snapshot();
            collector.push(snapshot);
        }
        if !cancelled {
            writer.finish()?;
        }
        let collected = (!cancelled).then_some(collector.collected).flatten();
        return Ok((stats, collected.map(DynamicGraph::new), cancelled));
    }

    // Pipelined path: the helper owns the writer and the stats; the
    // decode thread steps the model and hands snapshots over a bounded
    // channel, collecting them back (in order) for the cache.
    let (snap_tx, snap_rx) = mpsc::sync_channel::<(usize, Snapshot)>(PIPELINE_DEPTH);
    let (ret_tx, ret_rx) = mpsc::channel::<Snapshot>();
    let (stats, cancelled) =
        std::thread::scope(|scope| -> Result<(StreamStats, bool), ServeError> {
            let encoder = scope.spawn(move || encode_loop(writer, snap_rx, ret_tx, cancel, trace));
            let mut decode_cancelled = false;
            for t in 0..t_len {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    decode_cancelled = true;
                    break;
                }
                let snapshot = state.step(model);
                let handoff = Instant::now();
                if snap_tx.send((t, snapshot)).is_err() {
                    // The helper bailed (I/O error or cancellation
                    // observed on its side): stop decoding, the join
                    // below surfaces why.
                    break;
                }
                trace.add_encode_wait(handoff.elapsed());
                while let Ok(s) = ret_rx.try_recv() {
                    collector.push(s);
                }
            }
            drop(snap_tx);
            // Drain the remaining written snapshots while the helper
            // finishes; recv fails once the helper drops its sender.
            while let Ok(s) = ret_rx.recv() {
                collector.push(s);
            }
            match encoder.join() {
                Ok(outcome) => {
                    let (stats, write_cancelled) = outcome?;
                    Ok((stats, write_cancelled || decode_cancelled))
                }
                // A panicking Callback sink unwinds on the helper:
                // re-raise it on the worker thread so the existing
                // per-job panic containment (and its partial-file
                // cleanup) applies unchanged.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })?;
    let collected = (!cancelled).then_some(collector.collected).flatten();
    Ok((stats, collected.map(DynamicGraph::new), cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicUsize;
    use vrdag::VrdagConfig;

    fn fitted(fit_seed: u64) -> Vrdag {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), fit_seed);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(fit_seed);
        m.fit(&g, &mut rng).unwrap();
        m
    }

    fn registry_with_tiny() -> (ModelRegistry, Vrdag) {
        let m = fitted(3);
        let registry = ModelRegistry::new();
        registry.register("tiny", &m).unwrap();
        (registry, m)
    }

    /// Deterministic blocker: a callback job that signals when it starts
    /// and then parks until released, pinning one worker.
    fn blocking_request(
        model: &str,
        seed: u64,
        started_tx: std::sync::mpsc::Sender<()>,
        release_rx: std::sync::mpsc::Receiver<()>,
    ) -> GenRequest {
        let mut fired = false;
        GenRequest::new(
            model,
            1,
            seed,
            GenSink::Callback(Box::new(move |_, _| {
                if !fired {
                    fired = true;
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
            })),
        )
    }

    #[test]
    fn submit_is_non_blocking_and_tickets_deliver_results() {
        let (registry, model) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 2).unwrap();
        // Submitting never waits for generation: collect all tickets
        // first, then wait on them in any order.
        let tickets: Vec<Ticket> = (0..4u64)
            .map(|seed| handle.submit(GenRequest::new("tiny", 3, seed, GenSink::InMemory)).unwrap())
            .collect();
        for ticket in tickets.into_iter().rev() {
            let seed = ticket.seed();
            let result = ticket.wait().unwrap();
            assert!(result.is_ok(), "{:?}", result.error);
            let mut rng = StdRng::seed_from_u64(seed);
            let expected = model.generate(3, &mut rng).unwrap();
            assert_eq!(result.graph.as_deref().unwrap(), &expected, "seed {seed}");
            assert!(result.seq >= 1);
        }
        let stats = handle.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.dropped_jobs, 0);
    }

    #[test]
    fn handle_is_clonable_and_usable_from_threads() {
        let (registry, model) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 2).unwrap();
        let threads: Vec<_> = (0..3u64)
            .map(|seed| {
                let handle = handle.clone();
                std::thread::spawn(move || {
                    let ticket =
                        handle.submit(GenRequest::new("tiny", 2, seed, GenSink::InMemory)).unwrap();
                    ticket.wait().unwrap()
                })
            })
            .collect();
        for t in threads {
            let result = t.join().unwrap();
            assert!(result.is_ok());
            let mut rng = StdRng::seed_from_u64(result.seed);
            let expected = model.generate(2, &mut rng).unwrap();
            assert_eq!(result.graph.as_deref().unwrap(), &expected);
        }
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let mut ticket = handle.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)).unwrap();
        // Queued behind the pinned worker: polling sees nothing yet.
        assert!(ticket.try_wait().unwrap().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(10)).unwrap().is_none());
        release_tx.send(()).unwrap();
        let result = loop {
            if let Some(r) = ticket.wait_timeout(Duration::from_secs(30)).unwrap() {
                break r;
            }
        };
        assert!(result.is_ok());
        blocker.wait().unwrap();
    }

    #[test]
    fn stats_report_latency_percentiles() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 2).unwrap();
        let tickets: Vec<Ticket> = (0..6u64)
            .map(|seed| handle.submit(GenRequest::new("tiny", 2, seed, GenSink::Discard)).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.latency.samples, 6);
        assert_eq!(stats.latency.window, 6);
        assert!(stats.latency.p50_seconds > 0.0);
        assert!(stats.latency.p50_seconds <= stats.latency.p95_seconds);
        assert!(stats.latency.p95_seconds <= stats.latency.p99_seconds);
        assert!(stats.latency.p99_seconds <= stats.latency.max_seconds);
        let rendered = stats.render();
        assert!(rendered.contains("latency: p50"), "{rendered}");
    }

    #[test]
    fn abort_counts_dropped_jobs_and_tickets_observe_it() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let queued: Vec<Ticket> = (1..4u64)
            .map(|seed| handle.submit(GenRequest::new("tiny", 1, seed, GenSink::Discard)).unwrap())
            .collect();
        handle.abort();
        release_tx.send(()).unwrap();
        // The in-flight blocker still completes; the queued jobs were
        // discarded, observable both on the tickets and in the stats.
        assert!(blocker.wait().unwrap().is_ok());
        for ticket in queued {
            assert!(matches!(ticket.wait(), Err(ServeError::JobDropped)));
        }
        handle.join_workers();
        let stats = handle.stats();
        assert_eq!(stats.dropped_jobs, 3);
        assert_eq!(stats.completed, 1);
        assert!(matches!(
            handle.submit(GenRequest::new("tiny", 1, 9, GenSink::Discard)),
            Err(ServeError::SchedulerClosed)
        ));
    }

    #[test]
    fn service_stays_live_across_waves_and_stats_accumulate() {
        // The core outlives any single "batch": submit, drain, submit
        // again — no re-construction, stats keep accumulating.
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 2, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        for wave in 0..3u64 {
            let tickets: Vec<Ticket> = (0..2u64)
                .map(|seed| {
                    handle.submit(GenRequest::new("tiny", 2, seed, GenSink::InMemory)).unwrap()
                })
                .collect();
            for t in tickets {
                assert!(t.wait().unwrap().is_ok());
            }
            let stats = handle.stats();
            assert_eq!(stats.completed, 2 * (wave + 1));
        }
        let stats = handle.shutdown();
        assert_eq!(stats.completed, 6);
        // Waves 2 and 3 were served from the cache.
        assert_eq!(stats.cache.misses, 2);
        assert_eq!(stats.cache.hits, 4);
    }

    #[test]
    fn dropping_the_last_handle_aborts_and_joins() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 2).unwrap();
        let clone = handle.clone();
        drop(handle);
        // The clone keeps the core alive and working.
        let t = clone.submit(GenRequest::new("tiny", 1, 0, GenSink::Discard)).unwrap();
        assert!(t.wait().unwrap().is_ok());
        drop(clone); // joins workers; must not hang
    }

    #[test]
    fn intra_thread_clamp_never_oversubscribes() {
        let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        // As many workers as cores: each job gets exactly one thread no
        // matter how many were requested.
        assert_eq!(effective_intra_threads(host, Some(8)), 1.max(host / host));
        // A single worker may use the request, up to the host.
        let one = effective_intra_threads(1, Some(4));
        assert!(one >= 1 && one <= 4.max(host));
        // workers × intra_threads never exceeds the host (workers ≤ host).
        for workers in 1..=host {
            let eff = effective_intra_threads(workers, Some(usize::MAX));
            assert!(
                workers * eff <= host,
                "workers {workers} × intra {eff} oversubscribes host {host}"
            );
        }
        // Defaults are at least 1 and the knob is surfaced on the handle.
        assert!(effective_intra_threads(2, None) >= 1);
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, intra_threads: Some(3), ..Default::default() },
        )
        .unwrap();
        assert_eq!(handle.intra_threads(), effective_intra_threads(1, Some(3)));
        assert!(handle.intra_threads() >= 1);
    }

    #[test]
    fn pipelined_callback_receives_snapshots_in_order_and_bit_identical() {
        // Callback sinks run through the encode helper thread; frames
        // must still arrive strictly in t order with the exact per-step
        // content of a direct generate() call.
        let (registry, model) = registry_with_tiny();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, intra_threads: Some(4), ..Default::default() },
        )
        .unwrap();
        let seen: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_in_cb = Arc::clone(&seen);
        let ticket = handle
            .submit(GenRequest::new(
                "tiny",
                6,
                42,
                GenSink::Callback(Box::new(move |t, s| {
                    seen_in_cb.lock().unwrap().push((t, s.n_edges()));
                })),
            ))
            .unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.is_ok(), "{:?}", result.error);
        assert!(result.stages.generation.is_some());
        let mut rng = StdRng::seed_from_u64(42);
        let expected = model.generate(6, &mut rng).unwrap();
        let frames = seen.lock().unwrap();
        let want: Vec<(usize, usize)> = expected.iter().map(|(t, s)| (t, s.n_edges())).collect();
        assert_eq!(*frames, want, "pipelined frames out of order or diverged");
    }

    #[test]
    fn panicking_callback_sink_fails_the_job_not_the_worker() {
        // A user callback that panics must be contained to its job: the
        // single worker survives, the panicking job resolves with a
        // typed error, and jobs queued behind it still run (a dead
        // worker would strand their reply channels forever).
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let bomb = handle
            .submit(GenRequest::new(
                "tiny",
                1,
                0,
                GenSink::Callback(Box::new(|_, _| panic!("sink exploded"))),
            ))
            .unwrap();
        let follow = handle.submit(GenRequest::new("tiny", 2, 1, GenSink::InMemory)).unwrap();
        let failed = bomb.wait().unwrap();
        assert!(!failed.is_ok());
        assert!(failed.error.as_deref().unwrap().contains("sink exploded"), "{:?}", failed.error);
        let ok = follow.wait().unwrap();
        assert!(ok.is_ok(), "{:?}", ok.error);
        let stats = handle.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn cancel_while_queued_short_circuits_without_generating() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let token = CancelToken::new();
        let delivered = Arc::new(AtomicUsize::new(0));
        let delivered_in_cb = Arc::clone(&delivered);
        let victim = handle
            .submit(
                GenRequest::new(
                    "tiny",
                    3,
                    1,
                    GenSink::Callback(Box::new(move |_, _| {
                        delivered_in_cb.fetch_add(1, Ordering::SeqCst);
                    })),
                )
                .with_cancel(token.clone()),
            )
            .unwrap();
        token.cancel();
        release_tx.send(()).unwrap();
        blocker.wait().unwrap();
        let result = victim.wait().unwrap();
        assert!(result.cancelled);
        assert!(result.is_ok(), "cancellation is not a failure: {:?}", result.error);
        assert_eq!(result.snapshots, 0, "queued-cancelled jobs never generate");
        assert_eq!(delivered.load(Ordering::SeqCst), 0);
        let stats = handle.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn cancel_mid_generation_stops_at_a_snapshot_boundary() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, cache: CacheBudget::entries(8), ..Default::default() },
        )
        .unwrap();
        let token = CancelToken::new();
        let t_len = 500usize;
        // Trip the token from inside the sink after two snapshots: the
        // loop must stop at the next boundary, deliver exactly 2, and
        // leave the cache unpopulated (a partial sequence is not a
        // cacheable value).
        let token_in_cb = token.clone();
        let ticket = handle
            .submit(
                GenRequest::new(
                    "tiny",
                    t_len,
                    0,
                    GenSink::Callback(Box::new(move |t, _| {
                        if t == 1 {
                            token_in_cb.cancel();
                        }
                    })),
                )
                .with_cancel(token),
            )
            .unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.cancelled);
        assert_eq!(result.snapshots, 2, "stopped at the boundary after the trip");
        assert!(result.is_ok());
        assert_eq!(handle.cache().stats().entries, 0, "cancelled runs never enter the cache");
        // The same key afterwards generates in full.
        let full = handle
            .submit(GenRequest::new("tiny", 3, 0, GenSink::InMemory))
            .unwrap()
            .wait()
            .unwrap();
        assert!(full.is_ok());
        assert!(!full.cancelled);
        assert_eq!(full.snapshots, 3);
    }

    #[test]
    fn cancelled_file_sink_removes_partial_output_but_spares_untouched_paths() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let dir = std::env::temp_dir().join("vrdag_cancel_test");
        std::fs::create_dir_all(&dir).unwrap();

        // A job cancelled *mid-generation* removes its own partial file:
        // wait until the streaming writer has created the file (the job
        // is provably past the queued-shortcut), then trip the token.
        let partial = dir.join("partial.tsv");
        let token = CancelToken::new();
        let ticket = handle
            .submit(
                GenRequest::new("tiny", 2000, 0, GenSink::TsvFile(partial.clone()))
                    .with_cancel(token.clone()),
            )
            .unwrap();
        for _ in 0..2000 {
            if partial.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(partial.exists(), "the job never started writing");
        token.cancel();
        let result = ticket.wait().unwrap();
        assert!(result.cancelled);
        assert!(!partial.exists(), "no truncated file may survive a cancellation");

        // A job cancelled while still *queued* never opened its sink and
        // must not delete whatever a previous job wrote at that path.
        let existing = dir.join("existing.tsv");
        std::fs::write(&existing, b"previous job's complete output").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let ticket = handle
            .submit(
                GenRequest::new("tiny", 4, 0, GenSink::TsvFile(existing.clone()))
                    .with_cancel(token),
            )
            .unwrap();
        let result = ticket.wait().unwrap();
        assert!(result.cancelled);
        assert_eq!(
            std::fs::read(&existing).unwrap(),
            b"previous job's complete output",
            "a queued-cancelled job must not touch pre-existing files"
        );
    }

    fn two_tier_tenants() -> TenantRegistry {
        TenantRegistry::builder()
            .tenant(
                crate::tenant::Tenant::new(TenantId::new("gold").unwrap()).with_weight(3),
                "tok-gold",
            )
            .unwrap()
            .tenant(crate::tenant::Tenant::new(TenantId::new("bronze").unwrap()), "tok-bronze")
            .unwrap()
            .build()
    }

    #[test]
    fn weighted_fair_scheduling_drains_tenants_in_proportion() {
        // One worker, cache off, weights 3:1, identical job mixes. While
        // both lanes hold work, completions must interleave ~3 gold per
        // bronze — regardless of submission order (bronze submits
        // first).
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, tenants: two_tier_tenants(), ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let per_tenant = 16usize;
        let mut tickets = Vec::new();
        for i in 0..per_tenant as u64 {
            for id in ["bronze", "gold"] {
                tickets.push(
                    handle
                        .submit(
                            GenRequest::new(
                                "tiny",
                                1,
                                100 + 2 * i + (id == "gold") as u64,
                                GenSink::Discard,
                            )
                            .with_tenant(TenantId::new(id).unwrap()),
                        )
                        .unwrap(),
                );
            }
        }
        release_tx.send(()).unwrap();
        blocker.wait().unwrap();
        let mut results: Vec<JobResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        results.sort_by_key(|r| r.seq);
        // While both lanes are non-empty (the first 2 * min window), the
        // DRR pattern is one bronze per three gold.
        let window = &results[..8];
        let gold = window.iter().filter(|r| r.tenant.as_str() == "gold").count();
        let bronze = window.len() - gold;
        assert!(
            (5..=7).contains(&gold) && bronze >= 1,
            "expected ~6:2 gold:bronze in the first 8 completions, got {gold}:{bronze}"
        );
        let window = &results[..16];
        let gold = window.iter().filter(|r| r.tenant.as_str() == "gold").count();
        assert!(
            (11..=13).contains(&gold),
            "expected ~12:4 gold:bronze in the first 16 completions, got {gold}"
        );
        // Everything eventually completes for both tenants.
        let stats = handle.shutdown();
        assert_eq!(stats.completed as usize, 1 + 2 * per_tenant);
        let row = |id: &str| stats.tenants.iter().find(|t| t.id == id).unwrap().clone();
        assert_eq!(row("gold").completed as usize, per_tenant);
        assert_eq!(row("bronze").completed as usize, per_tenant);
        assert_eq!(row("gold").weight, 3);
        assert!(row("gold").bytes_streamed > 0);
        assert!(row("gold").p50_seconds > 0.0);
        assert!(stats.render().contains("tenants:"), "{}", stats.render());
    }

    #[test]
    fn heavy_jobs_cost_more_than_light_ones_in_the_fair_share() {
        // Equal weights, but tenant `gold` submits t=8 jobs while
        // `bronze` submits t=1 jobs: DRR costs by snapshots, so bronze
        // must complete ~8 jobs per gold job instead of alternating.
        let (registry, _) = registry_with_tiny();
        let tenants = TenantRegistry::builder()
            .tenant(crate::tenant::Tenant::new(TenantId::new("gold").unwrap()), "tok-gold")
            .unwrap()
            .tenant(crate::tenant::Tenant::new(TenantId::new("bronze").unwrap()), "tok-bronze")
            .unwrap()
            .build();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, tenants, ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let mut tickets = Vec::new();
        for i in 0..4u64 {
            tickets.push(
                handle
                    .submit(
                        GenRequest::new("tiny", 8, 200 + i, GenSink::Discard)
                            .with_tenant(TenantId::new("gold").unwrap()),
                    )
                    .unwrap(),
            );
        }
        for i in 0..16u64 {
            tickets.push(
                handle
                    .submit(
                        GenRequest::new("tiny", 1, 300 + i, GenSink::Discard)
                            .with_tenant(TenantId::new("bronze").unwrap()),
                    )
                    .unwrap(),
            );
        }
        release_tx.send(()).unwrap();
        blocker.wait().unwrap();
        let mut results: Vec<JobResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        results.sort_by_key(|r| r.seq);
        // In the first 9 completions (one gold 8-snapshot job's worth of
        // fair share each) bronze must have landed ~8 jobs.
        let window = &results[..9];
        let bronze = window.iter().filter(|r| r.tenant.as_str() == "bronze").count();
        assert!(
            bronze >= 6,
            "snapshot-cost fairness violated: only {bronze} bronze jobs in the first 9"
        );
    }

    #[test]
    fn tenant_quotas_reject_typed_and_leave_others_unaffected() {
        let (registry, _) = registry_with_tiny();
        let tenants = TenantRegistry::builder()
            .tenant(
                crate::tenant::Tenant::new(TenantId::new("capped").unwrap()).with_max_inflight(2),
                "tok-capped",
            )
            .unwrap()
            .build();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, tenants, ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let capped = TenantId::new("capped").unwrap();
        let a = handle
            .submit(GenRequest::new("tiny", 1, 1, GenSink::Discard).with_tenant(capped.clone()))
            .unwrap();
        let b = handle
            .submit(GenRequest::new("tiny", 1, 2, GenSink::Discard).with_tenant(capped.clone()))
            .unwrap();
        // Third outstanding job breaches max_inflight = 2 (queued +
        // executing count together).
        match handle
            .submit(GenRequest::new("tiny", 1, 3, GenSink::Discard).with_tenant(capped.clone()))
        {
            Err(ServeError::QuotaExceeded { tenant, quota, cap }) => {
                assert_eq!(tenant, "capped");
                assert_eq!(quota, "max_inflight");
                assert_eq!(cap, 2);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // The anonymous tenant is untouched by capped's quota.
        let anon = handle.submit(GenRequest::new("tiny", 1, 4, GenSink::Discard)).unwrap();
        release_tx.send(()).unwrap();
        blocker.wait().unwrap();
        assert!(a.wait().unwrap().is_ok());
        assert!(b.wait().unwrap().is_ok());
        assert!(anon.wait().unwrap().is_ok());
        // With the backlog drained, the quota frees up again.
        let retry = handle
            .submit(GenRequest::new("tiny", 1, 5, GenSink::Discard).with_tenant(capped.clone()))
            .unwrap();
        assert!(retry.wait().unwrap().is_ok());
        let stats = handle.shutdown();
        let row = stats.tenants.iter().find(|t| t.id == "capped").unwrap();
        assert_eq!(row.submitted, 3);
        assert_eq!(row.completed, 3);
        assert_eq!(row.rejected, 1);
    }

    #[test]
    fn tenant_queue_share_is_a_fraction_of_the_global_cap() {
        let (registry, _) = registry_with_tiny();
        let tenants = TenantRegistry::builder()
            .tenant(
                crate::tenant::Tenant::new(TenantId::new("half").unwrap())
                    .with_max_queue_share(0.5),
                "tok-half",
            )
            .unwrap()
            .build();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, max_queue_depth: Some(4), tenants, ..Default::default() },
        )
        .unwrap();
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let blocker = handle.submit(blocking_request("tiny", 0, started_tx, release_rx)).unwrap();
        started_rx.recv().unwrap();
        let half = TenantId::new("half").unwrap();
        let mut held = Vec::new();
        for seed in 0..2u64 {
            held.push(
                handle
                    .submit(
                        GenRequest::new("tiny", 1, seed, GenSink::Discard)
                            .with_tenant(half.clone()),
                    )
                    .unwrap(),
            );
        }
        // Share 0.5 of cap 4 = 2 queued slots: the third is refused even
        // though the global queue still has room.
        match handle
            .submit(GenRequest::new("tiny", 1, 9, GenSink::Discard).with_tenant(half.clone()))
        {
            Err(ServeError::QuotaExceeded { quota: "queue_share", cap: 2, .. }) => {}
            other => panic!("expected queue_share QuotaExceeded, got {other:?}"),
        }
        // Anonymous fills the remaining global room, then QueueFull.
        held.push(handle.submit(GenRequest::new("tiny", 1, 10, GenSink::Discard)).unwrap());
        held.push(handle.submit(GenRequest::new("tiny", 1, 11, GenSink::Discard)).unwrap());
        assert!(matches!(
            handle.submit(GenRequest::new("tiny", 1, 12, GenSink::Discard)),
            Err(ServeError::QueueFull { .. })
        ));
        release_tx.send(()).unwrap();
        blocker.wait().unwrap();
        for t in held {
            assert!(t.wait().unwrap().is_ok());
        }
    }

    #[test]
    fn tenant_rate_limit_rejects_and_refunds_on_other_failures() {
        let (registry, _) = registry_with_tiny();
        let tenants = TenantRegistry::builder()
            .tenant(
                crate::tenant::Tenant::new(TenantId::new("slow").unwrap())
                    .with_rate_limit(0.0, 2.0),
                "tok-slow",
            )
            .unwrap()
            .build();
        let handle = ServeHandle::with_config(
            registry,
            ServeConfig { workers: 1, tenants, ..Default::default() },
        )
        .unwrap();
        let slow = TenantId::new("slow").unwrap();
        // A submit rejected for another reason (unknown model) must not
        // burn rate budget — the burst of 2 below is still intact.
        assert!(matches!(
            handle
                .submit(GenRequest::new("ghost", 1, 0, GenSink::Discard).with_tenant(slow.clone())),
            Err(ServeError::UnknownModel(_))
        ));
        let a = handle
            .submit(GenRequest::new("tiny", 1, 1, GenSink::Discard).with_tenant(slow.clone()))
            .unwrap();
        let b = handle
            .submit(GenRequest::new("tiny", 1, 2, GenSink::Discard).with_tenant(slow.clone()))
            .unwrap();
        match handle
            .submit(GenRequest::new("tiny", 1, 3, GenSink::Discard).with_tenant(slow.clone()))
        {
            Err(ServeError::QuotaExceeded { quota: "rate", .. }) => {}
            other => panic!("expected rate QuotaExceeded, got {other:?}"),
        }
        assert!(a.wait().unwrap().is_ok());
        assert!(b.wait().unwrap().is_ok());
    }

    #[test]
    fn unknown_tenant_is_a_typed_submit_error() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        assert!(matches!(
            handle.submit(
                GenRequest::new("tiny", 1, 0, GenSink::Discard)
                    .with_tenant(TenantId::new("ghost").unwrap())
            ),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn dropped_ticket_does_not_stall_the_worker() {
        let (registry, _) = registry_with_tiny();
        let handle = ServeHandle::new(registry, 1).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in_cb = Arc::clone(&ran);
        let ticket = handle
            .submit(GenRequest::new(
                "tiny",
                1,
                0,
                GenSink::Callback(Box::new(move |_, _| {
                    ran_in_cb.fetch_add(1, Ordering::SeqCst);
                })),
            ))
            .unwrap();
        drop(ticket); // fire-and-forget
        let follow = handle.submit(GenRequest::new("tiny", 1, 1, GenSink::Discard)).unwrap();
        assert!(follow.wait().unwrap().is_ok());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "forgotten job still ran");
        assert_eq!(handle.stats().completed, 2);
    }
}

//! TCP frontend for the line protocol of [`protocol`](crate::protocol):
//! a `std::net` listener (one thread per connection — no async runtime
//! in this offline tree) that parses newline-delimited requests, drives
//! the shared [`ServeHandle`], and routes each streamed reply back to
//! the connection that asked for it.
//!
//! The frontend is deliberately thin: all scheduling, caching,
//! coalescing, and admission control live in the service core. What it
//! owns is *framing* (capped line reads, length-prefixed payloads) and
//! *error translation* — every [`ServeError`] becomes a structured
//! `ERR <code> …` line on the same connection, so a saturated queue
//! ([`ServeError::QueueFull`]) is a backpressure *response*, never a
//! dropped connection.

use crate::core::{GenRequest, GenSink, ServeHandle};
use crate::protocol::{
    parse_reply, parse_request, ErrorCode, GenSpec, ProtocolError, ReplyHeader, Request,
    WireFormat, MAX_LINE_BYTES,
};
use crate::ServeError;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vrdag_graph::DynamicGraph;

/// One line read from the wire, or the reasons there is none.
enum ReadLine {
    Line(Vec<u8>),
    /// The line blew past [`MAX_LINE_BYTES`]; the overflow has been
    /// consumed up to (and including) its newline so the connection can
    /// keep going.
    TooLong { len: usize },
    Eof,
}

/// Read one `\n`-terminated line, enforcing the protocol's line cap
/// without ever buffering an unbounded line in memory. A final line
/// without a terminator (client shut down its write side) still counts.
fn read_capped_line(reader: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut line = Vec::new();
    let mut overflow = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: line.len() + overflow }
            } else if line.is_empty() {
                ReadLine::Eof
            } else {
                ReadLine::Line(line)
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if overflow == 0 {
            let keep = take - usize::from(newline.is_some());
            if line.len() + keep <= MAX_LINE_BYTES {
                line.extend_from_slice(&buf[..keep]);
            } else {
                overflow = line.len() + keep;
                line.clear();
            }
        } else {
            overflow += take - usize::from(newline.is_some());
        }
        let done = newline.is_some();
        reader.consume(take);
        if done {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: overflow }
            } else {
                ReadLine::Line(line)
            });
        }
    }
}

/// Serialize `graph` in the requested wire format. TSV is byte-identical
/// to `vrdag_graph::io::write_tsv`; binary to the streaming writer — so
/// a TCP reply equals what a direct [`ServeHandle`] caller would encode.
fn encode_graph(graph: &DynamicGraph, fmt: WireFormat) -> Result<Vec<u8>, ServeError> {
    match fmt {
        WireFormat::Tsv => Ok(vrdag_graph::io::write_tsv(graph, Vec::new())?),
        WireFormat::Bin => Ok(vrdag_graph::io::encode_binary(graph).as_slice().to_vec()),
    }
}

/// Translate a service error into its wire code; the message is the
/// error's display form except for `QueueFull`, which gets structured
/// `depth=… cap=…` fields a client can parse and back off on.
fn translate(err: &ServeError) -> (ErrorCode, String) {
    match err {
        ServeError::QueueFull { depth, cap } => {
            (ErrorCode::QueueFull, format!("depth={depth} cap={cap}"))
        }
        ServeError::UnknownModel(name) => (ErrorCode::UnknownModel, format!("{name:?}")),
        ServeError::InvalidRequest(msg) => (ErrorCode::InvalidRequest, msg.clone()),
        ServeError::SchedulerClosed | ServeError::JobDropped => {
            (ErrorCode::Shutdown, err.to_string())
        }
        other => (ErrorCode::Internal, other.to_string()),
    }
}

fn write_header(w: &mut impl Write, header: &ReplyHeader) -> io::Result<()> {
    w.write_all(header.to_line().as_bytes())?;
    w.write_all(b"\n")
}

fn write_err(w: &mut impl Write, code: ErrorCode, message: impl Into<String>) -> io::Result<()> {
    write_header(w, &ReplyHeader::Err { code, message: message.into() })
}

/// Handle one parsed request; returns `false` when the connection should
/// close (QUIT).
fn handle_request(
    handle: &ServeHandle,
    req: Request,
    w: &mut impl Write,
) -> io::Result<bool> {
    match req {
        Request::Gen(spec) => {
            let GenSpec { model, t_len, seed, fmt, priority } = spec;
            let submitted = handle.submit(
                GenRequest::new(model, t_len, seed, GenSink::InMemory).with_priority(priority),
            );
            let ticket = match submitted {
                Ok(ticket) => ticket,
                Err(e) => {
                    let (code, message) = translate(&e);
                    write_err(w, code, message)?;
                    return Ok(true);
                }
            };
            let id = ticket.id();
            let result = match ticket.wait() {
                Ok(result) => result,
                Err(e) => {
                    let (code, message) = translate(&e);
                    write_err(w, code, message)?;
                    return Ok(true);
                }
            };
            if let Some(error) = &result.error {
                write_err(w, ErrorCode::Internal, error.clone())?;
                return Ok(true);
            }
            let graph = result.graph.as_deref().expect("InMemory success carries the graph");
            let payload = match encode_graph(graph, fmt) {
                Ok(payload) => payload,
                Err(e) => {
                    write_err(w, ErrorCode::Internal, e.to_string())?;
                    return Ok(true);
                }
            };
            write_header(
                w,
                &ReplyHeader::Gen {
                    id: id.0,
                    model: result.model.clone(),
                    t_len: result.t_len,
                    seed: result.seed,
                    fmt,
                    snapshots: result.snapshots,
                    edges: result.edges,
                    cache_hit: result.cache_hit,
                    bytes: payload.len(),
                },
            )?;
            w.write_all(&payload)?;
            Ok(true)
        }
        Request::Stats => {
            let payload = handle.stats().render().into_bytes();
            write_header(w, &ReplyHeader::Stats { bytes: payload.len() })?;
            w.write_all(&payload)?;
            Ok(true)
        }
        Request::Models => {
            let mut listing = String::new();
            for h in handle.registry().handles() {
                use std::fmt::Write as _;
                let _ = writeln!(
                    listing,
                    "{} nodes={} attrs={} size={} fingerprint={:016x}",
                    h.name(),
                    h.n_nodes(),
                    h.n_attrs(),
                    h.size_bytes(),
                    h.fingerprint(),
                );
            }
            let payload = listing.into_bytes();
            write_header(w, &ReplyHeader::Models { bytes: payload.len() })?;
            w.write_all(&payload)?;
            Ok(true)
        }
        Request::Ping => {
            write_header(w, &ReplyHeader::Pong)?;
            Ok(true)
        }
        Request::Quit => {
            write_header(w, &ReplyHeader::Bye)?;
            Ok(false)
        }
    }
}

/// One connection: read a line, answer it, repeat. Requests on a single
/// connection are served in order (pipeline across connections for
/// parallelism); malformed lines get an `ERR` and the loop continues.
fn serve_connection(handle: ServeHandle, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let outcome = (|| -> io::Result<bool> {
            match read_capped_line(&mut reader)? {
                ReadLine::Eof => Ok(false),
                ReadLine::TooLong { len } => {
                    write_err(
                        &mut writer,
                        ErrorCode::LineTooLong,
                        ProtocolError::LineTooLong { len }.to_string(),
                    )?;
                    writer.flush()?;
                    Ok(true)
                }
                ReadLine::Line(raw) => {
                    let keep_going = match String::from_utf8(raw) {
                        Err(_) => {
                            write_err(
                                &mut writer,
                                ErrorCode::BadRequest,
                                ProtocolError::NotUtf8.to_string(),
                            )?;
                            true
                        }
                        Ok(line) => match parse_request(&line) {
                            // An empty line is a keep-alive no-op, not an error.
                            Err(ProtocolError::Empty) => true,
                            Err(e) => {
                                write_err(&mut writer, e.code(), e.to_string())?;
                                true
                            }
                            Ok(req) => handle_request(&handle, req, &mut writer)?,
                        },
                    };
                    writer.flush()?;
                    Ok(keep_going)
                }
            }
        })();
        match outcome {
            Ok(true) => {}
            // Clean close (EOF / QUIT) or transport failure: either way
            // this connection is done.
            Ok(false) | Err(_) => break,
        }
    }
    // Send the FIN explicitly: the accept loop's tracked peer clone
    // keeps the file descriptor alive until it is reaped, so merely
    // dropping our reader/writer would leave the client waiting for an
    // EOF that never comes. `shutdown` acts on the socket itself, across
    // every clone.
    if let Ok(stream) = writer.into_inner() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Live connections: the peer stream (for severing on shutdown) and the
/// handler thread serving it.
type ConnTable = Vec<(TcpStream, std::thread::JoinHandle<()>)>;

/// The TCP line-protocol frontend: accepts connections on its own
/// thread, one handler thread per connection, all submitting into the
/// shared service core. Dropping (or [`shutdown`](Frontend::shutdown))
/// stops accepting, severs open connections, and joins every thread —
/// the core itself stays up for other handles.
pub struct Frontend {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<ConnTable>>,
}

impl Frontend {
    /// Bind `addr` (use port 0 for an ephemeral port, see
    /// [`local_addr`](Self::local_addr)) and start accepting.
    pub fn bind(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<Frontend> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // The accept loop polls a non-blocking listener instead of
        // parking in accept(2): shutdown never depends on being able to
        // connect back to the bind address (interface-specific binds or
        // local firewalls would leave a parked accept thread unjoinable
        // forever), and transient accept errors (EMFILE when the
        // thread-per-connection model runs out of descriptors) back off
        // instead of busy-spinning the exact moment the host is
        // saturated.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<ConnTable>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("vrdag-serve-accept".to_string())
                .spawn(move || {
                    const POLL: Duration = Duration::from_millis(10);
                    while !stop.load(Ordering::SeqCst) {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                                continue;
                            }
                            Err(_) => {
                                std::thread::sleep(POLL);
                                continue;
                            }
                        };
                        // Connection handlers use blocking reads; not
                        // every platform resets the inherited
                        // non-blocking flag on accept.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let Ok(peer) = stream.try_clone() else { continue };
                        let handle = handle.clone();
                        let worker = std::thread::Builder::new()
                            .name("vrdag-serve-conn".to_string())
                            .spawn(move || serve_connection(handle, stream))
                            .expect("spawn connection thread");
                        let mut table = conns.lock().expect("conn table poisoned");
                        // Reap finished connections so the table tracks
                        // live ones, not connection history.
                        table.retain(|(_, h)| !h.is_finished());
                        table.push((peer, worker));
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(Frontend { local_addr, stop, accept: Some(accept), conns })
    }

    /// The address the frontend is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> usize {
        let table = self.conns.lock().expect("conn table poisoned");
        table.iter().filter(|(_, h)| !h.is_finished()).count()
    }

    /// Stop accepting, sever open connections, and join all frontend
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop polls the stop flag (non-blocking listener),
        // so it exits within one poll interval with no wake-up tricks.
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns: Vec<_> =
            std::mem::take(&mut *self.conns.lock().expect("conn table poisoned"));
        for (peer, worker) in conns {
            let _ = peer.shutdown(Shutdown::Both);
            let _ = worker.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Minimal blocking client for the line protocol — the shape an `nc`
/// session takes, with framing handled for you. Used by the loopback
/// tests, the serving example, and handy for smoke-testing a live
/// `vrdag-cli serve`.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A complete reply: the parsed header line plus its payload bytes
/// (empty for `PONG`/`BYE`/`ERR`).
#[derive(Debug)]
pub struct Reply {
    pub header: ReplyHeader,
    pub payload: Vec<u8>,
}

impl LineClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(LineClient { reader: BufReader::new(stream), writer })
    }

    /// Send one request and read its complete reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        self.send_line(&req.to_line())
    }

    /// Send a raw line (no newline) and read the reply — for exercising
    /// malformed input on purpose.
    pub fn send_line(&mut self, line: &str) -> io::Result<Reply> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let header_line = match read_capped_line(&mut self.reader)? {
            ReadLine::Line(raw) => String::from_utf8(raw)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?,
            ReadLine::TooLong { len } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("reply header of {len} bytes exceeds the line cap"),
                ))
            }
            ReadLine::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a reply header",
                ))
            }
        };
        let header = parse_reply(&header_line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let expect = match &header {
            ReplyHeader::Gen { bytes, .. }
            | ReplyHeader::Stats { bytes }
            | ReplyHeader::Models { bytes } => *bytes,
            _ => 0,
        };
        // Never pre-allocate the header-declared size: a malformed or
        // hostile `bytes=` value must surface as an I/O error, not an
        // allocation abort. `take` bounds the read and the buffer grows
        // only with bytes that actually arrive.
        let mut payload = Vec::new();
        (&mut self.reader).take(expect as u64).read_to_end(&mut payload)?;
        if payload.len() != expect {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("reply payload truncated: got {} of {expect} bytes", payload.len()),
            ));
        }
        Ok(Reply { header, payload })
    }

    /// Convenience: issue a `GEN` and return the reply.
    pub fn gen(&mut self, spec: GenSpec) -> io::Result<Reply> {
        self.request(&Request::Gen(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reader_splits_lines_and_reports_overflow() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"PING\n");
        input.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"STATS"); // unterminated final line
        let mut reader = BufReader::with_capacity(16, &input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"PING"),
            _ => panic!("expected a line"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::TooLong { len } => assert_eq!(len, MAX_LINE_BYTES + 10),
            _ => panic!("expected overflow"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"STATS"),
            _ => panic!("expected the unterminated tail"),
        }
        assert!(matches!(read_capped_line(&mut reader).unwrap(), ReadLine::Eof));
    }

    #[test]
    fn capped_reader_line_exactly_at_cap_is_accepted() {
        let mut input = vec![b'a'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l.len(), MAX_LINE_BYTES),
            _ => panic!("cap is inclusive"),
        }
    }

    #[test]
    fn queue_full_translates_to_structured_backpressure() {
        let (code, message) = translate(&ServeError::QueueFull { depth: 7, cap: 8 });
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(message, "depth=7 cap=8");
    }
}

//! TCP frontend for the pipelined line protocol of
//! [`protocol`](crate::protocol): a single-threaded non-blocking
//! **reactor** (see [`reactor`](crate::reactor)) that accepts, parses
//! newline-delimited requests, drives the shared [`ServeHandle`], and
//! routes every reply frame back to its connection — matched by *tag*,
//! not arrival order.
//!
//! This used to be a thread-per-connection frontend (reader + writer
//! thread per socket, plus a waiter thread per in-flight job), which
//! topped out around C256 on thread stacks alone. The reactor keeps the
//! wire protocol byte-identical while changing the cost model: one
//! event-loop thread owns the listener and every connection through a
//! vendored readiness poller ([`vrdag_poll`] — `epoll(7)` on Linux, a
//! portable scan loop elsewhere), each connection is an explicit state
//! machine with a bounded outbox, and all job completions drain through
//! one completion pump instead of a waiter thread each. An idle
//! connection now costs a socket and a couple hundred bytes of state,
//! which is what moves the ceiling to C10K+.
//!
//! The frontend stays deliberately thin: all scheduling, caching,
//! coalescing, and admission control live in the service core. What it
//! owns is *framing* (capped line scanning, length-prefixed payloads),
//! *demultiplexing* (tags, the in-flight table), and *error
//! translation* — every [`ServeError`] becomes a structured
//! `ERR <code> …` line on the same connection, so a saturated queue
//! ([`ServeError::QueueFull`]) is a backpressure *response*, never a
//! dropped connection. [`FrontendConfig::max_connections`] is enforced
//! at admission: a connection beyond the cap is greeted with
//! `ERR too-many-connections cap=<c>` and closed — written through the
//! event loop like any other frame, so even that greeting cannot block
//! the accept path.

use crate::core::ServeHandle;
use crate::protocol::{parse_reply, GenSpec, ReplyHeader, Request, MAX_LINE_BYTES};
use crate::reactor::{Completion, Reactor, ReactorConfig};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use vrdag_obs::SpanRecorder;
use vrdag_poll::{raw_fd, Backend, Waker};

/// Construction-time knobs of a [`Frontend`].
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Admission limit on concurrently open connections: one beyond the
    /// cap is greeted with `ERR too-many-connections cap=<c>` and
    /// closed. `None` disables the cap (the descriptor limit still
    /// applies — see `vrdag_poll::os::raise_nofile_limit`).
    pub max_connections: Option<usize>,
    /// How many `GEN`/`SUB` jobs one connection may keep in flight at
    /// once; the excess is answered with `ERR too-many-inflight …`
    /// (retry when an outstanding tag resolves).
    pub max_inflight_per_conn: usize,
    /// Readiness backend for the reactor. [`Backend::Auto`] picks epoll
    /// on Linux and the portable scan loop elsewhere, and honours the
    /// `VRDAG_POLLER` environment override.
    pub poller: Backend,
    /// Internal-hop mode, for a backend sitting behind a
    /// [`Router`](crate::Router) that already terminated tenant `AUTH`:
    /// the frontend stops demanding tokens (its tenant registry is kept
    /// for quota/weight lookups only) and honours the router's
    /// `tenant=` assertion on `GEN`/`SUB` lines. **Trusts every peer
    /// that can connect** — bind such a frontend to loopback or a
    /// private network only. Off by default; a frontend that does not
    /// trust the hop rejects `tenant=` with `ERR invalid-request`. The
    /// same trust rule governs the `trace=` assertion (see
    /// [`GenSpec::trace`](crate::protocol::GenSpec)).
    pub trust_tenant_assertion: bool,
    /// Ring of completed request [`Span`](vrdag_obs::Span)s the reactor
    /// records into — one span per finished `GEN`/`SUB`, keyed by the
    /// request's trace id. Share one recorder across frontends (or with
    /// an HTTP listener's `/traces` endpoint) by cloning the handle;
    /// the default is a fresh [`vrdag_obs::span::DEFAULT_SPAN_RING`]-deep
    /// ring.
    pub spans: SpanRecorder,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_connections: Some(4096),
            max_inflight_per_conn: 32,
            poller: Backend::Auto,
            trust_tenant_assertion: false,
            spans: SpanRecorder::default(),
        }
    }
}

/// Accept backlog requested for the listener: connection storms (the
/// C10K smoke opens thousands at once) queue in the kernel instead of
/// seeing ECONNREFUSED while the reactor drains the accept queue.
const LISTEN_BACKLOG: i32 = 4096;

/// One line read from the wire, or the reasons there is none. (Client
/// side; the server's incremental counterpart lives in the reactor.)
enum ReadLine {
    Line(Vec<u8>),
    /// The line blew past [`MAX_LINE_BYTES`]; the overflow has been
    /// consumed up to (and including) its newline so the connection can
    /// keep going.
    TooLong {
        len: usize,
    },
    Eof,
}

/// Read one `\n`-terminated line, enforcing the protocol's line cap
/// without ever buffering an unbounded line in memory. A final line
/// without a terminator (peer shut down its write side) still counts.
fn read_capped_line(reader: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut line = Vec::new();
    let mut overflow = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: line.len() + overflow }
            } else if line.is_empty() {
                ReadLine::Eof
            } else {
                ReadLine::Line(line)
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if overflow == 0 {
            let keep = take - usize::from(newline.is_some());
            if line.len() + keep <= MAX_LINE_BYTES {
                line.extend_from_slice(&buf[..keep]);
            } else {
                overflow = line.len() + keep;
                line.clear();
            }
        } else {
            overflow += take - usize::from(newline.is_some());
        }
        let done = newline.is_some();
        reader.consume(take);
        if done {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: overflow }
            } else {
                ReadLine::Line(line)
            });
        }
    }
}

/// The TCP line-protocol frontend: one reactor thread accepting and
/// serving every connection off a non-blocking event loop, submitting
/// into the shared service core. Dropping (or
/// [`shutdown`](Frontend::shutdown)) stops the loop, severs open
/// connections, and joins the thread — the core itself stays up for
/// other handles.
pub struct Frontend {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Interrupts the reactor's poll wait so the stop flag is noticed.
    waker: Waker,
    reactor: Option<std::thread::JoinHandle<()>>,
    /// Live accepted connections, maintained by the reactor.
    open: Arc<AtomicUsize>,
    poller_name: &'static str,
    /// The span ring the reactor records completed requests into.
    spans: SpanRecorder,
}

impl Frontend {
    /// Bind `addr` with the default [`FrontendConfig`]. Use port 0 for
    /// an ephemeral port (see [`local_addr`](Self::local_addr)).
    pub fn bind(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<Frontend> {
        Frontend::bind_with(handle, addr, FrontendConfig::default())
    }

    /// Bind `addr` with explicit limits and start serving.
    pub fn bind_with(
        handle: ServeHandle,
        addr: impl ToSocketAddrs,
        cfg: FrontendConfig,
    ) -> io::Result<Frontend> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Best effort: `std` listens with a modest backlog; widen it so
        // a connection storm queues instead of bouncing.
        let _ = vrdag_poll::os::widen_backlog(raw_fd(&listener), LISTEN_BACKLOG);
        let poller = vrdag_poll::create(cfg.poller)?;
        let poller_name = poller.name();
        handle.logger().info(
            "serve.frontend",
            "listening",
            &[
                ("addr", local_addr.to_string()),
                ("workers", handle.workers().to_string()),
                ("poller", poller_name.to_string()),
            ],
        );
        // Publish the gauge before the first connection so a METRICS
        // scrape of a fresh frontend already reports it.
        handle.metrics().gauge("vrdag_open_connections", &[]).set(0);
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let (completions_tx, completions_rx) = mpsc::channel::<Completion>();
        let (dirty_tx, dirty_rx) = mpsc::channel::<usize>();
        let waker = poller.waker();
        let spans = cfg.spans.clone();
        let reactor = Reactor::new(ReactorConfig {
            handle,
            cfg,
            listener,
            poller,
            stop: Arc::clone(&stop),
            open: Arc::clone(&open),
            completions_tx,
            completions_rx,
            dirty_tx,
            dirty_rx,
        });
        let thread = std::thread::Builder::new()
            .name("vrdag-serve-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(Frontend { local_addr, stop, waker, reactor: Some(thread), open, poller_name, spans })
    }

    /// The address the frontend is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Name of the readiness backend the reactor is polling with
    /// (`"epoll"` / `"scan"`).
    pub fn poller(&self) -> &'static str {
        self.poller_name
    }

    /// The ring of completed request spans this frontend records into
    /// (a clone of [`FrontendConfig::spans`]) — feed it to an HTTP
    /// listener's `/traces` endpoint or inspect it in tests.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Stop the event loop, sever open connections, and join the
    /// reactor thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Minimal blocking client for the line protocol — the shape an `nc`
/// session takes, with framing handled for you. Used by the loopback
/// tests, the serving example, and handy for smoke-testing a live
/// `vrdag-cli serve`.
///
/// [`request`](Self::request) keeps the old lock-step shape (send one,
/// read one); pipelined callers use [`send`](Self::send) +
/// [`read_frame`](Self::read_frame) and demux by tag (see
/// [`TagDemux`](crate::protocol::TagDemux)).
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A complete reply frame: the parsed header line plus its payload
/// bytes (empty for `PONG`/`BYE`/`END`/`ERR`).
#[derive(Debug)]
pub struct Reply {
    pub header: ReplyHeader,
    pub payload: Vec<u8>,
}

impl LineClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        // Requests are one small write each; Nagle + the server's
        // delayed ACK would add ~40ms to every lock-step round trip.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(LineClient { reader: BufReader::new(stream), writer })
    }

    /// Send one request without waiting for anything — the pipelining
    /// half: fire many tagged requests, then collect frames with
    /// [`read_frame`](Self::read_frame).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.write_line(&req.to_line())
    }

    /// Send one request and read exactly one frame (lock-step).
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        self.send_line(&req.to_line())
    }

    /// Send a raw line (no newline) and read one frame — for exercising
    /// malformed input on purpose.
    pub fn send_line(&mut self, line: &str) -> io::Result<Reply> {
        self.write_line(line)?;
        self.read_frame()
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        // One write per request line: a split write would let the
        // trailing newline sit in a Nagle-delayed segment of its own.
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf)?;
        self.writer.flush()
    }

    /// Read one complete frame (header + length-prefixed payload).
    pub fn read_frame(&mut self) -> io::Result<Reply> {
        let header_line = match read_capped_line(&mut self.reader)? {
            ReadLine::Line(raw) => String::from_utf8(raw)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?,
            ReadLine::TooLong { len } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("reply header of {len} bytes exceeds the line cap"),
                ))
            }
            ReadLine::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a reply header",
                ))
            }
        };
        let header = parse_reply(&header_line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let expect = header.payload_bytes();
        // Never pre-allocate the header-declared size: a malformed or
        // hostile `bytes=` value must surface as an I/O error, not an
        // allocation abort. `take` bounds the read and the buffer grows
        // only with bytes that actually arrive.
        let mut payload = Vec::new();
        (&mut self.reader).take(expect as u64).read_to_end(&mut payload)?;
        if payload.len() != expect {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("reply payload truncated: got {} of {expect} bytes", payload.len()),
            ));
        }
        Ok(Reply { header, payload })
    }

    /// Convenience: issue a `GEN` and block for its single reply frame.
    pub fn gen(&mut self, spec: GenSpec) -> io::Result<Reply> {
        self.request(&Request::Gen(spec))
    }

    /// Authenticate the connection with a pre-shared tenant token:
    /// sends `AUTH token=…` and blocks for the single reply frame
    /// (`OK AUTH tenant=<id>` on success, `ERR auth-failed` — followed
    /// by the server closing the connection — otherwise). On an
    /// auth-enabled frontend this must be the first exchange.
    pub fn auth(&mut self, token: &str) -> io::Result<Reply> {
        self.request(&Request::Auth { token: token.to_string(), tag: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reader_splits_lines_and_reports_overflow() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"PING\n");
        input.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"STATS"); // unterminated final line
        let mut reader = BufReader::with_capacity(16, &input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"PING"),
            _ => panic!("expected a line"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::TooLong { len } => assert_eq!(len, MAX_LINE_BYTES + 10),
            _ => panic!("expected overflow"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"STATS"),
            _ => panic!("expected the unterminated tail"),
        }
        assert!(matches!(read_capped_line(&mut reader).unwrap(), ReadLine::Eof));
    }

    #[test]
    fn capped_reader_line_exactly_at_cap_is_accepted() {
        let mut input = vec![b'a'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l.len(), MAX_LINE_BYTES),
            _ => panic!("cap is inclusive"),
        }
    }
}

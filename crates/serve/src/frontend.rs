//! TCP frontend for the pipelined line protocol of
//! [`protocol`](crate::protocol): a `std::net` listener (threads, no
//! async runtime in this offline tree) that parses newline-delimited
//! requests, drives the shared [`ServeHandle`], and routes every reply
//! frame back to the connection — matched by *tag*, not arrival order.
//!
//! Each connection is split into a **reader** (parses and dispatches
//! requests; never writes) and a **writer** (the reply mux: the single
//! owner of the socket's write side, draining a bounded frame channel).
//! A `GEN`/`SUB` submission registers in the connection's in-flight
//! table (bounded by [`FrontendConfig::max_inflight_per_conn`]) and a
//! waiter thread pushes its completion frame into the mux whenever the
//! [`Ticket`] resolves — so many jobs proceed concurrently on one
//! connection and a slow job never head-of-line-blocks a fast one.
//! `SUB` jobs additionally stream every snapshot as an `EVT` frame from
//! inside the worker (a [`GenSink::Callback`] feeding the mux, applied
//! identically to cold generation and cache-hit replay), and
//! `CANCEL tag=…` trips the job's [`CancelToken`] mid-stream.
//!
//! The frontend stays deliberately thin: all scheduling, caching,
//! coalescing, and admission control live in the service core. What it
//! owns is *framing* (capped line reads, length-prefixed payloads),
//! *demultiplexing* (tags, the in-flight table), and *error
//! translation* — every [`ServeError`] becomes a structured
//! `ERR <code> …` line on the same connection, so a saturated queue
//! ([`ServeError::QueueFull`]) is a backpressure *response*, never a
//! dropped connection. The accept loop enforces
//! [`FrontendConfig::max_connections`]: a connection beyond the cap is
//! greeted with `ERR too-many-connections cap=<c>` and closed.

use crate::core::{CancelToken, GenRequest, GenSink, ServeHandle, Ticket};
use crate::protocol::{
    parse_reply, parse_request, ErrorCode, GenSpec, ProtocolError, ReplyHeader, Request,
    WireFormat, MAX_LINE_BYTES,
};
use crate::tenant::Tenant;
use crate::ServeError;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::{DynamicGraph, Snapshot};

/// Construction-time knobs of a [`Frontend`].
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Accept-limit for the thread-per-connection model: a connection
    /// beyond the cap is greeted with `ERR too-many-connections cap=<c>`
    /// and closed immediately. `None` disables the cap.
    pub max_connections: Option<usize>,
    /// How many `GEN`/`SUB` jobs one connection may keep in flight at
    /// once; the excess is answered with `ERR too-many-inflight …`
    /// (retry when an outstanding tag resolves).
    pub max_inflight_per_conn: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig { max_connections: Some(256), max_inflight_per_conn: 32 }
    }
}

/// Reply-mux channel depth, in frames. Bounded so a subscriber that
/// stops reading exerts backpressure all the way into the generating
/// worker (its `EVT` sends block) instead of buffering an unbounded
/// sequence in server memory.
const FRAME_QUEUE: usize = 64;

/// How long a `QUIT` waits for in-flight jobs to drain before the
/// connection's remaining work is cancelled and the socket severed. A
/// reading client drains long before this; the deadline only fires for
/// one that QUIT and then stopped consuming its own replies.
const QUIT_DRAIN: Duration = Duration::from_secs(60);

/// The same bound for abnormal teardown (EOF/transport failure), where
/// in-flight tokens are already tripped and jobs resolve within
/// snapshot-boundary latency — the deadline is a backstop for a writer
/// wedged on a half-closed peer that never reads.
const TEARDOWN_DRAIN: Duration = Duration::from_secs(5);

/// How long a worker's `EVT` send may sit blocked on a full reply mux
/// before the subscription is abandoned. A connection that is *alive
/// but not reading* (full TCP window + full mux, no EOF, no CANCEL)
/// would otherwise pin a shared core worker indefinitely; past this
/// deadline the stream ends `status=cancelled` and the worker moves on,
/// while the connection itself stays open for a client that resumes.
const SUB_STALL_LIMIT: Duration = Duration::from_secs(30);

/// One complete wire frame: a header line plus its payload bytes.
#[derive(Debug)]
struct Frame {
    header: ReplyHeader,
    payload: Vec<u8>,
}

impl Frame {
    fn header(header: ReplyHeader) -> Frame {
        Frame { header, payload: Vec::new() }
    }

    fn err(code: ErrorCode, tag: Option<String>, message: impl Into<String>) -> Frame {
        Frame::header(ReplyHeader::Err { code, tag, message: message.into() })
    }
}

/// One line read from the wire, or the reasons there is none.
enum ReadLine {
    Line(Vec<u8>),
    /// The line blew past [`MAX_LINE_BYTES`]; the overflow has been
    /// consumed up to (and including) its newline so the connection can
    /// keep going.
    TooLong {
        len: usize,
    },
    Eof,
}

/// Read one `\n`-terminated line, enforcing the protocol's line cap
/// without ever buffering an unbounded line in memory. A final line
/// without a terminator (client shut down its write side) still counts.
fn read_capped_line(reader: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut line = Vec::new();
    let mut overflow = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: line.len() + overflow }
            } else if line.is_empty() {
                ReadLine::Eof
            } else {
                ReadLine::Line(line)
            });
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if overflow == 0 {
            let keep = take - usize::from(newline.is_some());
            if line.len() + keep <= MAX_LINE_BYTES {
                line.extend_from_slice(&buf[..keep]);
            } else {
                overflow = line.len() + keep;
                line.clear();
            }
        } else {
            overflow += take - usize::from(newline.is_some());
        }
        let done = newline.is_some();
        reader.consume(take);
        if done {
            return Ok(if overflow > 0 {
                ReadLine::TooLong { len: overflow }
            } else {
                ReadLine::Line(line)
            });
        }
    }
}

/// Serialize `graph` in the requested wire format. TSV is byte-identical
/// to `vrdag_graph::io::write_tsv`; binary to the streaming writer — so
/// a TCP reply equals what a direct [`ServeHandle`] caller would encode.
fn encode_graph(graph: &DynamicGraph, fmt: WireFormat) -> Result<Vec<u8>, ServeError> {
    match fmt {
        WireFormat::Tsv => Ok(vrdag_graph::io::write_tsv(graph, Vec::new())?),
        WireFormat::Bin => Ok(vrdag_graph::io::encode_binary(graph).as_slice().to_vec()),
    }
}

/// A shared, append-only byte buffer the streaming writers write into;
/// the chunker drains it after every snapshot so each `EVT` frame
/// carries exactly the bytes that snapshot contributed to the encoding.
#[derive(Clone, Default)]
struct ChunkBuf(Arc<Mutex<Vec<u8>>>);

impl ChunkBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().expect("chunk buffer poisoned"))
    }
}

impl Write for ChunkBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("chunk buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Incremental per-snapshot encoder for a `SUB` stream, built on the
/// exact same streaming writers as the file sinks and the buffered
/// `GEN` encodings — which is what makes the concatenation of a
/// stream's `EVT` payloads byte-identical to the buffered reply (the
/// format headers land in the first chunk; `finish()` writes nothing).
enum WireChunker {
    Tsv(TsvStreamWriter<ChunkBuf>, ChunkBuf),
    Bin(BinaryStreamWriter<ChunkBuf>, ChunkBuf),
}

impl WireChunker {
    fn new(fmt: WireFormat, n: usize, f: usize, t_len: usize) -> Result<WireChunker, ServeError> {
        let buf = ChunkBuf::default();
        Ok(match fmt {
            WireFormat::Tsv => {
                WireChunker::Tsv(TsvStreamWriter::new(buf.clone(), n, f, t_len)?, buf)
            }
            WireFormat::Bin => {
                WireChunker::Bin(BinaryStreamWriter::new(buf.clone(), n, f, t_len)?, buf)
            }
        })
    }

    /// Encode one snapshot and return the bytes it contributed.
    fn encode(&mut self, s: &Snapshot) -> Result<Vec<u8>, ServeError> {
        match self {
            WireChunker::Tsv(w, buf) => {
                w.write_snapshot(s)?;
                Ok(buf.take())
            }
            WireChunker::Bin(w, buf) => {
                w.write_snapshot(s)?;
                Ok(buf.take())
            }
        }
    }
}

/// Translate a service error into its wire code; the message is the
/// error's display form except for `QueueFull`, which gets structured
/// `depth=… cap=…` fields a client can parse and back off on.
fn translate(err: &ServeError) -> (ErrorCode, String) {
    match err {
        ServeError::QueueFull { depth, cap } => {
            (ErrorCode::QueueFull, format!("depth={depth} cap={cap}"))
        }
        ServeError::QuotaExceeded { tenant, quota, cap } => {
            (ErrorCode::QuotaExceeded, format!("tenant={tenant} limit={quota} cap={cap}"))
        }
        ServeError::UnknownModel(name) => (ErrorCode::UnknownModel, format!("{name:?}")),
        ServeError::InvalidRequest(msg) => (ErrorCode::InvalidRequest, msg.clone()),
        ServeError::SchedulerClosed | ServeError::JobDropped => {
            (ErrorCode::Shutdown, err.to_string())
        }
        other => (ErrorCode::Internal, other.to_string()),
    }
}

fn translated_frame(err: &ServeError, tag: Option<String>) -> Frame {
    let (code, message) = translate(err);
    Frame::err(code, tag, message)
}

/// Best-effort recovery of a `tag=<valid>` token from a line that failed
/// to parse, so the `ERR` reply can still be demuxed to the request's
/// stream. Only a syntactically valid tag is echoed — never arbitrary
/// malformed input.
fn salvage_tag(line: &str) -> Option<String> {
    line.split_whitespace()
        .filter_map(|token| token.strip_prefix("tag="))
        .find(|raw| crate::protocol::valid_tag(raw))
        .map(str::to_string)
}

/// Every in-flight job on one connection, tagged or not, with its
/// cancel token — so teardown can trip *all* of them, not just the
/// `CANCEL`-addressable ones.
#[derive(Default)]
struct InflightTable {
    /// Client-tagged jobs, addressable by `CANCEL tag=…`.
    tagged: HashMap<String, CancelToken>,
    /// Untagged jobs, keyed by a connection-internal counter (no wire
    /// syntax can name them, but connection teardown still cancels them).
    untagged: HashMap<u64, CancelToken>,
    next_untagged: u64,
}

impl InflightTable {
    fn len(&self) -> usize {
        self.tagged.len() + self.untagged.len()
    }
}

/// Why [`ConnState::send_cancellable`] failed to deliver a frame.
enum SendFail {
    /// The connection's writer is gone (transport failure).
    Disconnected,
    /// The job's cancel token tripped while the mux was full.
    Cancelled,
    /// The mux stayed full for [`SUB_STALL_LIMIT`]: the subscriber is
    /// alive but not reading, and the stream is abandoned to free the
    /// worker.
    Stalled,
}

/// The claim [`ConnState::reserve`] hands out; give it back to
/// [`ConnState::release`] when the job's completion frame is pushed.
enum Slot {
    Tag(String),
    Untagged(u64),
}

/// Per-connection state shared between the reader, the waiter threads,
/// and the `SUB` callbacks running inside workers.
struct ConnState {
    /// The reply mux: the writer thread drains this channel. Bounded —
    /// see [`FRAME_QUEUE`].
    out: SyncSender<Frame>,
    /// In-flight jobs (see [`InflightTable`]).
    inflight: Mutex<InflightTable>,
}

impl ConnState {
    /// Push one frame into the reply mux. `false` when the connection's
    /// writer is gone (transport failure) — callers stop working for
    /// this connection.
    fn send(&self, frame: Frame) -> bool {
        self.out.send(frame).is_ok()
    }

    /// Like [`send`](Self::send), but re-checks `token` while the
    /// bounded channel is full, and gives up entirely after
    /// [`SUB_STALL_LIMIT`]. Used by the `EVT` path running *inside a
    /// core worker*: a subscriber that stops reading fills the mux and
    /// the TCP buffer, and without the re-check a later `CANCEL` (read
    /// on the still-live request side) could never free the worker
    /// parked in a plain blocking send — while the stall deadline frees
    /// it even when the client never sends (or closes) anything at all.
    /// The failure reason distinguishes a deliberate stall give-up (worth
    /// a warn-level log) from an ordinary cancel or dead connection.
    fn send_cancellable(&self, token: &CancelToken, frame: Frame) -> Result<(), SendFail> {
        let mut frame = frame;
        let stalled_at = std::time::Instant::now() + SUB_STALL_LIMIT;
        loop {
            match self.out.try_send(frame) {
                Ok(()) => return Ok(()),
                Err(mpsc::TrySendError::Disconnected(_)) => return Err(SendFail::Disconnected),
                Err(mpsc::TrySendError::Full(back)) => {
                    if token.is_cancelled() {
                        return Err(SendFail::Cancelled);
                    }
                    if std::time::Instant::now() >= stalled_at {
                        return Err(SendFail::Stalled);
                    }
                    frame = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// Claim an in-flight slot (and the tag, when given) for a new job.
    fn reserve(
        &self,
        tag: Option<&String>,
        token: &CancelToken,
        cap: usize,
    ) -> Result<Slot, Box<Frame>> {
        let mut table = self.inflight.lock().expect("inflight table poisoned");
        // A duplicate tag is the more specific failure: report it even
        // when the connection is also at its in-flight cap.
        if let Some(tag) = tag {
            if table.tagged.contains_key(tag) {
                return Err(Box::new(Frame::err(
                    ErrorCode::DuplicateTag,
                    Some(tag.clone()),
                    format!("tag {tag} is already in flight on this connection"),
                )));
            }
        }
        let inflight = table.len();
        if inflight >= cap {
            return Err(Box::new(Frame::err(
                ErrorCode::TooManyInflight,
                tag.cloned(),
                format!("inflight={inflight} cap={cap}"),
            )));
        }
        Ok(match tag {
            Some(tag) => {
                table.tagged.insert(tag.clone(), token.clone());
                Slot::Tag(tag.clone())
            }
            None => {
                let key = table.next_untagged;
                table.next_untagged += 1;
                table.untagged.insert(key, token.clone());
                Slot::Untagged(key)
            }
        })
    }

    /// Release a reservation once its completion frame has been pushed.
    fn release(&self, slot: &Slot) {
        let mut table = self.inflight.lock().expect("inflight table poisoned");
        match slot {
            Slot::Tag(tag) => {
                table.tagged.remove(tag);
            }
            Slot::Untagged(key) => {
                table.untagged.remove(key);
            }
        }
    }

    /// Is `tag` currently registered on this connection?
    fn tag_in_flight(&self, tag: &str) -> bool {
        self.inflight.lock().expect("inflight table poisoned").tagged.contains_key(tag)
    }

    /// Trip the cancel token registered under `tag`, if any.
    fn cancel(&self, tag: &str) -> bool {
        let table = self.inflight.lock().expect("inflight table poisoned");
        match table.tagged.get(tag) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Trip every in-flight token, tagged or not (connection teardown:
    /// free the workers instead of letting them generate for a peer
    /// that is gone).
    fn cancel_all(&self) {
        let table = self.inflight.lock().expect("inflight table poisoned");
        for token in table.tagged.values().chain(table.untagged.values()) {
            token.cancel();
        }
    }
}

/// The single owner of a connection's write side: drains the frame
/// channel in completion order, one flush per frame (subscribers see
/// snapshots as they are generated). Exits when every sender is gone or
/// the transport fails, then sends the FIN.
fn writer_loop(stream: TcpStream, frames: Receiver<Frame>) {
    if let Ok(write_half) = stream.try_clone() {
        let mut w = BufWriter::new(write_half);
        while let Ok(frame) = frames.recv() {
            let wrote = (|| -> io::Result<()> {
                w.write_all(frame.header.to_line().as_bytes())?;
                w.write_all(b"\n")?;
                w.write_all(&frame.payload)?;
                w.flush()
            })();
            if wrote.is_err() {
                break;
            }
        }
    }
    // Dropping the receiver here unblocks every sender (their sends turn
    // into errors); the explicit shutdown sends the FIN across all
    // clones of the socket.
    drop(frames);
    let _ = stream.shutdown(Shutdown::Both);
}

/// What the reader should do after dispatching one request.
enum Flow {
    Continue,
    /// Drain in-flight work, say `OK BYE [tag=…]`, close.
    Quit {
        tag: Option<String>,
    },
    /// The reply mux is gone (transport failure) — tear down now.
    Dead,
    /// A protocol-level rejection that closes the connection (failed or
    /// missing authentication): the error frame is already in the mux,
    /// the writer drains it, no `OK BYE` follows.
    Fatal,
}

/// Reader-side driver of one connection.
struct ConnDriver {
    handle: ServeHandle,
    conn: Arc<ConnState>,
    cfg: FrontendConfig,
    /// Waiter threads for this connection's in-flight jobs.
    waiters: Vec<std::thread::JoinHandle<()>>,
    /// Counter for server-assigned `~<n>` tags (untagged `SUB`s).
    auto_tag: u64,
    /// The tenant every job on this connection runs as — the anonymous
    /// tenant until a successful `AUTH` rebinds it.
    tenant: Arc<Tenant>,
    /// Has this connection presented a valid token yet?
    authed: bool,
    /// Does the service demand `AUTH` as the first line
    /// ([`TenantRegistry::auth_enabled`](crate::TenantRegistry::auth_enabled))?
    auth_required: bool,
}

impl ConnDriver {
    fn send(&self, frame: Frame) -> Flow {
        if self.conn.send(frame) {
            Flow::Continue
        } else {
            Flow::Dead
        }
    }

    /// Is the connection still waiting for its mandatory `AUTH`
    /// greeting? While true, every non-`AUTH` line is answered with
    /// `ERR auth-required` and the connection is closed — nothing
    /// unauthenticated ever reaches the scheduler.
    fn needs_auth(&self) -> bool {
        self.auth_required && !self.authed
    }

    /// Handle `AUTH token=…`. On an auth-off service the greeting is
    /// optional and acknowledged as the anonymous tenant; on an
    /// auth-enabled one a valid token binds the connection to its
    /// tenant and an invalid token closes the connection.
    fn dispatch_auth(&mut self, token: String, tag: Option<String>) -> Flow {
        if !self.auth_required {
            let tenant = self.tenant.id().to_string();
            return self.send(Frame::header(ReplyHeader::Auth { tag, tenant }));
        }
        if self.authed {
            return self.send(Frame::err(
                ErrorCode::BadRequest,
                tag,
                "connection is already authenticated",
            ));
        }
        match self.handle.tenants().authenticate(&token) {
            Some(tenant) => {
                let id = tenant.id().to_string();
                self.auth_outcome("ok");
                self.handle.logger().info(
                    "serve.frontend",
                    "connection authenticated",
                    &[("tenant", id.clone())],
                );
                self.tenant = tenant;
                self.authed = true;
                self.send(Frame::header(ReplyHeader::Auth { tag, tenant: id }))
            }
            None => {
                self.auth_outcome("failed");
                self.handle.logger().warn("serve.frontend", "auth failed: invalid token", &[]);
                let _ = self.conn.send(Frame::err(ErrorCode::AuthFailed, tag, "invalid token"));
                Flow::Fatal
            }
        }
    }

    /// Count one `AUTH` outcome into `vrdag_auth_total{outcome=…}`.
    fn auth_outcome(&self, outcome: &str) {
        self.handle.metrics().counter("vrdag_auth_total", &[("outcome", outcome)]).inc();
    }

    fn dispatch(&mut self, req: Request) -> Flow {
        // Opportunistically reap finished waiters so the vector tracks
        // live jobs, not connection history.
        self.waiters.retain(|w| !w.is_finished());
        match req {
            // Normally intercepted by the connection loop before the
            // auth gate; kept as a delegation to the same single
            // handler so dispatch stays total over Request.
            Request::Auth { token, tag } => self.dispatch_auth(token, tag),
            Request::Gen(spec) => self.dispatch_gen(spec),
            Request::Sub(spec) => self.dispatch_sub(spec),
            Request::Cancel { tag } => {
                let found = self.conn.cancel(&tag);
                self.send(Frame::header(ReplyHeader::Cancel { tag, found }))
            }
            Request::Stats { tag } => {
                let payload = self.handle.stats().render().into_bytes();
                let header = ReplyHeader::Stats { tag, bytes: payload.len() };
                self.send(Frame { header, payload })
            }
            Request::Metrics { tag } => {
                let payload = self.handle.metrics_text().into_bytes();
                let header = ReplyHeader::Metrics { tag, bytes: payload.len() };
                self.send(Frame { header, payload })
            }
            Request::Models { tag } => {
                let mut listing = String::new();
                for h in self.handle.registry().handles() {
                    use std::fmt::Write as _;
                    let _ = writeln!(
                        listing,
                        "{} nodes={} attrs={} size={} fingerprint={:016x}",
                        h.name(),
                        h.n_nodes(),
                        h.n_attrs(),
                        h.size_bytes(),
                        h.fingerprint(),
                    );
                }
                let payload = listing.into_bytes();
                let header = ReplyHeader::Models { tag, bytes: payload.len() };
                self.send(Frame { header, payload })
            }
            Request::Ping { tag } => self.send(Frame::header(ReplyHeader::Pong { tag })),
            Request::Quit { tag } => Flow::Quit { tag },
        }
    }

    /// Buffered generation: submit with an `InMemory` sink, park a
    /// waiter on the ticket, answer `OK GEN [tag=…] …` + payload when it
    /// resolves — out of submission order whenever a later job finishes
    /// first.
    fn dispatch_gen(&mut self, spec: GenSpec) -> Flow {
        let GenSpec { model, t_len, seed, fmt, priority, tag } = spec;
        let token = CancelToken::new();
        let slot = match self.conn.reserve(tag.as_ref(), &token, self.cfg.max_inflight_per_conn) {
            Ok(slot) => slot,
            Err(frame) => return self.send(*frame),
        };
        let req = GenRequest::new(model, t_len, seed, GenSink::InMemory)
            .with_priority(priority)
            .with_cancel(token)
            .with_tenant(self.tenant.id().clone());
        match self.handle.submit(req) {
            Err(e) => {
                self.conn.release(&slot);
                self.send(translated_frame(&e, tag))
            }
            Ok(ticket) => {
                let conn = Arc::clone(&self.conn);
                self.waiters.push(
                    std::thread::Builder::new()
                        .name("vrdag-serve-wait".to_string())
                        .spawn(move || gen_waiter(&conn, slot, tag, fmt, ticket))
                        .expect("spawn waiter thread"),
                );
                Flow::Continue
            }
        }
    }

    /// Streaming generation: acknowledge with `OK SUB tag=…`, submit
    /// with a callback sink that pushes one `EVT` frame per snapshot
    /// into the reply mux straight from the worker (cold and cache-hit
    /// paths both go through it), and park a waiter that terminates the
    /// stream with `END … status=ok|cancelled` (or `ERR … tag=…`).
    fn dispatch_sub(&mut self, spec: GenSpec) -> Flow {
        let GenSpec { model, t_len, seed, fmt, priority, tag } = spec;
        // Server-assigned tags skip any `~<n>` a client chose to put in
        // flight itself (the grammar permits `~`), so an untagged SUB is
        // never spuriously rejected as a duplicate.
        let tag = tag.unwrap_or_else(|| loop {
            self.auto_tag += 1;
            let candidate = format!("~{}", self.auto_tag);
            if !self.conn.tag_in_flight(&candidate) {
                break candidate;
            }
        });
        let token = CancelToken::new();
        let slot = match self.conn.reserve(Some(&tag), &token, self.cfg.max_inflight_per_conn) {
            Ok(slot) => slot,
            Err(frame) => return self.send(*frame),
        };
        // The ack must precede the first EVT frame, and EVT frames are
        // pushed by a worker the moment the job starts — so ack before
        // submitting. If admission then fails (including unknown model
        // names — submit resolves the registry), the stream terminates
        // with `ERR <code> tag=…` like any other failed subscription.
        let ack = ReplyHeader::Sub { tag: tag.clone(), model: model.clone(), t_len, seed, fmt };
        if let Flow::Dead = self.send(Frame::header(ack)) {
            self.conn.release(&slot);
            return Flow::Dead;
        }
        // EVT frames actually handed to the writer: the END frame
        // reports this count (not the core's generated count), so the
        // stream stays self-consistent even when cancellation races a
        // snapshot that was generated but never framed.
        let sent = Arc::new(AtomicUsize::new(0));
        let sink = {
            let conn = Arc::clone(&self.conn);
            let tag = tag.clone();
            let token = token.clone();
            let sent = Arc::clone(&sent);
            let logger = self.handle.logger().clone();
            let evt_frames = self.handle.metrics().counter("vrdag_evt_frames_total", &[]);
            let evt_bytes = self.handle.metrics().counter("vrdag_evt_bytes_total", &[]);
            let sub_stalls = self.handle.metrics().counter("vrdag_sub_stalls_total", &[]);
            // Built lazily from the first snapshot's own shape, so the
            // stream header can never disagree with the stream (a
            // pre-submit registry lookup could race a concurrent
            // re-register of the model under a different shape).
            let mut chunker: Option<WireChunker> = None;
            GenSink::Callback(Box::new(move |snap, s| {
                let chunker = match &mut chunker {
                    Some(chunker) => chunker,
                    None => match WireChunker::new(fmt, s.n_nodes(), s.n_attrs(), t_len) {
                        Ok(built) => chunker.insert(built),
                        Err(_) => {
                            token.cancel();
                            return;
                        }
                    },
                };
                match chunker.encode(s) {
                    Ok(payload) => {
                        let bytes = payload.len();
                        let header = ReplyHeader::Evt { tag: tag.clone(), snap, of: t_len, bytes };
                        // This send runs inside a core worker: it backs
                        // off while the mux is full but aborts the
                        // moment the token trips or the connection
                        // dies, so a stalled subscriber can never pin
                        // the worker past a CANCEL.
                        match conn.send_cancellable(&token, Frame { header, payload }) {
                            Ok(()) => {
                                sent.fetch_add(1, Ordering::SeqCst);
                                evt_frames.inc();
                                evt_bytes.add(bytes as u64);
                            }
                            Err(fail) => {
                                if matches!(fail, SendFail::Stalled) {
                                    sub_stalls.inc();
                                    logger.warn(
                                        "serve.frontend",
                                        "SUB stall: subscriber stopped reading, stream abandoned",
                                        &[
                                            ("tag", tag.clone()),
                                            ("snap", snap.to_string()),
                                            ("of", t_len.to_string()),
                                        ],
                                    );
                                }
                                token.cancel();
                            }
                        }
                    }
                    // The chunker writes into memory; a failure here is
                    // a shape bug, not transport — abandon the stream.
                    Err(_) => token.cancel(),
                }
            }))
        };
        let req = GenRequest::new(model, t_len, seed, sink)
            .with_priority(priority)
            .with_cancel(token)
            .with_tenant(self.tenant.id().clone());
        match self.handle.submit(req) {
            Err(e) => {
                self.conn.release(&slot);
                self.send(translated_frame(&e, Some(tag)))
            }
            Ok(ticket) => {
                let conn = Arc::clone(&self.conn);
                self.waiters.push(
                    std::thread::Builder::new()
                        .name("vrdag-serve-wait".to_string())
                        .spawn(move || sub_waiter(&conn, slot, tag, sent, ticket))
                        .expect("spawn waiter thread"),
                );
                Flow::Continue
            }
        }
    }
}

/// Wait one buffered `GEN` out and push its completion frame.
fn gen_waiter(conn: &ConnState, slot: Slot, tag: Option<String>, fmt: WireFormat, ticket: Ticket) {
    let id = ticket.id();
    let frame = match ticket.wait() {
        Err(e) => translated_frame(&e, tag.clone()),
        Ok(result) => {
            if result.cancelled {
                Frame::err(
                    ErrorCode::Cancelled,
                    tag.clone(),
                    "job cancelled before its reply was produced",
                )
            } else if let Some(error) = &result.error {
                Frame::err(ErrorCode::Internal, tag.clone(), error.clone())
            } else {
                let graph = result.graph.as_deref().expect("InMemory success carries the graph");
                match encode_graph(graph, fmt) {
                    Err(e) => Frame::err(ErrorCode::Internal, tag.clone(), e.to_string()),
                    Ok(payload) => Frame {
                        header: ReplyHeader::Gen {
                            tag: tag.clone(),
                            id: id.0,
                            model: result.model.clone(),
                            t_len: result.t_len,
                            seed: result.seed,
                            fmt,
                            snapshots: result.snapshots,
                            edges: result.edges,
                            cache_hit: result.cache_hit,
                            bytes: payload.len(),
                        },
                        payload,
                    },
                }
            }
        }
    };
    // Release before enqueueing the completion frame: a well-behaved
    // client can only reuse the tag after *reading* the reply, and by
    // then the release below has long happened — releasing afterwards
    // would open a window where the flushed reply races the table
    // update and a prompt reuse gets a spurious `ERR duplicate-tag`.
    conn.release(&slot);
    let _ = conn.send(frame);
}

/// Wait a `SUB` job out and terminate its stream. Runs strictly after
/// the job's last `EVT` send (the worker pushes the ticket result only
/// once the sink is done), so `END` can never overtake a snapshot frame.
fn sub_waiter(conn: &ConnState, slot: Slot, tag: String, sent: Arc<AtomicUsize>, ticket: Ticket) {
    let frame = match ticket.wait() {
        Err(e) => translated_frame(&e, Some(tag.clone())),
        Ok(result) => {
            if let Some(error) = &result.error {
                Frame::err(ErrorCode::Internal, Some(tag.clone()), error.clone())
            } else {
                let delivered = sent.load(Ordering::SeqCst);
                // A stream is only `ok` when every frame was delivered;
                // a cancellation (client CANCEL, or a send aborted by a
                // dead/stalled connection) reports exactly the frames
                // that made it to the writer.
                let status = if result.cancelled || delivered < result.t_len {
                    crate::protocol::EndStatus::Cancelled
                } else {
                    crate::protocol::EndStatus::Ok
                };
                Frame::header(ReplyHeader::End {
                    tag: tag.clone(),
                    snapshots: delivered,
                    edges: result.edges,
                    status,
                    qms: result.stages.queue_wait_ms(),
                    genms: result.stages.generation_ms(),
                })
            }
        }
    };
    // Release-before-send: same reasoning as in `gen_waiter`.
    conn.release(&slot);
    let _ = conn.send(frame);
}

/// One connection: a reader loop dispatching into the shared core, a
/// writer thread muxing reply frames, and a waiter thread per in-flight
/// job. Malformed lines get an `ERR` and the loop continues.
fn serve_connection(handle: ServeHandle, stream: TcpStream, cfg: FrontendConfig) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let (out, frames) = mpsc::sync_channel::<Frame>(FRAME_QUEUE);
    let writer = std::thread::Builder::new()
        .name("vrdag-serve-write".to_string())
        .spawn(move || writer_loop(stream, frames))
        .expect("spawn writer thread");
    let conn = Arc::new(ConnState { out, inflight: Mutex::new(InflightTable::default()) });
    let anonymous = handle.tenants().anonymous();
    let auth_required = handle.tenants().auth_enabled();
    let mut driver = ConnDriver {
        handle,
        conn: Arc::clone(&conn),
        cfg,
        waiters: Vec::new(),
        auto_tag: 0,
        tenant: anonymous,
        authed: false,
        auth_required,
    };
    let mut quit: Option<Option<String>> = None;
    loop {
        // One line, parsed — or the error frame that answers it.
        enum Parsed {
            Req(Request),
            Error(Frame),
            Empty,
        }
        let parsed = match read_capped_line(&mut reader) {
            Err(_) | Ok(ReadLine::Eof) => break,
            Ok(ReadLine::TooLong { len }) => Parsed::Error(Frame::err(
                ErrorCode::LineTooLong,
                None,
                ProtocolError::LineTooLong { len }.to_string(),
            )),
            Ok(ReadLine::Line(raw)) => match String::from_utf8(raw) {
                Err(_) => Parsed::Error(Frame::err(
                    ErrorCode::BadRequest,
                    None,
                    ProtocolError::NotUtf8.to_string(),
                )),
                Ok(line) => match parse_request(&line) {
                    // An empty line is a keep-alive no-op, not an error.
                    Err(ProtocolError::Empty) => Parsed::Empty,
                    // Echo a recoverable tag even on parse failures, so
                    // a pipelining client can terminate that tag's
                    // stream instead of waiting forever on it.
                    Err(e) => {
                        Parsed::Error(Frame::err(e.code(), salvage_tag(&line), e.to_string()))
                    }
                    Ok(req) => Parsed::Req(req),
                },
            },
        };
        let flow = match parsed {
            Parsed::Empty => Flow::Continue,
            // AUTH is the one command an unauthenticated connection may
            // issue; anything else (malformed lines included) on an
            // auth-enabled frontend is answered `ERR auth-required` and
            // the connection is closed — unauthenticated input never
            // reaches the scheduler.
            Parsed::Req(Request::Auth { token, tag }) => driver.dispatch_auth(token, tag),
            Parsed::Req(_) | Parsed::Error(_) if driver.needs_auth() => {
                driver.auth_outcome("required");
                let _ = driver.conn.send(Frame::err(
                    ErrorCode::AuthRequired,
                    None,
                    "authenticate first: AUTH token=<token>",
                ));
                Flow::Fatal
            }
            Parsed::Req(req) => driver.dispatch(req),
            Parsed::Error(frame) => driver.send(frame),
        };
        match flow {
            Flow::Continue => {}
            Flow::Quit { tag } => {
                quit = Some(tag);
                break;
            }
            Flow::Dead | Flow::Fatal => break,
        }
    }
    // Teardown. On QUIT the in-flight jobs get a bounded window to
    // drain so every tagged reply lands before `OK BYE` (cancel yours
    // first if you are in a hurry); on EOF/transport failure the tokens
    // are tripped immediately so no worker keeps generating for a peer
    // that is gone. Either way the drain is bounded: a client that
    // QUITs (or half-closes) and then stops *reading* would otherwise
    // wedge the writer on the full TCP buffer — and with the reader
    // gone, no CANCEL can ever arrive — so past the deadline the
    // remaining tokens are tripped and the socket is severed, which
    // unblocks the writer, the mux senders, and the waiters.
    let deadline = if quit.is_some() { QUIT_DRAIN } else { TEARDOWN_DRAIN };
    if quit.is_none() {
        conn.cancel_all();
    }
    let drained_by = std::time::Instant::now() + deadline;
    while driver.waiters.iter().any(|w| !w.is_finished()) {
        if std::time::Instant::now() >= drained_by {
            conn.cancel_all();
            let _ = reader.get_ref().shutdown(Shutdown::Both);
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for waiter in driver.waiters.drain(..) {
        let _ = waiter.join();
    }
    if let Some(tag) = quit {
        let _ = conn.send(Frame::header(ReplyHeader::Bye { tag }));
    }
    // Dropping the last sender lets the writer drain the tail and send
    // the FIN (the accept loop's tracked peer clone keeps the file
    // descriptor alive until reaped, so the FIN must be explicit).
    drop(driver);
    drop(conn);
    let _ = writer.join();
}

/// Live connections: the peer stream (for severing on shutdown) and the
/// handler thread serving it.
type ConnTable = Vec<(TcpStream, std::thread::JoinHandle<()>)>;

/// The TCP line-protocol frontend: accepts connections on its own
/// thread (bounded by [`FrontendConfig::max_connections`]), a reader +
/// writer thread pair per connection, all submitting into the shared
/// service core. Dropping (or [`shutdown`](Frontend::shutdown)) stops
/// accepting, severs open connections, and joins every thread — the
/// core itself stays up for other handles.
pub struct Frontend {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<ConnTable>>,
}

impl Frontend {
    /// Bind `addr` with the default [`FrontendConfig`]. Use port 0 for
    /// an ephemeral port (see [`local_addr`](Self::local_addr)).
    pub fn bind(handle: ServeHandle, addr: impl ToSocketAddrs) -> io::Result<Frontend> {
        Frontend::bind_with(handle, addr, FrontendConfig::default())
    }

    /// Bind `addr` with explicit limits and start accepting.
    pub fn bind_with(
        handle: ServeHandle,
        addr: impl ToSocketAddrs,
        cfg: FrontendConfig,
    ) -> io::Result<Frontend> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // The accept loop polls a non-blocking listener instead of
        // parking in accept(2): shutdown never depends on being able to
        // connect back to the bind address (interface-specific binds or
        // local firewalls would leave a parked accept thread unjoinable
        // forever), and transient accept errors (EMFILE when the
        // thread-per-connection model runs out of descriptors) back off
        // instead of busy-spinning the exact moment the host is
        // saturated.
        listener.set_nonblocking(true)?;
        handle.logger().info(
            "serve.frontend",
            "listening",
            &[("addr", local_addr.to_string()), ("workers", handle.workers().to_string())],
        );
        let accepted =
            handle.metrics().counter("vrdag_connections_total", &[("outcome", "accepted")]);
        let rejected_cap =
            handle.metrics().counter("vrdag_connections_total", &[("outcome", "rejected_cap")]);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<ConnTable>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("vrdag-serve-accept".to_string())
                .spawn(move || {
                    const POLL: Duration = Duration::from_millis(10);
                    while !stop.load(Ordering::SeqCst) {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL);
                                continue;
                            }
                            Err(_) => {
                                std::thread::sleep(POLL);
                                continue;
                            }
                        };
                        // Connection handlers use blocking reads; not
                        // every platform resets the inherited
                        // non-blocking flag on accept.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let mut table = conns.lock().expect("conn table poisoned");
                        // Reap finished connections so the table tracks
                        // live ones, not connection history.
                        table.retain(|(_, h)| !h.is_finished());
                        if let Some(cap) = cfg.max_connections {
                            if table.len() >= cap {
                                // Structured greeting, then close: the
                                // client knows it was the cap, not a
                                // crash.
                                drop(table);
                                rejected_cap.inc();
                                let mut stream = stream;
                                let greeting = ReplyHeader::Err {
                                    code: ErrorCode::TooManyConnections,
                                    tag: None,
                                    message: format!("cap={cap}"),
                                };
                                let _ = stream.write_all((greeting.to_line() + "\n").as_bytes());
                                let _ = stream.shutdown(Shutdown::Both);
                                continue;
                            }
                        }
                        let Ok(peer) = stream.try_clone() else { continue };
                        accepted.inc();
                        let handle = handle.clone();
                        let worker = std::thread::Builder::new()
                            .name("vrdag-serve-conn".to_string())
                            .spawn(move || serve_connection(handle, stream, cfg))
                            .expect("spawn connection thread");
                        table.push((peer, worker));
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(Frontend { local_addr, stop, accept: Some(accept), conns })
    }

    /// The address the frontend is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> usize {
        let table = self.conns.lock().expect("conn table poisoned");
        table.iter().filter(|(_, h)| !h.is_finished()).count()
    }

    /// Stop accepting, sever open connections, and join all frontend
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop polls the stop flag (non-blocking listener),
        // so it exits within one poll interval with no wake-up tricks.
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns: Vec<_> = std::mem::take(&mut *self.conns.lock().expect("conn table poisoned"));
        for (peer, worker) in conns {
            let _ = peer.shutdown(Shutdown::Both);
            let _ = worker.join();
        }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Minimal blocking client for the line protocol — the shape an `nc`
/// session takes, with framing handled for you. Used by the loopback
/// tests, the serving example, and handy for smoke-testing a live
/// `vrdag-cli serve`.
///
/// [`request`](Self::request) keeps the old lock-step shape (send one,
/// read one); pipelined callers use [`send`](Self::send) +
/// [`read_frame`](Self::read_frame) and demux by tag (see
/// [`TagDemux`](crate::protocol::TagDemux)).
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A complete reply frame: the parsed header line plus its payload
/// bytes (empty for `PONG`/`BYE`/`END`/`ERR`).
#[derive(Debug)]
pub struct Reply {
    pub header: ReplyHeader,
    pub payload: Vec<u8>,
}

impl LineClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(LineClient { reader: BufReader::new(stream), writer })
    }

    /// Send one request without waiting for anything — the pipelining
    /// half: fire many tagged requests, then collect frames with
    /// [`read_frame`](Self::read_frame).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.write_line(&req.to_line())
    }

    /// Send one request and read exactly one frame (lock-step).
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        self.send_line(&req.to_line())
    }

    /// Send a raw line (no newline) and read one frame — for exercising
    /// malformed input on purpose.
    pub fn send_line(&mut self, line: &str) -> io::Result<Reply> {
        self.write_line(line)?;
        self.read_frame()
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one complete frame (header + length-prefixed payload).
    pub fn read_frame(&mut self) -> io::Result<Reply> {
        let header_line = match read_capped_line(&mut self.reader)? {
            ReadLine::Line(raw) => String::from_utf8(raw)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 reply"))?,
            ReadLine::TooLong { len } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("reply header of {len} bytes exceeds the line cap"),
                ))
            }
            ReadLine::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a reply header",
                ))
            }
        };
        let header = parse_reply(&header_line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let expect = header.payload_bytes();
        // Never pre-allocate the header-declared size: a malformed or
        // hostile `bytes=` value must surface as an I/O error, not an
        // allocation abort. `take` bounds the read and the buffer grows
        // only with bytes that actually arrive.
        let mut payload = Vec::new();
        (&mut self.reader).take(expect as u64).read_to_end(&mut payload)?;
        if payload.len() != expect {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("reply payload truncated: got {} of {expect} bytes", payload.len()),
            ));
        }
        Ok(Reply { header, payload })
    }

    /// Convenience: issue a `GEN` and block for its single reply frame.
    pub fn gen(&mut self, spec: GenSpec) -> io::Result<Reply> {
        self.request(&Request::Gen(spec))
    }

    /// Authenticate the connection with a pre-shared tenant token:
    /// sends `AUTH token=…` and blocks for the single reply frame
    /// (`OK AUTH tenant=<id>` on success, `ERR auth-failed` — followed
    /// by the server closing the connection — otherwise). On an
    /// auth-enabled frontend this must be the first exchange.
    pub fn auth(&mut self, token: &str) -> io::Result<Reply> {
        self.request(&Request::Auth { token: token.to_string(), tag: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reader_splits_lines_and_reports_overflow() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"PING\n");
        input.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"STATS"); // unterminated final line
        let mut reader = BufReader::with_capacity(16, &input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"PING"),
            _ => panic!("expected a line"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::TooLong { len } => assert_eq!(len, MAX_LINE_BYTES + 10),
            _ => panic!("expected overflow"),
        }
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l, b"STATS"),
            _ => panic!("expected the unterminated tail"),
        }
        assert!(matches!(read_capped_line(&mut reader).unwrap(), ReadLine::Eof));
    }

    #[test]
    fn capped_reader_line_exactly_at_cap_is_accepted() {
        let mut input = vec![b'a'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        match read_capped_line(&mut reader).unwrap() {
            ReadLine::Line(l) => assert_eq!(l.len(), MAX_LINE_BYTES),
            _ => panic!("cap is inclusive"),
        }
    }

    #[test]
    fn queue_full_translates_to_structured_backpressure() {
        let (code, message) = translate(&ServeError::QueueFull { depth: 7, cap: 8 });
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(message, "depth=7 cap=8");
    }

    #[test]
    fn conn_state_enforces_inflight_cap_and_duplicate_tags() {
        let (out, _rx) = mpsc::sync_channel(4);
        let conn = ConnState { out, inflight: Mutex::new(InflightTable::default()) };
        let token = CancelToken::new();
        let a = "a".to_string();
        let b = "b".to_string();
        let slot_a = conn.reserve(Some(&a), &token, 2).unwrap();
        // Duplicate tag while `a` is in flight.
        match conn.reserve(Some(&a), &token, 2) {
            Err(frame) => assert!(matches!(
                frame.header,
                ReplyHeader::Err { code: ErrorCode::DuplicateTag, .. }
            )),
            Ok(_) => panic!("duplicate tag accepted"),
        }
        let untagged_token = CancelToken::new();
        let slot_u = conn.reserve(None, &untagged_token, 2).unwrap();
        assert!(matches!(slot_u, Slot::Untagged(_)));
        // At the cap (1 tagged + 1 untagged).
        match conn.reserve(Some(&b), &token, 2) {
            Err(frame) => assert!(matches!(
                frame.header,
                ReplyHeader::Err { code: ErrorCode::TooManyInflight, .. }
            )),
            Ok(_) => panic!("cap not enforced"),
        }
        // CANCEL finds only live tags; teardown trips untagged jobs too.
        assert!(conn.cancel("a"));
        assert!(!conn.cancel("b"));
        assert!(!untagged_token.is_cancelled());
        conn.cancel_all();
        assert!(untagged_token.is_cancelled(), "cancel_all must reach untagged jobs");
        // Release frees the slot and the tag.
        conn.release(&slot_a);
        conn.release(&slot_u);
        conn.reserve(Some(&a), &token, 2).unwrap();
    }

    #[test]
    fn send_cancellable_aborts_on_a_full_channel_when_cancelled() {
        // Capacity-1 channel, pre-filled and never drained: a plain
        // send would park forever. send_cancellable must return false
        // once the token trips, freeing the (worker) thread.
        let (out, rx) = mpsc::sync_channel(1);
        let conn = ConnState { out, inflight: Mutex::new(InflightTable::default()) };
        conn.send(Frame::header(ReplyHeader::Pong { tag: None }));
        let token = CancelToken::new();
        let cancel_from = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel_from.cancel();
        });
        let delivered =
            conn.send_cancellable(&token, Frame::header(ReplyHeader::Pong { tag: None }));
        assert!(
            matches!(delivered, Err(SendFail::Cancelled)),
            "send must abort once the token trips"
        );
        canceller.join().unwrap();
        drop(rx);
        // Disconnected channel: immediate failure, no spin.
        assert!(matches!(
            conn.send_cancellable(
                &CancelToken::new(),
                Frame::header(ReplyHeader::Pong { tag: None })
            ),
            Err(SendFail::Disconnected)
        ));
    }
}

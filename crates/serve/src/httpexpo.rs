//! Minimal zero-dependency HTTP/1.1 observability listener
//! ([`HttpExpo`]): the layer that makes a node debuggable from the
//! *outside* — a real Prometheus server scrapes `/metrics`, an
//! orchestrator probes `/healthz` and `/readyz`, an operator curls
//! `/traces` and `/logs` to join request spans across the fleet.
//!
//! Both tiers can mount one (`--http-addr` on `vrdag-cli serve` and
//! `route`); the endpoints are closures over whatever the tier exposes,
//! so the listener itself knows nothing about serving:
//!
//! | path        | reply                                                |
//! |-------------|------------------------------------------------------|
//! | `/metrics`  | Prometheus text, byte-identical to the wire `METRICS` payload |
//! | `/healthz`  | `200 ok` while the process is alive (liveness)       |
//! | `/readyz`   | `200 ready` / `503 unavailable` from the readiness predicate |
//! | `/traces`   | recent [`Span`](vrdag_obs::Span)s as JSON (`?limit=N`) |
//! | `/logs`     | the obs [`Logger`] ring as JSON                      |
//!
//! Deliberately *not* a web framework: GET/HEAD only, `Connection:
//! close` on every reply, one short-lived handler thread per
//! connection with read/write timeouts, and an 8 KiB header cap. The
//! observability plane sees a handful of scrapes per minute — the
//! simple thing is the robust thing. The request-line parser never
//! panics on arbitrary bytes (property-tested), because this port is
//! exactly where monitoring infrastructure pokes blindly.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vrdag_obs::{Logger, SpanRecorder};

/// Per-connection read/write timeout: a stalled scraper is cut off
/// instead of pinning its handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Header-section cap (request line + headers). Observability requests
/// are tiny; anything larger is noise or abuse.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Accept-loop poll interval for the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Default (and maximum) span count of a `/traces` reply; `?limit=N`
/// lowers it.
const DEFAULT_TRACE_LIMIT: usize = 256;

/// What the listener serves, as closures over the owning tier. Both
/// `Fn`s must be cheap enough to call per scrape (the router's metrics
/// closure blocks on backend round trips — still fine at scrape rates).
pub struct HttpEndpoints {
    /// The `/metrics` payload — must be byte-identical to the tier's
    /// wire `METRICS` reply ([`ServeHandle::metrics_text`] or
    /// [`Router::metrics_text`]).
    ///
    /// [`ServeHandle::metrics_text`]: crate::ServeHandle::metrics_text
    /// [`Router::metrics_text`]: crate::Router::metrics_text
    pub metrics: Box<dyn Fn() -> String + Send + Sync>,
    /// The `/readyz` predicate: is the tier accepting work right now?
    /// (Scheduler accepting for serve; ≥ 1 backend up for the router.)
    pub ready: Box<dyn Fn() -> bool + Send + Sync>,
    /// The span ring behind `/traces`.
    pub spans: SpanRecorder,
    /// The logger whose event ring backs `/logs`.
    pub logger: Logger,
}

/// The observability listener: an accept thread plus one short-lived
/// thread per connection. Dropping (or [`shutdown`](HttpExpo::shutdown))
/// stops accepting and joins the accept thread; in-flight handlers
/// finish within their I/O timeouts.
pub struct HttpExpo {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl HttpExpo {
    /// Bind `addr` and start serving the endpoints. Use port 0 for an
    /// ephemeral port (see [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, endpoints: HttpEndpoints) -> io::Result<HttpExpo> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let endpoints = Arc::new(endpoints);
        let accept = std::thread::Builder::new()
            .name("vrdag-http-expo".to_string())
            .spawn(move || accept_loop(listener, accept_stop, endpoints))
            .expect("spawn http-expo accept thread");
        Ok(HttpExpo { local_addr, stop, accept: Some(accept) })
    }

    /// The address the listener is actually bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the accept thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for HttpExpo {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, endpoints: Arc<HttpEndpoints>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let endpoints = Arc::clone(&endpoints);
                // One thread per request-response exchange: the
                // connection closes when the handler returns, so the
                // thread is as short-lived as the scrape.
                let _ = std::thread::Builder::new()
                    .name("vrdag-http-conn".to_string())
                    .spawn(move || handle_connection(stream, &endpoints));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

fn handle_connection(stream: TcpStream, endpoints: &HttpEndpoints) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let Some(head) = read_head(&mut reader) else {
        let _ =
            write_response(&mut writer, 400, "text/plain; charset=utf-8", b"bad request\n", false);
        return;
    };
    let request_line = head.lines().next().unwrap_or("");
    let (status, content_type, body, head_only) = match parse_request_line(request_line) {
        None => (400, "text/plain; charset=utf-8", b"bad request\n".to_vec(), false),
        Some((method, target)) => {
            let head_only = method == "HEAD";
            let (status, content_type, body) = respond(endpoints, target);
            (status, content_type, body, head_only)
        }
    };
    let _ = write_response(&mut writer, status, content_type, &body, head_only);
}

/// Read the request head (request line + headers) up to the blank line,
/// bounded by [`MAX_HEAD_BYTES`] and the socket timeout. `None` on
/// overflow, timeout, or transport error — the caller answers 400.
fn read_head(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return None,
            Ok(_) => {
                if head.len() + line.len() > MAX_HEAD_BYTES {
                    return None;
                }
                let done = line == "\r\n" || line == "\n";
                head.push_str(&line);
                if done {
                    return Some(head);
                }
            }
            Err(_) => return None,
        }
    }
}

/// Parse `METHOD SP TARGET SP VERSION`: returns `(method, target)` for
/// a GET/HEAD HTTP/1.x request line, `None` otherwise. Total function —
/// arbitrary bytes (the input is already UTF-8 by construction here,
/// but targets can be any junk) must never panic.
pub fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    if !matches!(method, "GET" | "HEAD") {
        return None;
    }
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    if !target.starts_with('/') {
        return None;
    }
    Some((method, target))
}

/// Route one target to its `(status, content type, body)`.
fn respond(endpoints: &HttpEndpoints, target: &str) -> (u16, &'static str, Vec<u8>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        // The Prometheus text exposition content type (text format 0.0.4).
        "/metrics" => {
            (200, "text/plain; version=0.0.4; charset=utf-8", (endpoints.metrics)().into_bytes())
        }
        "/healthz" => (200, "text/plain; charset=utf-8", b"ok\n".to_vec()),
        "/readyz" => {
            if (endpoints.ready)() {
                (200, "text/plain; charset=utf-8", b"ready\n".to_vec())
            } else {
                (503, "text/plain; charset=utf-8", b"unavailable\n".to_vec())
            }
        }
        "/traces" => {
            let limit = parse_limit(query).unwrap_or(DEFAULT_TRACE_LIMIT).min(DEFAULT_TRACE_LIMIT);
            let mut body = endpoints.spans.to_json(limit);
            body.push('\n');
            (200, "application/json", body.into_bytes())
        }
        "/logs" => {
            let events = endpoints.logger.recent();
            let mut body = String::with_capacity(2 + events.len() * 128);
            body.push('[');
            for (i, event) in events.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&event.to_json());
            }
            body.push_str("]\n");
            (200, "application/json", body.into_bytes())
        }
        _ => (404, "text/plain; charset=utf-8", b"not found\n".to_vec()),
    }
}

/// The `limit=N` query parameter, if present and numeric.
fn parse_limit(query: &str) -> Option<usize> {
    query.split('&').find_map(|pair| pair.strip_prefix("limit=")).and_then(|v| v.parse().ok())
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    head_only: bool,
) -> io::Result<()> {
    let mut reply = Vec::with_capacity(128 + if head_only { 0 } else { body.len() });
    reply.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            status_text(status),
            body.len(),
        )
        .as_bytes(),
    );
    if !head_only {
        reply.extend_from_slice(body);
    }
    writer.write_all(&reply)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_get_and_head_only() {
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1"), Some(("GET", "/metrics")));
        assert_eq!(parse_request_line("HEAD /healthz HTTP/1.0\r"), Some(("HEAD", "/healthz")));
        assert_eq!(parse_request_line("POST /metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET /metrics"), None);
        assert_eq!(parse_request_line("GET /a b HTTP/1.1"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1"), None);
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET /x HTTP/2"), None);
    }

    #[test]
    fn limit_query_parses() {
        assert_eq!(parse_limit("limit=5"), Some(5));
        assert_eq!(parse_limit("a=1&limit=12&b=2"), Some(12));
        assert_eq!(parse_limit(""), None);
        assert_eq!(parse_limit("limit=x"), None);
    }

    #[test]
    fn endpoints_route_and_close() {
        use std::io::Read;
        let endpoints = HttpEndpoints {
            metrics: Box::new(|| "# HELP x x\n# TYPE x counter\nx 1\n".to_string()),
            ready: Box::new(|| false),
            spans: SpanRecorder::default(),
            logger: Logger::disabled(),
        };
        let mut expo = HttpExpo::bind("127.0.0.1:0", endpoints).unwrap();
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(expo.local_addr()).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes()).unwrap();
            let mut reply = String::new();
            conn.read_to_string(&mut reply).unwrap();
            reply
        };
        let metrics = fetch("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.ends_with("x 1\n"), "{metrics}");
        assert!(fetch("/healthz").ends_with("ok\n"));
        assert!(fetch("/readyz").starts_with("HTTP/1.1 503 "), "readiness predicate is false");
        let traces = fetch("/traces?limit=10");
        assert!(traces.contains("application/json"), "{traces}");
        assert!(traces.ends_with("[]\n"), "{traces}");
        assert!(fetch("/logs").ends_with("[]\n"));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404 "));
        // Garbage never kills the listener.
        let mut conn = TcpStream::connect(expo.local_addr()).unwrap();
        conn.write_all(b"\x00\xffnot http at all\r\n\r\n").unwrap();
        let mut reply = String::new();
        let _ = conn.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
        assert!(fetch("/healthz").starts_with("HTTP/1.1 200 "), "still serving");
        expo.shutdown();
    }
}

//! # vrdag-serve
//!
//! Model-serving subsystem for the VRDAG reproduction: the bridge from
//! "a blocking `Vrdag::generate` call" to a long-lived service that
//! answers many concurrent generation requests against shared, trained
//! models — over an in-process handle or a TCP wire protocol.
//!
//! The pieces, bottom up:
//!
//! * [`ModelRegistry`] — loads trained models (the `vrdag::persist`
//!   binary format), keeps the serialized artifact behind an `Arc`, and
//!   hands out cheap, thread-safe [`ModelHandle`]s keyed by name.
//!   Handles are `Send + Sync`; each worker *instantiates* a private
//!   `Vrdag` from the shared bytes (the model's autograd tensors are
//!   `Rc`-based and deliberately stay single-threaded) and caches it
//!   thread-locally, so the steady-state per-request cost is one hash
//!   lookup.
//! * [`SnapshotStream`] — a pull-based iterator over
//!   `vrdag::GenerationState` (Algorithm 1, one snapshot per step) that
//!   produces a seed-addressed synthetic sequence with memory bounded by
//!   a single snapshot, and can spill incrementally through the
//!   streaming TSV/binary writers of `vrdag_graph::io`.
//! * [`JobQueue`] + [`SnapshotCache`] — the scheduling spine: per-model
//!   affinity groups with priority-first selection, admission control,
//!   in-flight coalescing of identical requests, and a bounded LRU over
//!   generated sequences keyed by `(artifact fingerprint, t_len, seed)`.
//!   The generator's determinism contract makes hits bit-identical to
//!   cold generation.
//! * [`ServeHandle`] — the **service core**: a cheaply clonable,
//!   `Send + Sync` front door whose non-blocking `submit` returns a
//!   [`Ticket`] per job (result delivered over the ticket's private
//!   channel by the worker that ran it) and whose [`ServeStats`]
//!   snapshot exposes running cache / affinity / latency(p50/p95/p99) /
//!   dropped-job counters on demand.
//! * [`Scheduler`] — a thin batch facade over the core for
//!   submit-everything-then-drain workloads ([`BatchReport`]).
//! * [`protocol`] + [`Frontend`] — a pipelined, tagged, newline-delimited
//!   TCP line protocol (`GEN model=<name> t=<T> seed=<S> fmt=tsv|bin
//!   [priority=P] [tag=<tag>]`) and the `std::net` listener that serves
//!   it. Tagged requests are answered by tag, not arrival order — one
//!   connection keeps many jobs in flight (bounded by
//!   [`FrontendConfig::max_inflight_per_conn`]) and a slow job never
//!   head-of-line-blocks a fast one. `SUB` streams each snapshot as its
//!   own `EVT` frame as generation proceeds (cache hits replay the same
//!   frames), `CANCEL tag=…` abandons a stream mid-flight via a
//!   [`CancelToken`], and admission control stays structured
//!   backpressure (`ERR queue-full …`, `ERR too-many-inflight …`,
//!   `ERR too-many-connections`) instead of dropped connections.
//! * [`Router`] — the sharded-serving front tier: terminates tenant
//!   `AUTH`, consistent-hashes `(model fingerprint, seed-range)` onto a
//!   fleet of backend nodes ([`backend`]), relays reply frames
//!   verbatim, retries idempotent `GEN`s across backend failures, and
//!   aggregates `STATS`/`MODELS`/`METRICS` fleet-wide — all behind the
//!   same wire protocol, so clients cannot tell one node from many.
//!
//! ```no_run
//! use vrdag_serve::{CacheBudget, GenRequest, GenSink, ModelRegistry, ServeConfig, ServeHandle};
//!
//! let registry = ModelRegistry::new();
//! registry.load_file("email", "model.vrdg").unwrap();
//! let handle = ServeHandle::with_config(
//!     registry,
//!     ServeConfig { workers: 4, cache: CacheBudget::entries(64), ..Default::default() },
//! )
//! .unwrap();
//! // Non-blocking: fire all submissions, then wait on the tickets.
//! let tickets: Vec<_> = (0..16u64)
//!     .map(|seed| {
//!         handle
//!             .submit(GenRequest::new(
//!                 "email",
//!                 14,
//!                 seed,
//!                 GenSink::TsvFile(format!("out/gen-{seed}.tsv").into()),
//!             ))
//!             .unwrap()
//!     })
//!     .collect();
//! for ticket in tickets {
//!     ticket.wait().unwrap();
//! }
//! println!("{}", handle.stats().render());
//! ```

pub mod backend;
mod cache;
mod core;
mod frontend;
pub mod httpexpo;
pub mod protocol;
mod queue;
mod reactor;
mod registry;
mod router;
mod scheduler;
mod stream;
pub mod tenant;

pub use backend::{BackendMeta, BackendPool};
pub use cache::{CacheBudget, CacheKey, CacheStats, SnapshotCache};
pub use core::{
    AffinityStats, CancelToken, CompletionNotify, GenRequest, GenSink, JobId, JobResult,
    LatencyStats, SchedulerConfig, ServeConfig, ServeHandle, ServeStats, SnapshotCallback,
    StageLatencyStats, TenantStats, Ticket,
};
pub use frontend::{Frontend, FrontendConfig, LineClient, Reply};
pub use httpexpo::{HttpEndpoints, HttpExpo};
pub use queue::{JobQueue, LaneStats};
// Observability types a serving integration needs to configure
// [`ServeConfig::logger`] or consume [`ServeHandle::metrics`] without
// depending on `vrdag-obs` directly.
pub use registry::{ModelHandle, ModelRegistry};
pub use router::{Router, RouterConfig};
pub use scheduler::{BatchReport, Scheduler};
pub use stream::{SnapshotStream, StreamStats};
pub use tenant::{RateLimit, Tenant, TenantId, TenantRegistry, TenantRegistryBuilder};
pub use vrdag_obs::{
    mint_trace_id, JobTrace, Level, LogEvent, Logger, Registry as MetricsRegistry, Span,
    SpanRecorder, StageDurations,
};

/// Publish the constant `vrdag_build_info` gauge (labels: `version`,
/// `profile`) into `registry`, so fleet version skew is visible in one
/// scrape. Both tiers set it at construction — the serve core on its
/// metrics registry, the router on [`RouterConfig::metrics`].
pub fn publish_build_info(registry: &vrdag_obs::Registry) {
    registry
        .gauge(
            "vrdag_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("profile", if cfg!(debug_assertions) { "debug" } else { "release" }),
            ],
        )
        .set(1);
}
// The frontend's readiness-poller selection ([`FrontendConfig::poller`])
// and the OS helpers a load-driving harness needs (fd-limit raising, RSS
// sampling), re-exported so integrations and the CLI never depend on
// `vrdag-poll` directly.
pub use vrdag_poll::{os as poll_os, Backend as PollerBackend};

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Model artifact (de)serialization failed.
    Persist(vrdag::PersistError),
    /// Generation failed (e.g. the artifact was never fitted).
    Generate(vrdag_graph::GeneratorError),
    /// Graph spill I/O failed.
    GraphIo(vrdag_graph::io::GraphIoError),
    /// Filesystem error.
    Io(std::io::Error),
    /// The requested model name is not registered.
    UnknownModel(String),
    /// A service core cannot be built with zero workers.
    NoWorkers,
    /// `submit` after the core was closed (graceful `close`/`shutdown`,
    /// `abort`, or a batch `Scheduler`'s `join`).
    SchedulerClosed,
    /// Admission control: the queue already holds `cap` jobs. This is
    /// the backpressure signal — retry later or shed load.
    QueueFull {
        /// Jobs queued at rejection time.
        depth: usize,
        /// The configured queue-depth cap.
        cap: usize,
    },
    /// Per-tenant admission control: the submitting tenant is over one
    /// of its own quotas (`quota` names which — `rate`, `max_inflight`,
    /// or `queue_share`). Backpressure for *this tenant only*; other
    /// tenants' submissions are unaffected.
    QuotaExceeded {
        /// The tenant that hit its quota.
        tenant: String,
        /// Which quota was exhausted.
        quota: &'static str,
        /// The quota's configured cap (jobs, or jobs/sec for `rate`).
        cap: u64,
    },
    /// The request is malformed (e.g. `t_len == 0`).
    InvalidRequest(String),
    /// The job was discarded before a worker ran it (the core was
    /// aborted/dropped while the job sat queued), or its result was
    /// already consumed from the ticket.
    JobDropped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "model artifact error: {e}"),
            ServeError::Generate(e) => write!(f, "generation error: {e}"),
            ServeError::GraphIo(e) => write!(f, "graph spill error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::NoWorkers => write!(f, "service needs at least one worker"),
            ServeError::SchedulerClosed => {
                write!(f, "service closed; create a new one to submit more jobs")
            }
            ServeError::QueueFull { depth, cap } => {
                write!(f, "queue full: {depth} jobs queued at cap {cap}")
            }
            ServeError::QuotaExceeded { tenant, quota, cap } => {
                write!(f, "tenant {tenant} exceeded its {quota} quota (cap {cap})")
            }
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::JobDropped => {
                write!(f, "job dropped before completion (service aborted while it was queued)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<vrdag::PersistError> for ServeError {
    fn from(e: vrdag::PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<vrdag_graph::GeneratorError> for ServeError {
    fn from(e: vrdag_graph::GeneratorError) -> Self {
        ServeError::Generate(e)
    }
}

impl From<vrdag_graph::io::GraphIoError> for ServeError {
    fn from(e: vrdag_graph::io::GraphIoError) -> Self {
        ServeError::GraphIo(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

//! # vrdag-serve
//!
//! Model-serving subsystem for the VRDAG reproduction: the bridge from
//! "a blocking `Vrdag::generate` call" to a system that can answer many
//! concurrent generation requests against shared, trained models.
//!
//! Three pieces:
//!
//! * [`ModelRegistry`] — loads trained models (the `vrdag::persist`
//!   binary format), keeps the serialized artifact behind an `Arc`, and
//!   hands out cheap, thread-safe [`ModelHandle`]s keyed by name.
//!   Handles are `Send + Sync`; each worker *instantiates* a private
//!   `Vrdag` from the shared bytes (the model's autograd tensors are
//!   `Rc`-based and deliberately stay single-threaded) and caches it
//!   thread-locally, so the steady-state per-request cost is one hash
//!   lookup.
//! * [`SnapshotStream`] — a pull-based iterator over
//!   `vrdag::GenerationState` (Algorithm 1, one snapshot per step) that
//!   produces a seed-addressed synthetic sequence with memory bounded by
//!   a single snapshot, and can spill incrementally through the
//!   streaming TSV/binary writers of `vrdag_graph::io`.
//! * [`Scheduler`] / [`JobQueue`] — a multi-threaded worker pool
//!   (`std::thread`) executing batched [`GenRequest`]s concurrently with
//!   model-affinity batching (jobs sharing an artifact drain from one
//!   instantiation), per-model priorities, and queue-depth admission
//!   control, reporting per-job and aggregate throughput ([`JobResult`],
//!   [`BatchReport`]).
//! * [`SnapshotCache`] — a bounded, thread-safe LRU over generated
//!   sequences keyed by `(model fingerprint, t_len, seed)`. The
//!   generator's determinism contract makes hits bit-identical to cold
//!   generation; hit/miss/eviction counters surface in [`BatchReport`].
//!
//! ```no_run
//! use vrdag_serve::{CacheBudget, GenRequest, GenSink, ModelRegistry, Scheduler, SchedulerConfig};
//!
//! let registry = ModelRegistry::new();
//! registry.load_file("email", "model.vrdg").unwrap();
//! let mut scheduler = Scheduler::with_config(
//!     registry,
//!     SchedulerConfig { workers: 4, cache: CacheBudget::entries(64), ..Default::default() },
//! )
//! .unwrap();
//! for seed in 0..16 {
//!     scheduler
//!         .submit(GenRequest::new(
//!             "email",
//!             14,
//!             seed,
//!             GenSink::TsvFile(format!("out/gen-{seed}.tsv").into()),
//!         ))
//!         .unwrap();
//! }
//! let report = scheduler.join().unwrap();
//! println!("{}", report.render());
//! ```

mod cache;
mod registry;
mod scheduler;
mod stream;

pub use cache::{CacheBudget, CacheKey, CacheStats, SnapshotCache};
pub use registry::{ModelHandle, ModelRegistry};
pub use scheduler::{
    AffinityStats, BatchReport, GenRequest, GenSink, JobId, JobQueue, JobResult, Scheduler,
    SchedulerConfig, SnapshotCallback,
};
pub use stream::{SnapshotStream, StreamStats};

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Model artifact (de)serialization failed.
    Persist(vrdag::PersistError),
    /// Generation failed (e.g. the artifact was never fitted).
    Generate(vrdag_graph::GeneratorError),
    /// Graph spill I/O failed.
    GraphIo(vrdag_graph::io::GraphIoError),
    /// Filesystem error.
    Io(std::io::Error),
    /// The requested model name is not registered.
    UnknownModel(String),
    /// A scheduler cannot be built with zero workers.
    NoWorkers,
    /// `submit` or `join` was called after `join` already drained the
    /// scheduler.
    SchedulerClosed,
    /// Admission control: the queue already holds `cap` jobs.
    QueueFull {
        /// Jobs queued at rejection time.
        depth: usize,
        /// The configured queue-depth cap.
        cap: usize,
    },
    /// The request is malformed (e.g. `t_len == 0`).
    InvalidRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "model artifact error: {e}"),
            ServeError::Generate(e) => write!(f, "generation error: {e}"),
            ServeError::GraphIo(e) => write!(f, "graph spill error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::NoWorkers => write!(f, "scheduler needs at least one worker"),
            ServeError::SchedulerClosed => {
                write!(f, "scheduler already joined; create a new one to submit more jobs")
            }
            ServeError::QueueFull { depth, cap } => {
                write!(f, "queue full: {depth} jobs queued at cap {cap}")
            }
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<vrdag::PersistError> for ServeError {
    fn from(e: vrdag::PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<vrdag_graph::GeneratorError> for ServeError {
    fn from(e: vrdag_graph::GeneratorError) -> Self {
        ServeError::Generate(e)
    }
}

impl From<vrdag_graph::io::GraphIoError> for ServeError {
    fn from(e: vrdag_graph::io::GraphIoError) -> Self {
        ServeError::GraphIo(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

//! The newline-delimited line protocol spoken by the TCP
//! [`Frontend`](crate::Frontend).
//!
//! Every request is one UTF-8 line of at most [`MAX_LINE_BYTES`] bytes
//! (newline excluded), a command word followed by space-separated
//! `key=value` fields:
//!
//! ```text
//! GEN model=<name> t=<T> seed=<S> fmt=tsv|bin [priority=<P>]
//! STATS
//! MODELS
//! PING
//! QUIT
//! ```
//!
//! Replies are a single header line, optionally followed by exactly
//! `bytes=<N>` bytes of payload (the generated sequence for `GEN`, a
//! text listing for `STATS`/`MODELS`):
//!
//! ```text
//! OK GEN id=<id> model=<name> t=<T> seed=<S> fmt=<F> snapshots=<n> edges=<m> cache=hit|miss bytes=<N>
//! OK STATS bytes=<N>
//! OK MODELS bytes=<N>
//! OK PONG
//! OK BYE
//! ERR <code> [message…]
//! ```
//!
//! Errors never close the connection (except transport failures): a
//! saturated queue answers `ERR queue-full depth=<d> cap=<c>` as a
//! structured backpressure signal, a malformed line answers
//! `ERR bad-request …`, and the client may keep pipelining. Wire `GEN`
//! requests are size-capped at `t <= `[`MAX_WIRE_T`] because a reply
//! buffers the full sequence; longer sequences belong on the in-process
//! streaming API.
//!
//! This module is pure parsing/serialization — no sockets — so it can be
//! property-tested exhaustively (see `tests/protocol.rs`): arbitrary
//! byte noise must never panic the parser, and every parsed value
//! re-serializes to a line that parses back to the same value.

use std::fmt;

/// Upper bound on a request or reply-header line, newline excluded.
/// Longer lines are rejected with [`ProtocolError::LineTooLong`] before
/// any field parsing happens.
pub const MAX_LINE_BYTES: usize = 4096;

/// Upper bound on `t` in a wire `GEN` request. A wire reply buffers the
/// full sequence (header carries `bytes=<N>`), so an uncapped `t` would
/// let a single request pin a worker and exhaust server memory — the
/// admission cap bounds queue *depth*, this bounds per-job *size*.
/// Callers needing longer sequences use the in-process API
/// (`ServeHandle` with a streaming sink), which keeps memory bounded by
/// one snapshot.
pub const MAX_WIRE_T: usize = 100_000;

/// Payload encoding of a `GEN` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The TSV temporal format of `vrdag_graph::io` (text).
    Tsv,
    /// The compact binary snapshot format of `vrdag_graph::io`.
    Bin,
}

impl WireFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            WireFormat::Tsv => "tsv",
            WireFormat::Bin => "bin",
        }
    }

    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "tsv" => Some(WireFormat::Tsv),
            "bin" => Some(WireFormat::Bin),
            _ => None,
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `GEN` request: the wire-level twin of
/// [`GenRequest`](crate::GenRequest) (the sink is always the reply
/// stream, so it carries a [`WireFormat`] instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenSpec {
    /// Registered model name. May not be empty or contain whitespace
    /// (the field grammar cannot express either).
    pub model: String,
    /// Number of snapshots (`>= 1`, enforced at parse time).
    pub t_len: usize,
    /// Determinism address.
    pub seed: u64,
    /// Reply payload encoding.
    pub fmt: WireFormat,
    /// Scheduling priority (optional on the wire, default 0).
    pub priority: i32,
}

/// One request line, parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Gen(GenSpec),
    Stats,
    Models,
    Ping,
    Quit,
}

impl Request {
    /// Canonical single-line serialization (no trailing newline).
    /// `parse_request(req.to_line()) == Ok(req)` for every value, and a
    /// parsed request re-serializes to a stable canonical line.
    pub fn to_line(&self) -> String {
        match self {
            Request::Gen(spec) => {
                let mut line = format!(
                    "GEN model={} t={} seed={} fmt={}",
                    spec.model, spec.t_len, spec.seed, spec.fmt
                );
                if spec.priority != 0 {
                    line.push_str(&format!(" priority={}", spec.priority));
                }
                line
            }
            Request::Stats => "STATS".to_string(),
            Request::Models => "MODELS".to_string(),
            Request::Ping => "PING".to_string(),
            Request::Quit => "QUIT".to_string(),
        }
    }
}

/// Machine-readable error category carried on `ERR` reply lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the job; retry later (backpressure,
    /// not failure). Carries `depth=<d> cap=<c>` in the message.
    QueueFull,
    /// The requested model name is not registered.
    UnknownModel,
    /// The request parsed but was semantically rejected (e.g. `t=0`).
    InvalidRequest,
    /// The line did not parse.
    BadRequest,
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// The service is shutting down.
    Shutdown,
    /// Generation failed server-side.
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::LineTooLong => "line-too-long",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "queue-full" => ErrorCode::QueueFull,
            "unknown-model" => ErrorCode::UnknownModel,
            "invalid-request" => ErrorCode::InvalidRequest,
            "bad-request" => ErrorCode::BadRequest,
            "line-too-long" => ErrorCode::LineTooLong,
            "shutdown" => ErrorCode::Shutdown,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed parse failure. Every malformed input maps here — the parser
/// never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Empty or whitespace-only line.
    Empty,
    /// Line longer than [`MAX_LINE_BYTES`].
    LineTooLong { len: usize },
    /// The bytes were not valid UTF-8 (reported by the frontend's
    /// capped reader; `&str` inputs cannot hit it).
    NotUtf8,
    /// First word is not a known command.
    UnknownCommand(String),
    /// A required `key=value` field is absent.
    MissingField(&'static str),
    /// The same field appeared twice.
    DuplicateField(&'static str),
    /// A field this command does not define.
    UnknownField(String),
    /// A field value failed to parse or violates its constraint.
    InvalidValue { field: &'static str, value: String, expected: &'static str },
    /// A bare word where `key=value` was expected, or trailing tokens on
    /// a command that takes none.
    UnexpectedToken(String),
}

impl ProtocolError {
    /// The wire error code a frontend should answer this failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtocolError::LineTooLong { .. } => ErrorCode::LineTooLong,
            _ => ErrorCode::BadRequest,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty line"),
            ProtocolError::LineTooLong { len } => {
                write!(f, "line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte cap")
            }
            ProtocolError::NotUtf8 => write!(f, "line is not valid utf-8"),
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ProtocolError::MissingField(field) => write!(f, "missing field {field}"),
            ProtocolError::DuplicateField(field) => write!(f, "duplicate field {field}"),
            ProtocolError::UnknownField(field) => write!(f, "unknown field {field:?}"),
            ProtocolError::InvalidValue { field, value, expected } => {
                write!(f, "invalid {field}={value:?} (expected {expected})")
            }
            ProtocolError::UnexpectedToken(token) => write!(f, "unexpected token {token:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Split a line into its command word and the remaining tokens,
/// tolerating any amount of inter-token whitespace. Also handles the
/// shared length / emptiness checks.
fn tokenize(line: &str) -> Result<(String, Vec<&str>), ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::LineTooLong { len: line.len() });
    }
    let mut tokens = line.split_whitespace();
    let Some(command) = tokens.next() else {
        return Err(ProtocolError::Empty);
    };
    Ok((command.to_ascii_uppercase(), tokens.collect()))
}

/// Accumulates `key=value` tokens for one command, with
/// duplicate/unknown detection against the command's field list.
struct Fields<'a> {
    known: &'static [&'static str],
    values: Vec<(&'static str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(known: &'static [&'static str], tokens: &[&'a str]) -> Result<Self, ProtocolError> {
        let mut fields = Fields { known, values: Vec::new() };
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(ProtocolError::UnexpectedToken(token.to_string()));
            };
            let Some(&canon) = fields.known.iter().find(|&&k| k == key) else {
                return Err(ProtocolError::UnknownField(key.to_string()));
            };
            if fields.values.iter().any(|&(k, _)| k == canon) {
                return Err(ProtocolError::DuplicateField(canon));
            }
            fields.values.push((canon, value));
        }
        Ok(fields)
    }

    fn get(&self, key: &'static str) -> Option<&'a str> {
        debug_assert!(self.known.contains(&key));
        self.values.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn require(&self, key: &'static str) -> Result<&'a str, ProtocolError> {
        self.get(key).ok_or(ProtocolError::MissingField(key))
    }
}

fn parse_num<T: std::str::FromStr>(
    field: &'static str,
    value: &str,
    expected: &'static str,
) -> Result<T, ProtocolError> {
    value.parse().map_err(|_| ProtocolError::InvalidValue {
        field,
        value: value.to_string(),
        expected,
    })
}

/// Require that a command came with no arguments at all.
fn no_tokens(tokens: &[&str]) -> Result<(), ProtocolError> {
    match tokens.first() {
        None => Ok(()),
        Some(extra) => Err(ProtocolError::UnexpectedToken(extra.to_string())),
    }
}

/// Parse one request line (without its newline; a trailing `\r` is
/// tolerated). Never panics: every input yields `Ok` or a typed
/// [`ProtocolError`].
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let (command, tokens) = tokenize(line.trim_end_matches(['\r', '\n']))?;
    match command.as_str() {
        "GEN" => {
            let fields = Fields::parse(&["model", "t", "seed", "fmt", "priority"], &tokens)?;
            let model = fields.require("model")?;
            if model.is_empty() {
                return Err(ProtocolError::InvalidValue {
                    field: "model",
                    value: String::new(),
                    expected: "a non-empty registered model name",
                });
            }
            let raw_t = fields.require("t")?;
            let t_len: usize = parse_num("t", raw_t, "a positive integer")?;
            if t_len == 0 {
                return Err(ProtocolError::InvalidValue {
                    field: "t",
                    value: "0".to_string(),
                    expected: "at least 1 snapshot",
                });
            }
            if t_len > MAX_WIRE_T {
                return Err(ProtocolError::InvalidValue {
                    field: "t",
                    value: raw_t.to_string(),
                    expected: "at most MAX_WIRE_T (100000) snapshots per wire request",
                });
            }
            let seed: u64 = parse_num("seed", fields.require("seed")?, "an unsigned integer")?;
            let fmt_raw = fields.require("fmt")?;
            let fmt = WireFormat::parse(fmt_raw).ok_or(ProtocolError::InvalidValue {
                field: "fmt",
                value: fmt_raw.to_string(),
                expected: "tsv or bin",
            })?;
            let priority: i32 = match fields.get("priority") {
                Some(raw) => parse_num("priority", raw, "a signed integer")?,
                None => 0,
            };
            Ok(Request::Gen(GenSpec { model: model.to_string(), t_len, seed, fmt, priority }))
        }
        "STATS" => no_tokens(&tokens).map(|()| Request::Stats),
        "MODELS" => no_tokens(&tokens).map(|()| Request::Models),
        "PING" => no_tokens(&tokens).map(|()| Request::Ping),
        "QUIT" => no_tokens(&tokens).map(|()| Request::Quit),
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// One reply header line, parsed. `Gen`/`Stats`/`Models` headers are
/// followed on the wire by exactly `bytes` bytes of payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyHeader {
    Gen {
        id: u64,
        model: String,
        t_len: usize,
        seed: u64,
        fmt: WireFormat,
        snapshots: usize,
        edges: usize,
        cache_hit: bool,
        bytes: usize,
    },
    Stats { bytes: usize },
    Models { bytes: usize },
    Pong,
    Bye,
    Err { code: ErrorCode, message: String },
}

impl ReplyHeader {
    /// Canonical single-line serialization (no trailing newline).
    /// Control characters in `Err` messages are flattened to spaces so a
    /// header can never smuggle extra protocol lines.
    pub fn to_line(&self) -> String {
        match self {
            ReplyHeader::Gen { id, model, t_len, seed, fmt, snapshots, edges, cache_hit, bytes } => {
                format!(
                    "OK GEN id={id} model={model} t={t_len} seed={seed} fmt={fmt} snapshots={snapshots} edges={edges} cache={} bytes={bytes}",
                    if *cache_hit { "hit" } else { "miss" },
                )
            }
            ReplyHeader::Stats { bytes } => format!("OK STATS bytes={bytes}"),
            ReplyHeader::Models { bytes } => format!("OK MODELS bytes={bytes}"),
            ReplyHeader::Pong => "OK PONG".to_string(),
            ReplyHeader::Bye => "OK BYE".to_string(),
            ReplyHeader::Err { code, message } => {
                let sanitized: String = message
                    .trim()
                    .chars()
                    .map(|c| if c.is_control() { ' ' } else { c })
                    .collect();
                if sanitized.is_empty() {
                    format!("ERR {code}")
                } else {
                    format!("ERR {code} {sanitized}")
                }
            }
        }
    }
}

/// Parse one reply header line. Never panics; every input yields `Ok` or
/// a typed [`ProtocolError`].
pub fn parse_reply(line: &str) -> Result<ReplyHeader, ProtocolError> {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let (command, tokens) = tokenize(trimmed)?;
    match command.as_str() {
        "OK" => {
            let Some((&kind, rest)) = tokens.split_first() else {
                return Err(ProtocolError::MissingField("reply kind"));
            };
            match kind.to_ascii_uppercase().as_str() {
                "GEN" => {
                    let fields = Fields::parse(
                        &["id", "model", "t", "seed", "fmt", "snapshots", "edges", "cache", "bytes"],
                        rest,
                    )?;
                    let fmt_raw = fields.require("fmt")?;
                    let fmt = WireFormat::parse(fmt_raw).ok_or(ProtocolError::InvalidValue {
                        field: "fmt",
                        value: fmt_raw.to_string(),
                        expected: "tsv or bin",
                    })?;
                    let cache_raw = fields.require("cache")?;
                    let cache_hit = match cache_raw {
                        "hit" => true,
                        "miss" => false,
                        other => {
                            return Err(ProtocolError::InvalidValue {
                                field: "cache",
                                value: other.to_string(),
                                expected: "hit or miss",
                            })
                        }
                    };
                    Ok(ReplyHeader::Gen {
                        id: parse_num("id", fields.require("id")?, "an unsigned integer")?,
                        model: fields.require("model")?.to_string(),
                        t_len: parse_num("t", fields.require("t")?, "an unsigned integer")?,
                        seed: parse_num("seed", fields.require("seed")?, "an unsigned integer")?,
                        fmt,
                        snapshots: parse_num(
                            "snapshots",
                            fields.require("snapshots")?,
                            "an unsigned integer",
                        )?,
                        edges: parse_num("edges", fields.require("edges")?, "an unsigned integer")?,
                        cache_hit,
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "STATS" => {
                    let fields = Fields::parse(&["bytes"], rest)?;
                    Ok(ReplyHeader::Stats {
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "MODELS" => {
                    let fields = Fields::parse(&["bytes"], rest)?;
                    Ok(ReplyHeader::Models {
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "PONG" => no_tokens(rest).map(|()| ReplyHeader::Pong),
                "BYE" => no_tokens(rest).map(|()| ReplyHeader::Bye),
                other => Err(ProtocolError::UnknownCommand(format!("OK {other}"))),
            }
        }
        "ERR" => {
            let Some((&code_raw, _)) = tokens.split_first() else {
                return Err(ProtocolError::MissingField("error code"));
            };
            let code = ErrorCode::parse(code_raw).ok_or(ProtocolError::InvalidValue {
                field: "code",
                value: code_raw.to_string(),
                expected: "a known error code",
            })?;
            // The message is everything after the code token, preserved
            // verbatim modulo the surrounding whitespace.
            let message = trimmed
                .split_once(code_raw)
                .map(|(_, rest)| rest.trim())
                .unwrap_or("")
                .to_string();
            Ok(ReplyHeader::Err { code, message })
        }
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_request_round_trips() {
        let line = "GEN model=email t=14 seed=7 fmt=tsv priority=2";
        let parsed = parse_request(line).unwrap();
        assert_eq!(
            parsed,
            Request::Gen(GenSpec {
                model: "email".to_string(),
                t_len: 14,
                seed: 7,
                fmt: WireFormat::Tsv,
                priority: 2,
            })
        );
        assert_eq!(parsed.to_line(), line);
        assert_eq!(parse_request(&parsed.to_line()).unwrap(), parsed);
    }

    #[test]
    fn field_order_is_free_but_serialization_is_canonical() {
        let parsed = parse_request("GEN fmt=bin seed=0 t=1 model=m").unwrap();
        assert_eq!(parsed.to_line(), "GEN model=m t=1 seed=0 fmt=bin");
        assert_eq!(parse_request(&parsed.to_line()).unwrap(), parsed);
    }

    #[test]
    fn bare_commands_parse_and_reject_trailing_tokens() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("MODELS\r").unwrap(), Request::Models);
        assert_eq!(parse_request("  PING  ").unwrap(), Request::Ping);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
        assert!(matches!(
            parse_request("PING now"),
            Err(ProtocolError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn malformed_requests_yield_typed_errors() {
        assert_eq!(parse_request(""), Err(ProtocolError::Empty));
        assert_eq!(parse_request("   \r"), Err(ProtocolError::Empty));
        assert!(matches!(parse_request("NOPE x=1"), Err(ProtocolError::UnknownCommand(_))));
        assert_eq!(
            parse_request("GEN model=m seed=1 fmt=tsv"),
            Err(ProtocolError::MissingField("t"))
        );
        assert_eq!(
            parse_request("GEN model=m t=1 t=2 seed=0 fmt=tsv"),
            Err(ProtocolError::DuplicateField("t"))
        );
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=tsv nonsense=1"),
            Err(ProtocolError::UnknownField(_))
        ));
        assert!(matches!(
            parse_request("GEN model=m t=zero seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        assert!(matches!(
            parse_request("GEN model=m t=0 seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        // The wire caps per-request size: one request must not be able
        // to pin a worker on a multi-hour, memory-exhausting sequence.
        assert!(matches!(
            parse_request(&format!("GEN model=m t={} seed=0 fmt=tsv", MAX_WIRE_T + 1)),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        assert!(parse_request(&format!("GEN model=m t={MAX_WIRE_T} seed=0 fmt=tsv")).is_ok());
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=xml"),
            Err(ProtocolError::InvalidValue { field: "fmt", .. })
        ));
        assert!(matches!(
            parse_request("GEN model= t=1 seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "model", .. })
        ));
        assert!(matches!(
            parse_request("GEN model"),
            Err(ProtocolError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let line = format!("GEN model={} t=1 seed=0 fmt=tsv", "x".repeat(MAX_LINE_BYTES));
        match parse_request(&line) {
            Err(ProtocolError::LineTooLong { len }) => assert_eq!(len, line.len()),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        assert_eq!(
            parse_request(&line).unwrap_err().code(),
            ErrorCode::LineTooLong
        );
    }

    #[test]
    fn reply_headers_round_trip() {
        let replies = [
            ReplyHeader::Gen {
                id: 3,
                model: "email".to_string(),
                t_len: 14,
                seed: 7,
                fmt: WireFormat::Bin,
                snapshots: 14,
                edges: 920,
                cache_hit: true,
                bytes: 18_344,
            },
            ReplyHeader::Stats { bytes: 512 },
            ReplyHeader::Models { bytes: 64 },
            ReplyHeader::Pong,
            ReplyHeader::Bye,
            ReplyHeader::Err {
                code: ErrorCode::QueueFull,
                message: "depth=8 cap=8".to_string(),
            },
            ReplyHeader::Err { code: ErrorCode::Shutdown, message: String::new() },
        ];
        for reply in replies {
            let line = reply.to_line();
            assert_eq!(parse_reply(&line).unwrap(), reply, "{line}");
        }
    }

    #[test]
    fn err_messages_cannot_inject_protocol_lines() {
        let evil = ReplyHeader::Err {
            code: ErrorCode::Internal,
            message: "boom\nOK PONG".to_string(),
        };
        let line = evil.to_line();
        assert!(!line.contains('\n'), "{line:?}");
        match parse_reply(&line).unwrap() {
            ReplyHeader::Err { code: ErrorCode::Internal, message } => {
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_reply_shapes_are_typed_errors() {
        assert!(matches!(parse_reply("OK"), Err(ProtocolError::MissingField(_))));
        assert!(matches!(parse_reply("OK WHAT"), Err(ProtocolError::UnknownCommand(_))));
        assert!(matches!(parse_reply("ERR"), Err(ProtocolError::MissingField(_))));
        assert!(matches!(
            parse_reply("ERR not-a-code nope"),
            Err(ProtocolError::InvalidValue { field: "code", .. })
        ));
        assert!(matches!(parse_reply("HELLO"), Err(ProtocolError::UnknownCommand(_))));
    }
}

//! The newline-delimited line protocol spoken by the TCP
//! [`Frontend`](crate::Frontend).
//!
//! Every request is one UTF-8 line of at most [`MAX_LINE_BYTES`] bytes
//! (newline excluded), a command word followed by space-separated
//! `key=value` fields:
//!
//! ```text
//! AUTH   token=<token> [tag=<tag>]
//! GEN model=<name> t=<T> seed=<S> fmt=tsv|bin [priority=<P>] [tag=<tag>] [tenant=<id>] [trace=<id>]
//! SUB model=<name> t=<T> seed=<S> fmt=tsv|bin [priority=<P>] [tag=<tag>] [tenant=<id>] [trace=<id>]
//! CANCEL tag=<tag>
//! STATS  [tag=<tag>]
//! METRICS [tag=<tag>]
//! MODELS [tag=<tag>]
//! PING   [tag=<tag>]
//! QUIT   [tag=<tag>]
//! ```
//!
//! **Authentication** — on an auth-enabled frontend (one whose
//! [`TenantRegistry`](crate::TenantRegistry) holds tokens), `AUTH` must
//! be the first line of every connection: a valid token is answered
//! with `OK AUTH tenant=<id>` and binds all subsequent commands on the
//! connection to that tenant; an invalid token is answered with
//! `ERR auth-failed` and the connection is closed; *any other first
//! line* is answered with `ERR auth-required` and the connection is
//! closed (an unauthenticated command never reaches the scheduler).
//! With auth off, `AUTH` is optional and acknowledged as the built-in
//! `anonymous` tenant.
//!
//! **Tags and pipelining** — every command accepts an optional
//! client-chosen `tag` (1–64 chars of `[A-Za-z0-9._:~-]`; by convention
//! `~`-prefixed tags are server-assigned). Replies echo the tag, and a
//! connection may keep many tagged requests in flight at once: replies
//! are matched by tag, **not** by submission order — a slow job no
//! longer head-of-line-blocks a fast one. Untagged requests are still
//! answered (untagged), but only tags make concurrent replies
//! unambiguous.
//!
//! Replies are a single header line, optionally followed by exactly
//! `bytes=<N>` bytes of payload:
//!
//! ```text
//! OK AUTH [tag=<tag>] tenant=<id>
//! OK GEN [tag=<tag>] id=<id> model=<name> t=<T> seed=<S> fmt=<F> snapshots=<n> edges=<m> cache=hit|miss bytes=<N> [trace=<id>]
//! OK SUB tag=<tag> model=<name> t=<T> seed=<S> fmt=<F>
//! EVT tag=<tag> snap=<i>/<n> bytes=<N>
//! END tag=<tag> snapshots=<k> edges=<m> status=ok|cancelled [qms=<ms>] [genms=<ms>] [trace=<id>]
//! OK CANCEL tag=<tag> found=true|false
//! OK STATS [tag=<tag>] bytes=<N>
//! OK METRICS [tag=<tag>] bytes=<N>
//! OK MODELS [tag=<tag>] bytes=<N>
//! OK PONG [tag=<tag>]
//! OK BYE [tag=<tag>]
//! ERR <code> [tag=<tag>] [message…]
//! ```
//!
//! **Streaming** — `SUB` is the streaming twin of `GEN`: the server
//! acknowledges with `OK SUB tag=…`, then delivers each snapshot as its
//! own length-prefixed `EVT tag=… snap=<i>/<n>` frame *as generation
//! proceeds* (cache hits replay the same frames), terminated by
//! `END tag=… status=ok`. The concatenation of a stream's `EVT`
//! payloads is byte-identical to the corresponding buffered `GEN`
//! payload. `CANCEL tag=…` abandons a subscription mid-stream: the
//! server stops generating and terminates the stream with
//! `END … status=cancelled` (a failed stream terminates with
//! `ERR <code> tag=…` instead). [`TagDemux`] reassembles interleaved
//! per-tag frames on the client side.
//!
//! Errors never close the connection (except transport failures): a
//! saturated queue answers `ERR queue-full depth=<d> cap=<c>`, too many
//! in-flight tagged jobs answer `ERR too-many-inflight …`, a malformed
//! line answers `ERR bad-request …`, and the client may keep
//! pipelining. Wire `GEN` requests are size-capped at
//! `t <= `[`MAX_WIRE_T`] because a reply buffers the full sequence;
//! longer sequences belong on `SUB` (bounded by one snapshot per frame)
//! or the in-process streaming API.
//!
//! This module is pure parsing/serialization — no sockets — so it can be
//! property-tested exhaustively (see `tests/protocol.rs`): arbitrary
//! byte noise must never panic the parsers, every parsed value
//! re-serializes to a line that parses back to the same value, and
//! random interleavings of tagged frames demux to the correct per-tag
//! payloads.

use std::collections::HashMap;
use std::fmt;

/// Upper bound on a request or reply-header line, newline excluded.
/// Longer lines are rejected with [`ProtocolError::LineTooLong`] before
/// any field parsing happens.
pub const MAX_LINE_BYTES: usize = 4096;

/// Upper bound on `t` in a wire `GEN` request. A wire reply buffers the
/// full sequence (header carries `bytes=<N>`), so an uncapped `t` would
/// let a single request pin a worker and exhaust server memory — the
/// admission cap bounds queue *depth*, this bounds per-job *size*.
/// Callers needing longer sequences use `SUB` (delivered one snapshot
/// per frame, memory bounded by one snapshot) or the in-process API.
pub const MAX_WIRE_T: usize = 100_000;

/// Upper bound on a request tag, in bytes.
pub const MAX_TAG_BYTES: usize = 64;

/// Upper bound on an `AUTH` token, in bytes.
pub const MAX_TOKEN_BYTES: usize = 128;

/// Is `s` a well-formed wire token? 1–128 printable non-space ASCII
/// chars (the `key=value` grammar cannot carry whitespace anyway).
pub fn valid_token(s: &str) -> bool {
    !s.is_empty() && s.len() <= MAX_TOKEN_BYTES && s.bytes().all(|b| b.is_ascii_graphic())
}

/// Is `s` a well-formed tag? 1–64 chars of `[A-Za-z0-9._:~-]`. The `~`
/// prefix is conventionally reserved for server-assigned tags (untagged
/// `SUB`s get one), but nothing enforces that — the per-connection
/// duplicate-tag check is what protects callers from collisions.
pub fn valid_tag(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= MAX_TAG_BYTES
        && s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | '~' | '-'))
}

/// Payload encoding of a `GEN` reply or `SUB` stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// The TSV temporal format of `vrdag_graph::io` (text).
    Tsv,
    /// The compact binary snapshot format of `vrdag_graph::io`.
    Bin,
}

impl WireFormat {
    pub fn as_str(self) -> &'static str {
        match self {
            WireFormat::Tsv => "tsv",
            WireFormat::Bin => "bin",
        }
    }

    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "tsv" => Some(WireFormat::Tsv),
            "bin" => Some(WireFormat::Bin),
            _ => None,
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a `SUB` stream ended (the `status=` field of an `END` frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndStatus {
    /// All `t` snapshots were delivered.
    Ok,
    /// The stream was abandoned by `CANCEL` (or the server stopped
    /// delivering because the connection could no longer accept frames).
    Cancelled,
}

impl EndStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            EndStatus::Ok => "ok",
            EndStatus::Cancelled => "cancelled",
        }
    }

    pub fn parse(s: &str) -> Option<EndStatus> {
        match s {
            "ok" => Some(EndStatus::Ok),
            "cancelled" => Some(EndStatus::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for EndStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `GEN` or `SUB` request: the wire-level twin of
/// [`GenRequest`](crate::GenRequest) (the sink is always the reply
/// stream, so it carries a [`WireFormat`] instead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenSpec {
    /// Registered model name. May not be empty or contain whitespace
    /// (the field grammar cannot express either).
    pub model: String,
    /// Number of snapshots (`>= 1`, enforced at parse time).
    pub t_len: usize,
    /// Determinism address.
    pub seed: u64,
    /// Reply payload encoding.
    pub fmt: WireFormat,
    /// Scheduling priority (optional on the wire, default 0).
    pub priority: i32,
    /// Client-chosen reply tag (optional). Tagged requests may be
    /// pipelined: the reply is matched by tag, not arrival order.
    pub tag: Option<String>,
    /// Internal-hop tenant assertion (optional). A router that has
    /// already terminated `AUTH` stamps the authenticated tenant id
    /// here when relaying to a backend; backends accept the field only
    /// when explicitly configured to trust the hop
    /// ([`FrontendConfig::trust_tenant_assertion`](crate::FrontendConfig))
    /// and reject it with `ERR invalid-request` otherwise. Same
    /// alphabet as tags (tenant ids share it).
    pub tenant: Option<String>,
    /// Internal-hop distributed trace id (optional). Stamped by the
    /// router on relayed requests — the same trust rule as `tenant=`:
    /// accepted only by a frontend that trusts the hop, rejected with
    /// `ERR invalid-request` otherwise (a client cannot forge trace
    /// ids). Echoed back on the terminal `OK GEN`/`END` frame so
    /// clients can correlate. Same alphabet as tags.
    pub trace: Option<String>,
}

impl GenSpec {
    /// An untagged, default-priority spec.
    pub fn new(model: impl Into<String>, t_len: usize, seed: u64, fmt: WireFormat) -> GenSpec {
        GenSpec {
            model: model.into(),
            t_len,
            seed,
            fmt,
            priority: 0,
            tag: None,
            tenant: None,
            trace: None,
        }
    }

    /// Attach a reply tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> GenSpec {
        self.tag = Some(tag.into());
        self
    }

    /// Stamp an internal-hop tenant assertion (router → backend only).
    pub fn with_asserted_tenant(mut self, tenant: impl Into<String>) -> GenSpec {
        self.tenant = Some(tenant.into());
        self
    }

    /// Stamp an internal-hop trace id (router → backend only).
    pub fn with_trace_id(mut self, trace: impl Into<String>) -> GenSpec {
        self.trace = Some(trace.into());
        self
    }
}

/// One request line, parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Authenticate the connection with a pre-shared tenant token.
    Auth {
        token: String,
        tag: Option<String>,
    },
    /// Generate and reply with the full buffered sequence.
    Gen(GenSpec),
    /// Generate and stream each snapshot as its own `EVT` frame.
    Sub(GenSpec),
    /// Abandon the in-flight job registered under `tag` on this
    /// connection.
    Cancel {
        tag: String,
    },
    Stats {
        tag: Option<String>,
    },
    /// Dump the metrics registry in Prometheus text-exposition format.
    Metrics {
        tag: Option<String>,
    },
    Models {
        tag: Option<String>,
    },
    Ping {
        tag: Option<String>,
    },
    Quit {
        tag: Option<String>,
    },
}

fn push_tag(line: &mut String, tag: &Option<String>) {
    if let Some(tag) = tag {
        line.push_str(" tag=");
        line.push_str(tag);
    }
}

impl Request {
    /// Canonical single-line serialization (no trailing newline).
    /// `parse_request(req.to_line()) == Ok(req)` for every valid value,
    /// and a parsed request re-serializes to a stable canonical line.
    pub fn to_line(&self) -> String {
        let gen_line = |word: &str, spec: &GenSpec| {
            let mut line = format!(
                "{word} model={} t={} seed={} fmt={}",
                spec.model, spec.t_len, spec.seed, spec.fmt
            );
            if spec.priority != 0 {
                line.push_str(&format!(" priority={}", spec.priority));
            }
            push_tag(&mut line, &spec.tag);
            if let Some(tenant) = &spec.tenant {
                line.push_str(" tenant=");
                line.push_str(tenant);
            }
            if let Some(trace) = &spec.trace {
                line.push_str(" trace=");
                line.push_str(trace);
            }
            line
        };
        let bare = |word: &str, tag: &Option<String>| {
            let mut line = word.to_string();
            push_tag(&mut line, tag);
            line
        };
        match self {
            Request::Auth { token, tag } => {
                let mut line = format!("AUTH token={token}");
                push_tag(&mut line, tag);
                line
            }
            Request::Gen(spec) => gen_line("GEN", spec),
            Request::Sub(spec) => gen_line("SUB", spec),
            Request::Cancel { tag } => format!("CANCEL tag={tag}"),
            Request::Stats { tag } => bare("STATS", tag),
            Request::Metrics { tag } => bare("METRICS", tag),
            Request::Models { tag } => bare("MODELS", tag),
            Request::Ping { tag } => bare("PING", tag),
            Request::Quit { tag } => bare("QUIT", tag),
        }
    }
}

/// Machine-readable error category carried on `ERR` reply lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frontend requires an `AUTH token=…` greeting before any
    /// other command; sent once, then the connection is closed.
    AuthRequired,
    /// The `AUTH` token did not match any tenant; sent once, then the
    /// connection is closed.
    AuthFailed,
    /// The connection's tenant is over one of its own quotas. Carries
    /// `tenant=<id> limit=<quota> cap=<c>` in the message —
    /// tenant-scoped backpressure (other tenants are unaffected).
    QuotaExceeded,
    /// Admission control rejected the job; retry later (backpressure,
    /// not failure). Carries `depth=<d> cap=<c>` in the message.
    QueueFull,
    /// This connection already has `max_inflight_per_conn` tagged jobs
    /// in flight. Carries `inflight=<n> cap=<c>` in the message.
    TooManyInflight,
    /// The server is at its connection cap; sent as a greeting, after
    /// which the connection is closed. Carries `cap=<c>` in the message.
    TooManyConnections,
    /// The request's tag is already in flight on this connection.
    DuplicateTag,
    /// The tagged job was abandoned by `CANCEL` before its buffered
    /// reply could be produced (streaming `SUB`s end with
    /// `END … status=cancelled` instead).
    Cancelled,
    /// The requested model name is not registered.
    UnknownModel,
    /// The request parsed but was semantically rejected (e.g. `t=0`).
    InvalidRequest,
    /// The line did not parse.
    BadRequest,
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// The service is shutting down.
    Shutdown,
    /// A router could not reach any healthy backend for the request's
    /// shard (all candidates down or dial failed after retries).
    /// Retryable backpressure, like `queue-full`.
    BackendUnavailable,
    /// Generation failed server-side.
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::AuthRequired => "auth-required",
            ErrorCode::AuthFailed => "auth-failed",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::TooManyInflight => "too-many-inflight",
            ErrorCode::TooManyConnections => "too-many-connections",
            ErrorCode::DuplicateTag => "duplicate-tag",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::UnknownModel => "unknown-model",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::LineTooLong => "line-too-long",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::BackendUnavailable => "backend-unavailable",
            ErrorCode::Internal => "internal",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "auth-required" => ErrorCode::AuthRequired,
            "auth-failed" => ErrorCode::AuthFailed,
            "quota-exceeded" => ErrorCode::QuotaExceeded,
            "queue-full" => ErrorCode::QueueFull,
            "too-many-inflight" => ErrorCode::TooManyInflight,
            "too-many-connections" => ErrorCode::TooManyConnections,
            "duplicate-tag" => ErrorCode::DuplicateTag,
            "cancelled" => ErrorCode::Cancelled,
            "unknown-model" => ErrorCode::UnknownModel,
            "invalid-request" => ErrorCode::InvalidRequest,
            "bad-request" => ErrorCode::BadRequest,
            "line-too-long" => ErrorCode::LineTooLong,
            "shutdown" => ErrorCode::Shutdown,
            "backend-unavailable" => ErrorCode::BackendUnavailable,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed parse failure. Every malformed input maps here — the parser
/// never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Empty or whitespace-only line.
    Empty,
    /// Line longer than [`MAX_LINE_BYTES`].
    LineTooLong { len: usize },
    /// The bytes were not valid UTF-8 (reported by the frontend's
    /// capped reader; `&str` inputs cannot hit it).
    NotUtf8,
    /// First word is not a known command.
    UnknownCommand(String),
    /// A required `key=value` field is absent.
    MissingField(&'static str),
    /// The same field appeared twice.
    DuplicateField(&'static str),
    /// A field this command does not define.
    UnknownField(String),
    /// A field value failed to parse or violates its constraint.
    InvalidValue { field: &'static str, value: String, expected: &'static str },
    /// A bare word where `key=value` was expected, or trailing tokens on
    /// a command that takes none.
    UnexpectedToken(String),
}

impl ProtocolError {
    /// The wire error code a frontend should answer this failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtocolError::LineTooLong { .. } => ErrorCode::LineTooLong,
            _ => ErrorCode::BadRequest,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty line"),
            ProtocolError::LineTooLong { len } => {
                write!(f, "line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte cap")
            }
            ProtocolError::NotUtf8 => write!(f, "line is not valid utf-8"),
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ProtocolError::MissingField(field) => write!(f, "missing field {field}"),
            ProtocolError::DuplicateField(field) => write!(f, "duplicate field {field}"),
            ProtocolError::UnknownField(field) => write!(f, "unknown field {field:?}"),
            ProtocolError::InvalidValue { field, value, expected } => {
                write!(f, "invalid {field}={value:?} (expected {expected})")
            }
            ProtocolError::UnexpectedToken(token) => write!(f, "unexpected token {token:?}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Split a line into its command word and the remaining tokens,
/// tolerating any amount of inter-token whitespace. Also handles the
/// shared length / emptiness checks.
fn tokenize(line: &str) -> Result<(String, Vec<&str>), ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::LineTooLong { len: line.len() });
    }
    let mut tokens = line.split_whitespace();
    let Some(command) = tokens.next() else {
        return Err(ProtocolError::Empty);
    };
    Ok((command.to_ascii_uppercase(), tokens.collect()))
}

/// Accumulates `key=value` tokens for one command, with
/// duplicate/unknown detection against the command's field list.
struct Fields<'a> {
    known: &'static [&'static str],
    values: Vec<(&'static str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(known: &'static [&'static str], tokens: &[&'a str]) -> Result<Self, ProtocolError> {
        let mut fields = Fields { known, values: Vec::new() };
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return Err(ProtocolError::UnexpectedToken(token.to_string()));
            };
            let Some(&canon) = fields.known.iter().find(|&&k| k == key) else {
                return Err(ProtocolError::UnknownField(key.to_string()));
            };
            if fields.values.iter().any(|&(k, _)| k == canon) {
                return Err(ProtocolError::DuplicateField(canon));
            }
            fields.values.push((canon, value));
        }
        Ok(fields)
    }

    fn get(&self, key: &'static str) -> Option<&'a str> {
        debug_assert!(self.known.contains(&key));
        self.values.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn require(&self, key: &'static str) -> Result<&'a str, ProtocolError> {
        self.get(key).ok_or(ProtocolError::MissingField(key))
    }

    /// The optional `tag` field, validated.
    fn tag(&self) -> Result<Option<String>, ProtocolError> {
        match self.get("tag") {
            None => Ok(None),
            Some(raw) => validated_tag(raw).map(Some),
        }
    }
}

fn validated_tag(raw: &str) -> Result<String, ProtocolError> {
    if valid_tag(raw) {
        Ok(raw.to_string())
    } else {
        Err(ProtocolError::InvalidValue {
            field: "tag",
            value: raw.to_string(),
            expected: "1-64 chars of [A-Za-z0-9._:~-]",
        })
    }
}

fn parse_num<T: std::str::FromStr>(
    field: &'static str,
    value: &str,
    expected: &'static str,
) -> Result<T, ProtocolError> {
    value.parse().map_err(|_| ProtocolError::InvalidValue {
        field,
        value: value.to_string(),
        expected,
    })
}

fn parse_gen_spec(tokens: &[&str], cap_t: bool) -> Result<GenSpec, ProtocolError> {
    let fields = Fields::parse(
        &["model", "t", "seed", "fmt", "priority", "tag", "tenant", "trace"],
        tokens,
    )?;
    let model = fields.require("model")?;
    if model.is_empty() {
        return Err(ProtocolError::InvalidValue {
            field: "model",
            value: String::new(),
            expected: "a non-empty registered model name",
        });
    }
    let raw_t = fields.require("t")?;
    let t_len: usize = parse_num("t", raw_t, "a positive integer")?;
    if t_len == 0 {
        return Err(ProtocolError::InvalidValue {
            field: "t",
            value: "0".to_string(),
            expected: "at least 1 snapshot",
        });
    }
    if cap_t && t_len > MAX_WIRE_T {
        return Err(ProtocolError::InvalidValue {
            field: "t",
            value: raw_t.to_string(),
            expected: "at most MAX_WIRE_T (100000) snapshots per wire request",
        });
    }
    let seed: u64 = parse_num("seed", fields.require("seed")?, "an unsigned integer")?;
    let fmt_raw = fields.require("fmt")?;
    let fmt = WireFormat::parse(fmt_raw).ok_or(ProtocolError::InvalidValue {
        field: "fmt",
        value: fmt_raw.to_string(),
        expected: "tsv or bin",
    })?;
    let priority: i32 = match fields.get("priority") {
        Some(raw) => parse_num("priority", raw, "a signed integer")?,
        None => 0,
    };
    let tag = fields.tag()?;
    // Tenant ids share the tag alphabet, so the assertion reuses its
    // validator (under a field-specific error).
    let tenant = match fields.get("tenant") {
        None => None,
        Some(raw) if valid_tag(raw) => Some(raw.to_string()),
        Some(raw) => {
            return Err(ProtocolError::InvalidValue {
                field: "tenant",
                value: raw.to_string(),
                expected: "1-64 chars of [A-Za-z0-9._:~-]",
            })
        }
    };
    // Trace ids also share the tag alphabet.
    let trace = parse_trace_field(&fields)?;
    Ok(GenSpec { model: model.to_string(), t_len, seed, fmt, priority, tag, tenant, trace })
}

/// The optional `trace=` field (requests and replies alike), validated
/// against the shared tag alphabet.
fn parse_trace_field(fields: &Fields<'_>) -> Result<Option<String>, ProtocolError> {
    match fields.get("trace") {
        None => Ok(None),
        Some(raw) if valid_tag(raw) => Ok(Some(raw.to_string())),
        Some(raw) => Err(ProtocolError::InvalidValue {
            field: "trace",
            value: raw.to_string(),
            expected: "1-64 chars of [A-Za-z0-9._:~-]",
        }),
    }
}

/// Parse a bare command that accepts only an optional `tag=`.
fn parse_bare(tokens: &[&str]) -> Result<Option<String>, ProtocolError> {
    Fields::parse(&["tag"], tokens)?.tag()
}

/// Parse one request line (without its newline; a trailing `\r` is
/// tolerated). Never panics: every input yields `Ok` or a typed
/// [`ProtocolError`].
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let (command, tokens) = tokenize(line.trim_end_matches(['\r', '\n']))?;
    match command.as_str() {
        "AUTH" => {
            let fields = Fields::parse(&["token", "tag"], &tokens)?;
            let raw = fields.require("token")?;
            if !valid_token(raw) {
                return Err(ProtocolError::InvalidValue {
                    field: "token",
                    value: raw.to_string(),
                    expected: "1-128 printable non-space ASCII chars",
                });
            }
            Ok(Request::Auth { token: raw.to_string(), tag: fields.tag()? })
        }
        // Only GEN buffers the full sequence in a reply, so only GEN
        // carries the MAX_WIRE_T size cap; SUB is bounded by one
        // snapshot per frame and may request sequences of any length.
        "GEN" => Ok(Request::Gen(parse_gen_spec(&tokens, true)?)),
        "SUB" => Ok(Request::Sub(parse_gen_spec(&tokens, false)?)),
        "CANCEL" => {
            let fields = Fields::parse(&["tag"], &tokens)?;
            let tag = validated_tag(fields.require("tag")?)?;
            Ok(Request::Cancel { tag })
        }
        "STATS" => Ok(Request::Stats { tag: parse_bare(&tokens)? }),
        "METRICS" => Ok(Request::Metrics { tag: parse_bare(&tokens)? }),
        "MODELS" => Ok(Request::Models { tag: parse_bare(&tokens)? }),
        "PING" => Ok(Request::Ping { tag: parse_bare(&tokens)? }),
        "QUIT" => Ok(Request::Quit { tag: parse_bare(&tokens)? }),
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// One reply header line, parsed. `Gen`/`Sub`-ack/`Stats`/`Models`
/// headers carrying `bytes=` are followed on the wire by exactly that
/// many payload bytes; so is every `Evt` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyHeader {
    /// Successful `AUTH`: the connection is now bound to `tenant`.
    Auth {
        tag: Option<String>,
        tenant: String,
    },
    /// Buffered reply to `GEN`: header, then the full sequence.
    Gen {
        tag: Option<String>,
        id: u64,
        model: String,
        t_len: usize,
        seed: u64,
        fmt: WireFormat,
        snapshots: usize,
        edges: usize,
        cache_hit: bool,
        bytes: usize,
        /// Distributed trace id of the request, echoed so clients can
        /// correlate with `/traces` on any tier (optional — absent on
        /// servers predating tracing).
        trace: Option<String>,
    },
    /// Acknowledgement of a `SUB`; `EVT` frames for `tag` follow.
    /// (Sent before the job is admitted, so it carries no job id — a
    /// rejected admission follows up with `ERR <code> tag=…`.)
    Sub {
        tag: String,
        model: String,
        t_len: usize,
        seed: u64,
        fmt: WireFormat,
    },
    /// One streamed snapshot (`snap` of `of`), followed by `bytes` of
    /// payload. Concatenating a stream's `EVT` payloads in `snap` order
    /// reproduces the buffered `GEN` payload byte-for-byte.
    Evt {
        tag: String,
        snap: usize,
        of: usize,
        bytes: usize,
    },
    /// Stream terminator: `snapshots` frames were delivered (fewer than
    /// requested when `status=cancelled`). `qms`/`genms` optionally
    /// carry the job's queue-wait and generation durations in whole
    /// milliseconds, from its
    /// [`JobTrace`](vrdag_obs::JobTrace)-derived stage timings.
    End {
        tag: String,
        snapshots: usize,
        edges: usize,
        status: EndStatus,
        qms: Option<u64>,
        genms: Option<u64>,
        /// Distributed trace id of the request (see
        /// [`ReplyHeader::Gen`]'s `trace`).
        trace: Option<String>,
    },
    /// Reply to `CANCEL`: was `tag` in flight on this connection?
    Cancel {
        tag: String,
        found: bool,
    },
    Stats {
        tag: Option<String>,
        bytes: usize,
    },
    /// Reply to `METRICS`: `bytes` of Prometheus text exposition follow.
    Metrics {
        tag: Option<String>,
        bytes: usize,
    },
    Models {
        tag: Option<String>,
        bytes: usize,
    },
    Pong {
        tag: Option<String>,
    },
    Bye {
        tag: Option<String>,
    },
    Err {
        code: ErrorCode,
        tag: Option<String>,
        message: String,
    },
}

impl ReplyHeader {
    /// Payload bytes that follow this header on the wire.
    pub fn payload_bytes(&self) -> usize {
        match self {
            ReplyHeader::Gen { bytes, .. }
            | ReplyHeader::Evt { bytes, .. }
            | ReplyHeader::Stats { bytes, .. }
            | ReplyHeader::Metrics { bytes, .. }
            | ReplyHeader::Models { bytes, .. } => *bytes,
            _ => 0,
        }
    }

    /// The reply tag, if any.
    pub fn tag(&self) -> Option<&str> {
        match self {
            ReplyHeader::Auth { tag, .. }
            | ReplyHeader::Gen { tag, .. }
            | ReplyHeader::Stats { tag, .. }
            | ReplyHeader::Metrics { tag, .. }
            | ReplyHeader::Models { tag, .. }
            | ReplyHeader::Pong { tag }
            | ReplyHeader::Bye { tag }
            | ReplyHeader::Err { tag, .. } => tag.as_deref(),
            ReplyHeader::Sub { tag, .. }
            | ReplyHeader::Evt { tag, .. }
            | ReplyHeader::End { tag, .. }
            | ReplyHeader::Cancel { tag, .. } => Some(tag),
        }
    }

    /// Canonical single-line serialization (no trailing newline).
    /// Control characters in `Err` messages are flattened to spaces so a
    /// header can never smuggle extra protocol lines.
    pub fn to_line(&self) -> String {
        match self {
            ReplyHeader::Auth { tag, tenant } => {
                let mut line = "OK AUTH".to_string();
                push_tag(&mut line, tag);
                line.push_str(" tenant=");
                line.push_str(tenant);
                line
            }
            ReplyHeader::Gen {
                tag,
                id,
                model,
                t_len,
                seed,
                fmt,
                snapshots,
                edges,
                cache_hit,
                bytes,
                trace,
            } => {
                let mut line = "OK GEN".to_string();
                push_tag(&mut line, tag);
                line.push_str(&format!(
                    " id={id} model={model} t={t_len} seed={seed} fmt={fmt} snapshots={snapshots} edges={edges} cache={} bytes={bytes}",
                    if *cache_hit { "hit" } else { "miss" },
                ));
                if let Some(trace) = trace {
                    line.push_str(&format!(" trace={trace}"));
                }
                line
            }
            ReplyHeader::Sub { tag, model, t_len, seed, fmt } => {
                format!("OK SUB tag={tag} model={model} t={t_len} seed={seed} fmt={fmt}")
            }
            ReplyHeader::Evt { tag, snap, of, bytes } => {
                format!("EVT tag={tag} snap={snap}/{of} bytes={bytes}")
            }
            ReplyHeader::End { tag, snapshots, edges, status, qms, genms, trace } => {
                let mut line =
                    format!("END tag={tag} snapshots={snapshots} edges={edges} status={status}");
                if let Some(qms) = qms {
                    line.push_str(&format!(" qms={qms}"));
                }
                if let Some(genms) = genms {
                    line.push_str(&format!(" genms={genms}"));
                }
                if let Some(trace) = trace {
                    line.push_str(&format!(" trace={trace}"));
                }
                line
            }
            ReplyHeader::Cancel { tag, found } => {
                format!("OK CANCEL tag={tag} found={found}")
            }
            ReplyHeader::Stats { tag, bytes } => {
                let mut line = "OK STATS".to_string();
                push_tag(&mut line, tag);
                line.push_str(&format!(" bytes={bytes}"));
                line
            }
            ReplyHeader::Metrics { tag, bytes } => {
                let mut line = "OK METRICS".to_string();
                push_tag(&mut line, tag);
                line.push_str(&format!(" bytes={bytes}"));
                line
            }
            ReplyHeader::Models { tag, bytes } => {
                let mut line = "OK MODELS".to_string();
                push_tag(&mut line, tag);
                line.push_str(&format!(" bytes={bytes}"));
                line
            }
            ReplyHeader::Pong { tag } => {
                let mut line = "OK PONG".to_string();
                push_tag(&mut line, tag);
                line
            }
            ReplyHeader::Bye { tag } => {
                let mut line = "OK BYE".to_string();
                push_tag(&mut line, tag);
                line
            }
            ReplyHeader::Err { code, tag, message } => {
                let mut line = format!("ERR {code}");
                push_tag(&mut line, tag);
                let sanitized: String =
                    message.trim().chars().map(|c| if c.is_control() { ' ' } else { c }).collect();
                if !sanitized.is_empty() {
                    line.push(' ');
                    line.push_str(&sanitized);
                }
                line
            }
        }
    }
}

/// Parse a `snap=<i>/<n>` field value.
fn parse_snap(raw: &str) -> Result<(usize, usize), ProtocolError> {
    let invalid = || ProtocolError::InvalidValue {
        field: "snap",
        value: raw.to_string(),
        expected: "<index>/<total> with index < total",
    };
    let (i, n) = raw.split_once('/').ok_or_else(invalid)?;
    let snap: usize = i.parse().map_err(|_| invalid())?;
    let of: usize = n.parse().map_err(|_| invalid())?;
    if snap >= of {
        return Err(invalid());
    }
    Ok((snap, of))
}

fn parse_fmt_field(fields: &Fields<'_>) -> Result<WireFormat, ProtocolError> {
    let fmt_raw = fields.require("fmt")?;
    WireFormat::parse(fmt_raw).ok_or(ProtocolError::InvalidValue {
        field: "fmt",
        value: fmt_raw.to_string(),
        expected: "tsv or bin",
    })
}

/// Parse one reply header line. Never panics; every input yields `Ok` or
/// a typed [`ProtocolError`].
pub fn parse_reply(line: &str) -> Result<ReplyHeader, ProtocolError> {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let (command, tokens) = tokenize(trimmed)?;
    match command.as_str() {
        "OK" => {
            let Some((&kind, rest)) = tokens.split_first() else {
                return Err(ProtocolError::MissingField("reply kind"));
            };
            match kind.to_ascii_uppercase().as_str() {
                "AUTH" => {
                    let fields = Fields::parse(&["tag", "tenant"], rest)?;
                    // Tenant ids share the tag alphabet.
                    let tenant = fields.require("tenant")?;
                    if !valid_tag(tenant) {
                        return Err(ProtocolError::InvalidValue {
                            field: "tenant",
                            value: tenant.to_string(),
                            expected: "1-64 chars of [A-Za-z0-9._:~-]",
                        });
                    }
                    Ok(ReplyHeader::Auth { tag: fields.tag()?, tenant: tenant.to_string() })
                }
                "GEN" => {
                    let fields = Fields::parse(
                        &[
                            "tag",
                            "id",
                            "model",
                            "t",
                            "seed",
                            "fmt",
                            "snapshots",
                            "edges",
                            "cache",
                            "bytes",
                            "trace",
                        ],
                        rest,
                    )?;
                    let fmt = parse_fmt_field(&fields)?;
                    let cache_raw = fields.require("cache")?;
                    let cache_hit = match cache_raw {
                        "hit" => true,
                        "miss" => false,
                        other => {
                            return Err(ProtocolError::InvalidValue {
                                field: "cache",
                                value: other.to_string(),
                                expected: "hit or miss",
                            })
                        }
                    };
                    Ok(ReplyHeader::Gen {
                        tag: fields.tag()?,
                        id: parse_num("id", fields.require("id")?, "an unsigned integer")?,
                        model: fields.require("model")?.to_string(),
                        t_len: parse_num("t", fields.require("t")?, "an unsigned integer")?,
                        seed: parse_num("seed", fields.require("seed")?, "an unsigned integer")?,
                        fmt,
                        snapshots: parse_num(
                            "snapshots",
                            fields.require("snapshots")?,
                            "an unsigned integer",
                        )?,
                        edges: parse_num("edges", fields.require("edges")?, "an unsigned integer")?,
                        cache_hit,
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                        trace: parse_trace_field(&fields)?,
                    })
                }
                "SUB" => {
                    let fields = Fields::parse(&["tag", "model", "t", "seed", "fmt"], rest)?;
                    Ok(ReplyHeader::Sub {
                        tag: validated_tag(fields.require("tag")?)?,
                        model: fields.require("model")?.to_string(),
                        t_len: parse_num("t", fields.require("t")?, "an unsigned integer")?,
                        seed: parse_num("seed", fields.require("seed")?, "an unsigned integer")?,
                        fmt: parse_fmt_field(&fields)?,
                    })
                }
                "CANCEL" => {
                    let fields = Fields::parse(&["tag", "found"], rest)?;
                    let found = match fields.require("found")? {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(ProtocolError::InvalidValue {
                                field: "found",
                                value: other.to_string(),
                                expected: "true or false",
                            })
                        }
                    };
                    Ok(ReplyHeader::Cancel { tag: validated_tag(fields.require("tag")?)?, found })
                }
                "STATS" => {
                    let fields = Fields::parse(&["tag", "bytes"], rest)?;
                    Ok(ReplyHeader::Stats {
                        tag: fields.tag()?,
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "METRICS" => {
                    let fields = Fields::parse(&["tag", "bytes"], rest)?;
                    Ok(ReplyHeader::Metrics {
                        tag: fields.tag()?,
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "MODELS" => {
                    let fields = Fields::parse(&["tag", "bytes"], rest)?;
                    Ok(ReplyHeader::Models {
                        tag: fields.tag()?,
                        bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
                    })
                }
                "PONG" => Ok(ReplyHeader::Pong { tag: parse_bare(rest)? }),
                "BYE" => Ok(ReplyHeader::Bye { tag: parse_bare(rest)? }),
                other => Err(ProtocolError::UnknownCommand(format!("OK {other}"))),
            }
        }
        "EVT" => {
            let fields = Fields::parse(&["tag", "snap", "bytes"], &tokens)?;
            let (snap, of) = parse_snap(fields.require("snap")?)?;
            Ok(ReplyHeader::Evt {
                tag: validated_tag(fields.require("tag")?)?,
                snap,
                of,
                bytes: parse_num("bytes", fields.require("bytes")?, "an unsigned integer")?,
            })
        }
        "END" => {
            let fields = Fields::parse(
                &["tag", "snapshots", "edges", "status", "qms", "genms", "trace"],
                &tokens,
            )?;
            let status_raw = fields.require("status")?;
            let status = EndStatus::parse(status_raw).ok_or(ProtocolError::InvalidValue {
                field: "status",
                value: status_raw.to_string(),
                expected: "ok or cancelled",
            })?;
            let qms = match fields.get("qms") {
                Some(raw) => Some(parse_num("qms", raw, "an unsigned integer")?),
                None => None,
            };
            let genms = match fields.get("genms") {
                Some(raw) => Some(parse_num("genms", raw, "an unsigned integer")?),
                None => None,
            };
            Ok(ReplyHeader::End {
                tag: validated_tag(fields.require("tag")?)?,
                snapshots: parse_num(
                    "snapshots",
                    fields.require("snapshots")?,
                    "an unsigned integer",
                )?,
                edges: parse_num("edges", fields.require("edges")?, "an unsigned integer")?,
                status,
                qms,
                genms,
                trace: parse_trace_field(&fields)?,
            })
        }
        "ERR" => {
            let Some((&code_raw, rest)) = tokens.split_first() else {
                return Err(ProtocolError::MissingField("error code"));
            };
            let code = ErrorCode::parse(code_raw).ok_or(ProtocolError::InvalidValue {
                field: "code",
                value: code_raw.to_string(),
                expected: "a known error code",
            })?;
            // An optional `tag=<t>` token immediately after the code; the
            // message is everything after that, preserved verbatim modulo
            // the surrounding whitespace. (A message that itself begins
            // with a well-formed `tag=` token is indistinguishable from a
            // reply tag — servers never produce one.)
            let mut tag = None;
            let mut message_start = code_raw;
            if let Some(&first) = rest.first() {
                if let Some(raw) = first.strip_prefix("tag=") {
                    if valid_tag(raw) {
                        tag = Some(raw.to_string());
                        message_start = first;
                    }
                }
            }
            let message = trimmed
                .split_once(message_start)
                .map(|(_, rest)| rest.trim())
                .unwrap_or("")
                .to_string();
            Ok(ReplyHeader::Err { code, tag, message })
        }
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// How a demuxed per-tag stream ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamOutcome {
    /// A buffered `OK GEN` reply (the whole payload arrived in one frame).
    Reply,
    /// `END … status=ok` — all snapshots delivered.
    Complete,
    /// `END … status=cancelled` — abandoned mid-stream.
    Cancelled,
    /// Terminated by `ERR <code> tag=…`.
    Failed { code: ErrorCode, message: String },
}

/// The demuxed state of one tag: accumulated payload plus bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct TagStream {
    /// Concatenated payload bytes, in `snap` order.
    pub payload: Vec<u8>,
    /// `EVT` frames received so far.
    pub frames: usize,
    /// Total `EVT` frames the stream declared (`of` / the `SUB` ack's `t`).
    pub expected: Option<usize>,
    /// Total temporal edges reported by `END`.
    pub edges: usize,
    /// Set once the stream terminated.
    pub outcome: Option<StreamOutcome>,
}

impl TagStream {
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }
}

/// Why [`TagDemux::feed`] rejected a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DemuxError {
    /// The frame carries no tag (or is not a per-tag stream frame).
    Untagged,
    /// A frame arrived for a tag that already terminated.
    AfterEnd { tag: String },
    /// An `EVT` arrived out of order for its tag.
    OutOfOrder { tag: String, got: usize, expected: usize },
    /// An `EVT`'s declared total disagrees with an earlier frame.
    TotalMismatch { tag: String, got: usize, expected: usize },
    /// An `END` reported a different frame count than was delivered.
    CountMismatch { tag: String, reported: usize, delivered: usize },
}

impl fmt::Display for DemuxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemuxError::Untagged => write!(f, "frame carries no tag"),
            DemuxError::AfterEnd { tag } => write!(f, "frame for already-terminated tag {tag:?}"),
            DemuxError::OutOfOrder { tag, got, expected } => {
                write!(f, "tag {tag:?}: EVT snap={got} arrived, expected snap={expected}")
            }
            DemuxError::TotalMismatch { tag, got, expected } => {
                write!(
                    f,
                    "tag {tag:?}: EVT declares {got} total frames, stream began with {expected}"
                )
            }
            DemuxError::CountMismatch { tag, reported, delivered } => {
                write!(
                    f,
                    "tag {tag:?}: END reports {reported} snapshots, {delivered} were delivered"
                )
            }
        }
    }
}

impl std::error::Error for DemuxError {}

/// Client-side reassembly of interleaved, tagged reply frames.
///
/// Feed every `OK GEN` / `OK SUB` / `EVT` / `END` / tagged-`ERR` frame a
/// connection delivers (in arrival order); the demux routes each to its
/// tag's [`TagStream`], enforcing per-tag frame order and consistency.
/// Frames for *different* tags may interleave arbitrarily — that is the
/// whole point of the pipelined protocol — and still demux to the exact
/// per-tag payloads (property-tested in `tests/protocol.rs`).
#[derive(Debug, Default)]
pub struct TagDemux {
    streams: HashMap<String, TagStream>,
}

impl TagDemux {
    pub fn new() -> TagDemux {
        TagDemux::default()
    }

    /// Route one frame. `payload` must be the `bytes=`-declared bytes
    /// that followed the header on the wire.
    pub fn feed(&mut self, header: &ReplyHeader, payload: &[u8]) -> Result<(), DemuxError> {
        match header {
            ReplyHeader::Gen { tag: Some(tag), .. } => {
                let stream = self.terminal(tag)?;
                stream.payload.extend_from_slice(payload);
                stream.outcome = Some(StreamOutcome::Reply);
                Ok(())
            }
            ReplyHeader::Sub { tag, t_len, .. } => {
                let stream = self.open(tag)?;
                match stream.expected {
                    None => stream.expected = Some(*t_len),
                    Some(expected) if expected != *t_len => {
                        return Err(DemuxError::TotalMismatch {
                            tag: tag.clone(),
                            got: *t_len,
                            expected,
                        })
                    }
                    Some(_) => {}
                }
                Ok(())
            }
            ReplyHeader::Evt { tag, snap, of, .. } => {
                let stream = self.open(tag)?;
                match stream.expected {
                    None => stream.expected = Some(*of),
                    Some(expected) if expected != *of => {
                        return Err(DemuxError::TotalMismatch {
                            tag: tag.clone(),
                            got: *of,
                            expected,
                        })
                    }
                    Some(_) => {}
                }
                if *snap != stream.frames {
                    return Err(DemuxError::OutOfOrder {
                        tag: tag.clone(),
                        got: *snap,
                        expected: stream.frames,
                    });
                }
                stream.frames += 1;
                stream.payload.extend_from_slice(payload);
                Ok(())
            }
            ReplyHeader::End { tag, snapshots, edges, status, .. } => {
                let delivered = self.streams.get(tag.as_str()).map_or(0, |s| s.frames);
                if *snapshots != delivered {
                    return Err(DemuxError::CountMismatch {
                        tag: tag.clone(),
                        reported: *snapshots,
                        delivered,
                    });
                }
                let outcome = match status {
                    EndStatus::Ok => StreamOutcome::Complete,
                    EndStatus::Cancelled => StreamOutcome::Cancelled,
                };
                let stream = self.terminal(tag)?;
                stream.edges = *edges;
                stream.outcome = Some(outcome);
                Ok(())
            }
            ReplyHeader::Err { code, tag: Some(tag), message } => {
                let stream = self.terminal(tag)?;
                stream.outcome =
                    Some(StreamOutcome::Failed { code: *code, message: message.clone() });
                Ok(())
            }
            _ => Err(DemuxError::Untagged),
        }
    }

    /// The entry for `tag`, created on first use, rejecting terminated
    /// streams.
    fn open(&mut self, tag: &str) -> Result<&mut TagStream, DemuxError> {
        let stream = self.streams.entry(tag.to_string()).or_default();
        if stream.is_done() {
            return Err(DemuxError::AfterEnd { tag: tag.to_string() });
        }
        Ok(stream)
    }

    /// Like [`open`](Self::open) but for frames that terminate the tag.
    fn terminal(&mut self, tag: &str) -> Result<&mut TagStream, DemuxError> {
        self.open(tag)
    }

    pub fn get(&self, tag: &str) -> Option<&TagStream> {
        self.streams.get(tag)
    }

    /// Remove and return a (typically finished) stream.
    pub fn take(&mut self, tag: &str) -> Option<TagStream> {
        self.streams.remove(tag)
    }

    /// Tags with a terminated stream.
    pub fn finished(&self) -> impl Iterator<Item = &str> {
        self.streams.iter().filter(|(_, s)| s.is_done()).map(|(t, _)| t.as_str())
    }

    /// Tags still mid-stream.
    pub fn pending(&self) -> impl Iterator<Item = &str> {
        self.streams.iter().filter(|(_, s)| !s.is_done()).map(|(t, _)| t.as_str())
    }

    pub fn len(&self) -> usize {
        self.streams.len()
    }

    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_request_round_trips() {
        let line = "GEN model=email t=14 seed=7 fmt=tsv priority=2";
        let parsed = parse_request(line).unwrap();
        assert_eq!(
            parsed,
            Request::Gen(GenSpec {
                model: "email".to_string(),
                t_len: 14,
                seed: 7,
                fmt: WireFormat::Tsv,
                priority: 2,
                tag: None,
                tenant: None,
                trace: None,
            })
        );
        assert_eq!(parsed.to_line(), line);
        assert_eq!(parse_request(&parsed.to_line()).unwrap(), parsed);
    }

    #[test]
    fn tagged_requests_round_trip() {
        let line = "GEN model=email t=14 seed=7 fmt=tsv tag=job-1.a";
        let parsed = parse_request(line).unwrap();
        match &parsed {
            Request::Gen(spec) => assert_eq!(spec.tag.as_deref(), Some("job-1.a")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parsed.to_line(), line);

        let sub = parse_request("SUB model=m t=5 seed=0 fmt=bin tag=s1").unwrap();
        assert_eq!(sub, Request::Sub(GenSpec::new("m", 5, 0, WireFormat::Bin).with_tag("s1")));
        assert_eq!(parse_request(&sub.to_line()).unwrap(), sub);

        let cancel = parse_request("CANCEL tag=s1").unwrap();
        assert_eq!(cancel, Request::Cancel { tag: "s1".to_string() });
        assert_eq!(cancel.to_line(), "CANCEL tag=s1");

        let ping = parse_request("PING tag=hb").unwrap();
        assert_eq!(ping, Request::Ping { tag: Some("hb".to_string()) });
        assert_eq!(ping.to_line(), "PING tag=hb");
    }

    #[test]
    fn tenant_assertion_round_trips() {
        let line = "GEN model=m t=4 seed=9 fmt=bin tag=j1 tenant=gold";
        let parsed = parse_request(line).unwrap();
        assert_eq!(
            parsed,
            Request::Gen(
                GenSpec::new("m", 4, 9, WireFormat::Bin)
                    .with_tag("j1")
                    .with_asserted_tenant("gold")
            )
        );
        assert_eq!(parsed.to_line(), line);
        let sub = parse_request("SUB model=m t=4 seed=9 fmt=tsv tenant=t.1").unwrap();
        match &sub {
            Request::Sub(spec) => assert_eq!(spec.tenant.as_deref(), Some("t.1")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_request(&sub.to_line()).unwrap(), sub);
        // The assertion shares the tag alphabet: empty / spacey ids fail.
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=tsv tenant="),
            Err(ProtocolError::InvalidValue { field: "tenant", .. })
        ));
        assert!(matches!(
            parse_request(&format!("GEN model=m t=1 seed=0 fmt=tsv tenant={}", "x".repeat(65))),
            Err(ProtocolError::InvalidValue { field: "tenant", .. })
        ));
        // The router-facing error code round-trips like the others.
        assert_eq!(
            ErrorCode::parse(ErrorCode::BackendUnavailable.as_str()),
            Some(ErrorCode::BackendUnavailable)
        );
    }

    #[test]
    fn auth_request_and_reply_round_trip() {
        let req = parse_request("AUTH token=s3cr3t-token").unwrap();
        assert_eq!(req, Request::Auth { token: "s3cr3t-token".to_string(), tag: None });
        assert_eq!(req.to_line(), "AUTH token=s3cr3t-token");
        let tagged = parse_request("AUTH token=abc tag=a1").unwrap();
        assert_eq!(tagged, Request::Auth { token: "abc".to_string(), tag: Some("a1".to_string()) });
        assert_eq!(parse_request(&tagged.to_line()).unwrap(), tagged);
        // Tokens may use the full printable-ASCII alphabet (minus space).
        assert!(parse_request("AUTH token=p@$$w0rd!{}~").is_ok());
        assert!(matches!(parse_request("AUTH"), Err(ProtocolError::MissingField("token"))));
        assert!(matches!(
            parse_request("AUTH token="),
            Err(ProtocolError::InvalidValue { field: "token", .. })
        ));
        assert!(matches!(
            parse_request(&format!("AUTH token={}", "x".repeat(MAX_TOKEN_BYTES + 1))),
            Err(ProtocolError::InvalidValue { field: "token", .. })
        ));

        for reply in [
            ReplyHeader::Auth { tag: None, tenant: "gold".to_string() },
            ReplyHeader::Auth { tag: Some("a1".to_string()), tenant: "bronze".to_string() },
        ] {
            let line = reply.to_line();
            assert_eq!(parse_reply(&line).unwrap(), reply, "{line}");
        }
        assert!(matches!(
            parse_reply("OK AUTH tenant=sp ce"),
            Err(ProtocolError::UnexpectedToken(_)) | Err(ProtocolError::InvalidValue { .. })
        ));
        assert!(matches!(parse_reply("OK AUTH"), Err(ProtocolError::MissingField("tenant"))));
    }

    #[test]
    fn auth_error_codes_round_trip() {
        for code in [ErrorCode::AuthRequired, ErrorCode::AuthFailed, ErrorCode::QuotaExceeded] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        let err = ReplyHeader::Err {
            code: ErrorCode::QuotaExceeded,
            tag: Some("j1".to_string()),
            message: "tenant=bronze limit=max_inflight cap=2".to_string(),
        };
        assert_eq!(parse_reply(&err.to_line()).unwrap(), err);
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=tsv tag="),
            Err(ProtocolError::InvalidValue { field: "tag", .. })
        ));
        assert!(matches!(
            parse_request(&format!("PING tag={}", "x".repeat(MAX_TAG_BYTES + 1))),
            Err(ProtocolError::InvalidValue { field: "tag", .. })
        ));
        assert!(matches!(
            parse_request("CANCEL tag=sp%ce"),
            Err(ProtocolError::InvalidValue { field: "tag", .. })
        ));
        assert!(matches!(parse_request("CANCEL"), Err(ProtocolError::MissingField("tag"))));
        assert!(valid_tag("~42") && valid_tag("a.b:c_d-e") && !valid_tag(""));
    }

    #[test]
    fn field_order_is_free_but_serialization_is_canonical() {
        let parsed = parse_request("GEN tag=z fmt=bin seed=0 t=1 model=m").unwrap();
        assert_eq!(parsed.to_line(), "GEN model=m t=1 seed=0 fmt=bin tag=z");
        assert_eq!(parse_request(&parsed.to_line()).unwrap(), parsed);
    }

    #[test]
    fn bare_commands_parse_and_reject_trailing_tokens() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats { tag: None });
        assert_eq!(parse_request("MODELS\r").unwrap(), Request::Models { tag: None });
        assert_eq!(parse_request("  PING  ").unwrap(), Request::Ping { tag: None });
        assert_eq!(parse_request("quit").unwrap(), Request::Quit { tag: None });
        assert!(matches!(parse_request("PING now"), Err(ProtocolError::UnexpectedToken(_))));
    }

    #[test]
    fn metrics_round_trips() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics { tag: None });
        let tagged = parse_request("metrics tag=mx").unwrap();
        assert_eq!(tagged, Request::Metrics { tag: Some("mx".to_string()) });
        assert_eq!(tagged.to_line(), "METRICS tag=mx");
        assert_eq!(parse_request(&tagged.to_line()).unwrap(), tagged);
        assert!(matches!(parse_request("METRICS now"), Err(ProtocolError::UnexpectedToken(_))));

        let reply = ReplyHeader::Metrics { tag: Some("mx".to_string()), bytes: 777 };
        assert_eq!(reply.to_line(), "OK METRICS tag=mx bytes=777");
        assert_eq!(parse_reply(&reply.to_line()).unwrap(), reply);
        assert_eq!(reply.payload_bytes(), 777);
        assert!(matches!(parse_reply("OK METRICS"), Err(ProtocolError::MissingField("bytes"))));
    }

    #[test]
    fn end_stage_timings_are_optional_and_round_trip() {
        // Legacy END lines (no qms/genms) still parse.
        let legacy = parse_reply("END tag=s1 snapshots=2 edges=9 status=ok").unwrap();
        match legacy {
            ReplyHeader::End { qms, genms, .. } => assert_eq!((qms, genms), (None, None)),
            other => panic!("unexpected {other:?}"),
        }
        let timed = ReplyHeader::End {
            tag: "s1".to_string(),
            snapshots: 2,
            edges: 9,
            status: EndStatus::Ok,
            qms: Some(0),
            genms: Some(1234),
            trace: None,
        };
        assert_eq!(timed.to_line(), "END tag=s1 snapshots=2 edges=9 status=ok qms=0 genms=1234");
        assert_eq!(parse_reply(&timed.to_line()).unwrap(), timed);
        let traced = ReplyHeader::End {
            tag: "s1".to_string(),
            snapshots: 2,
            edges: 9,
            status: EndStatus::Ok,
            qms: None,
            genms: None,
            trace: Some("deadbeef-1".to_string()),
        };
        assert_eq!(traced.to_line(), "END tag=s1 snapshots=2 edges=9 status=ok trace=deadbeef-1");
        assert_eq!(parse_reply(&traced.to_line()).unwrap(), traced);
        assert!(matches!(
            parse_reply("END tag=s1 snapshots=2 edges=9 status=ok qms=soon"),
            Err(ProtocolError::InvalidValue { field: "qms", .. })
        ));
    }

    #[test]
    fn malformed_requests_yield_typed_errors() {
        assert_eq!(parse_request(""), Err(ProtocolError::Empty));
        assert_eq!(parse_request("   \r"), Err(ProtocolError::Empty));
        assert!(matches!(parse_request("NOPE x=1"), Err(ProtocolError::UnknownCommand(_))));
        assert_eq!(
            parse_request("GEN model=m seed=1 fmt=tsv"),
            Err(ProtocolError::MissingField("t"))
        );
        assert_eq!(
            parse_request("GEN model=m t=1 t=2 seed=0 fmt=tsv"),
            Err(ProtocolError::DuplicateField("t"))
        );
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=tsv nonsense=1"),
            Err(ProtocolError::UnknownField(_))
        ));
        assert!(matches!(
            parse_request("GEN model=m t=zero seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        assert!(matches!(
            parse_request("GEN model=m t=0 seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        // The wire caps per-request size: one request must not be able
        // to pin a worker on a multi-hour, memory-exhausting sequence.
        assert!(matches!(
            parse_request(&format!("GEN model=m t={} seed=0 fmt=tsv", MAX_WIRE_T + 1)),
            Err(ProtocolError::InvalidValue { field: "t", .. })
        ));
        assert!(parse_request(&format!("GEN model=m t={MAX_WIRE_T} seed=0 fmt=tsv")).is_ok());
        // SUB is the documented escape hatch for long sequences: one
        // snapshot per frame, so the buffered-reply cap does not apply.
        assert!(parse_request(&format!("SUB model=m t={} seed=0 fmt=tsv", MAX_WIRE_T + 1)).is_ok());
        assert!(matches!(
            parse_request("GEN model=m t=1 seed=0 fmt=xml"),
            Err(ProtocolError::InvalidValue { field: "fmt", .. })
        ));
        assert!(matches!(
            parse_request("GEN model= t=1 seed=0 fmt=tsv"),
            Err(ProtocolError::InvalidValue { field: "model", .. })
        ));
        assert!(matches!(parse_request("GEN model"), Err(ProtocolError::UnexpectedToken(_))));
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let line = format!("GEN model={} t=1 seed=0 fmt=tsv", "x".repeat(MAX_LINE_BYTES));
        match parse_request(&line) {
            Err(ProtocolError::LineTooLong { len }) => assert_eq!(len, line.len()),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        assert_eq!(parse_request(&line).unwrap_err().code(), ErrorCode::LineTooLong);
    }

    #[test]
    fn reply_headers_round_trip() {
        let replies = [
            ReplyHeader::Gen {
                tag: None,
                id: 3,
                model: "email".to_string(),
                t_len: 14,
                seed: 7,
                fmt: WireFormat::Bin,
                snapshots: 14,
                edges: 920,
                cache_hit: true,
                bytes: 18_344,
                trace: None,
            },
            ReplyHeader::Gen {
                tag: Some("a1".to_string()),
                id: 4,
                model: "email".to_string(),
                t_len: 2,
                seed: 0,
                fmt: WireFormat::Tsv,
                snapshots: 2,
                edges: 10,
                cache_hit: false,
                bytes: 64,
                trace: Some("cafe-7".to_string()),
            },
            ReplyHeader::Sub {
                tag: "s1".to_string(),
                model: "email".to_string(),
                t_len: 14,
                seed: 7,
                fmt: WireFormat::Tsv,
            },
            ReplyHeader::Evt { tag: "s1".to_string(), snap: 0, of: 14, bytes: 512 },
            ReplyHeader::Evt { tag: "s1".to_string(), snap: 13, of: 14, bytes: 40 },
            ReplyHeader::End {
                tag: "s1".to_string(),
                snapshots: 14,
                edges: 920,
                status: EndStatus::Ok,
                qms: None,
                genms: None,
                trace: None,
            },
            ReplyHeader::End {
                tag: "s2".to_string(),
                snapshots: 3,
                edges: 17,
                status: EndStatus::Cancelled,
                qms: Some(12),
                genms: Some(340),
                trace: Some("beef-2".to_string()),
            },
            ReplyHeader::Cancel { tag: "s2".to_string(), found: true },
            ReplyHeader::Cancel { tag: "nope".to_string(), found: false },
            ReplyHeader::Stats { tag: None, bytes: 512 },
            ReplyHeader::Stats { tag: Some("st".to_string()), bytes: 512 },
            ReplyHeader::Metrics { tag: None, bytes: 2048 },
            ReplyHeader::Metrics { tag: Some("mx".to_string()), bytes: 0 },
            ReplyHeader::Models { tag: None, bytes: 64 },
            ReplyHeader::Pong { tag: Some("hb".to_string()) },
            ReplyHeader::Bye { tag: None },
            ReplyHeader::Err {
                code: ErrorCode::QueueFull,
                tag: None,
                message: "depth=8 cap=8".to_string(),
            },
            ReplyHeader::Err {
                code: ErrorCode::Cancelled,
                tag: Some("a1".to_string()),
                message: "job cancelled".to_string(),
            },
            ReplyHeader::Err { code: ErrorCode::Shutdown, tag: None, message: String::new() },
        ];
        for reply in replies {
            let line = reply.to_line();
            assert_eq!(parse_reply(&line).unwrap(), reply, "{line}");
        }
    }

    #[test]
    fn evt_frames_reject_malformed_snap() {
        assert!(matches!(
            parse_reply("EVT tag=s1 snap=3 bytes=10"),
            Err(ProtocolError::InvalidValue { field: "snap", .. })
        ));
        assert!(matches!(
            parse_reply("EVT tag=s1 snap=5/5 bytes=10"),
            Err(ProtocolError::InvalidValue { field: "snap", .. })
        ));
        assert!(matches!(
            parse_reply("EVT tag=s1 snap=a/b bytes=10"),
            Err(ProtocolError::InvalidValue { field: "snap", .. })
        ));
        assert!(matches!(
            parse_reply("EVT snap=0/1 bytes=10"),
            Err(ProtocolError::MissingField("tag"))
        ));
    }

    #[test]
    fn err_messages_cannot_inject_protocol_lines() {
        let evil = ReplyHeader::Err {
            code: ErrorCode::Internal,
            tag: Some("t1".to_string()),
            message: "boom\nOK PONG".to_string(),
        };
        let line = evil.to_line();
        assert!(!line.contains('\n'), "{line:?}");
        match parse_reply(&line).unwrap() {
            ReplyHeader::Err { code: ErrorCode::Internal, tag, message } => {
                assert_eq!(tag.as_deref(), Some("t1"));
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_reply_shapes_are_typed_errors() {
        assert!(matches!(parse_reply("OK"), Err(ProtocolError::MissingField(_))));
        assert!(matches!(parse_reply("OK WHAT"), Err(ProtocolError::UnknownCommand(_))));
        assert!(matches!(parse_reply("ERR"), Err(ProtocolError::MissingField(_))));
        assert!(matches!(
            parse_reply("ERR not-a-code nope"),
            Err(ProtocolError::InvalidValue { field: "code", .. })
        ));
        assert!(matches!(parse_reply("HELLO"), Err(ProtocolError::UnknownCommand(_))));
    }

    #[test]
    fn demux_reassembles_interleaved_streams() {
        let mut demux = TagDemux::new();
        let frames: Vec<(ReplyHeader, &[u8])> = vec![
            (
                ReplyHeader::Sub {
                    tag: "a".into(),
                    model: "m".into(),
                    t_len: 2,
                    seed: 0,
                    fmt: WireFormat::Tsv,
                },
                b"",
            ),
            (ReplyHeader::Evt { tag: "a".into(), snap: 0, of: 2, bytes: 3 }, b"aaa"),
            (ReplyHeader::Evt { tag: "b".into(), snap: 0, of: 1, bytes: 2 }, b"bb"),
            (
                ReplyHeader::Gen {
                    tag: Some("c".into()),
                    id: 2,
                    model: "m".into(),
                    t_len: 1,
                    seed: 9,
                    fmt: WireFormat::Bin,
                    snapshots: 1,
                    edges: 4,
                    cache_hit: false,
                    bytes: 4,
                    trace: None,
                },
                b"cccc",
            ),
            (ReplyHeader::Evt { tag: "a".into(), snap: 1, of: 2, bytes: 3 }, b"AAA"),
            (
                ReplyHeader::End {
                    tag: "b".into(),
                    snapshots: 1,
                    edges: 5,
                    status: EndStatus::Cancelled,
                    qms: None,
                    genms: None,
                    trace: None,
                },
                b"",
            ),
            (
                ReplyHeader::End {
                    tag: "a".into(),
                    snapshots: 2,
                    edges: 9,
                    status: EndStatus::Ok,
                    qms: Some(1),
                    genms: Some(7),
                    trace: None,
                },
                b"",
            ),
        ];
        for (header, payload) in &frames {
            demux.feed(header, payload).unwrap();
        }
        assert_eq!(demux.get("a").unwrap().payload, b"aaaAAA");
        assert_eq!(demux.get("a").unwrap().outcome, Some(StreamOutcome::Complete));
        assert_eq!(demux.get("a").unwrap().edges, 9);
        assert_eq!(demux.get("b").unwrap().payload, b"bb");
        assert_eq!(demux.get("b").unwrap().outcome, Some(StreamOutcome::Cancelled));
        assert_eq!(demux.get("c").unwrap().payload, b"cccc");
        assert_eq!(demux.get("c").unwrap().outcome, Some(StreamOutcome::Reply));
        assert_eq!(demux.finished().count(), 3);
        assert_eq!(demux.pending().count(), 0);
    }

    #[test]
    fn demux_rejects_inconsistent_frames() {
        let mut demux = TagDemux::new();
        let evt = |snap, of| ReplyHeader::Evt { tag: "a".into(), snap, of, bytes: 1 };
        demux.feed(&evt(0, 3), b"x").unwrap();
        assert!(matches!(
            demux.feed(&evt(2, 3), b"x"),
            Err(DemuxError::OutOfOrder { got: 2, expected: 1, .. })
        ));
        assert!(matches!(
            demux.feed(&evt(1, 4), b"x"),
            Err(DemuxError::TotalMismatch { got: 4, expected: 3, .. })
        ));
        assert!(matches!(
            demux.feed(
                &ReplyHeader::End {
                    tag: "a".into(),
                    snapshots: 3,
                    edges: 0,
                    status: EndStatus::Ok,
                    qms: None,
                    genms: None,
                    trace: None,
                },
                b"",
            ),
            Err(DemuxError::CountMismatch { reported: 3, delivered: 1, .. })
        ));
        demux
            .feed(
                &ReplyHeader::End {
                    tag: "a".into(),
                    snapshots: 1,
                    edges: 0,
                    status: EndStatus::Cancelled,
                    qms: None,
                    genms: None,
                    trace: None,
                },
                b"",
            )
            .unwrap();
        assert!(matches!(demux.feed(&evt(1, 3), b"x"), Err(DemuxError::AfterEnd { .. })));
        assert!(matches!(
            demux.feed(&ReplyHeader::Pong { tag: None }, b""),
            Err(DemuxError::Untagged)
        ));
    }
}

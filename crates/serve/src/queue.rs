//! The shared work queue drained by the service core's worker pool:
//! weighted-fair selection across tenants, and within each tenant
//! per-model-artifact FIFO groups with priority-first, affinity-aware
//! selection and in-flight coalescing of identical requests.
//!
//! **Tenant fairness (deficit round robin)** — queued jobs are first
//! partitioned into per-tenant lanes. Each lane holds a *deficit*
//! counter in snapshot units; when no lane can afford its next job the
//! scheduler advances one or more virtual rounds, granting every
//! runnable lane `weight` snapshots per round, and then serves the
//! first affordable lane in rotation order (deficit -= job cost, cost =
//! `t_len`). Under contention a weight-3 tenant therefore drains ~3
//! snapshots for every 1 a weight-1 tenant drains, and one tenant's
//! burst of heavy `SUB` jobs cannot starve the others. A lane running
//! alone is served immediately with its deficit pinned to zero, so solo
//! traffic neither pays for nor hoards credit against future
//! contention. Priority remains a *within-tenant* concept: it picks
//! which of a tenant's jobs runs next, never whose turn it is.
//!
//! **Model-affinity batching** — within the selected tenant's lane,
//! jobs are grouped by model artifact (content fingerprint). A worker
//! keeps draining its current model's group before switching, so a
//! batch of `k` jobs against one model pays the deserialization cost
//! once per worker *per batch*. Group selection is priority-first: a
//! group's effective priority is the highest
//! [`GenRequest::priority`](crate::GenRequest::priority) among its
//! runnable queued jobs (ties broken by arrival), and a worker abandons
//! its affinity when a strictly higher-priority group is waiting.
//!
//! **Coalescing** — when a [`SnapshotCache`] is attached, a queued
//! duplicate of a `(model, t_len, seed)` key that is already generating
//! on another worker is held back until the key finishes, then pops as a
//! cache hit — across tenant lanes too (the cache is shared); keys
//! observed to finish uncached are exempt.
//!
//! Jobs carry their own completion channel ([`Job::reply`]): workers push
//! results to the submitting caller instead of the queue owning a result
//! vector, which is what lets the service core stay long-lived — nothing
//! accumulates in the queue between `stats()` snapshots.

use crate::cache::{CacheKey, SnapshotCache};
use crate::core::{job_cache_key, CancelToken, CompletionNotify, GenSink, JobId, JobResult};
use crate::registry::ModelHandle;
use crate::tenant::{Tenant, TenantId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// A queued unit of work: one generation request bound to its resolved
/// model handle, the tenant it runs on behalf of, and the channel its
/// [`JobResult`] is delivered on.
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) handle: ModelHandle,
    pub(crate) tenant: Arc<Tenant>,
    pub(crate) t_len: usize,
    pub(crate) seed: u64,
    pub(crate) priority: i32,
    pub(crate) sink: GenSink,
    /// Cooperative cancellation flag. A token tripped while the job is
    /// still queued short-circuits it to a cancelled result the moment a
    /// worker pops it — no model instantiation, no generation.
    pub(crate) cancel: Option<CancelToken>,
    /// Stage trace (submitted → dequeued → snapshots → delivered); the
    /// worker marks the remaining stages as the job progresses.
    pub(crate) trace: vrdag_obs::JobTrace,
    /// Per-job result channel; the worker that executes (or the core that
    /// discards) this job owns the send side, the caller's `Ticket` the
    /// receive side.
    pub(crate) reply: Sender<JobResult>,
    /// Exactly-once completion hook; fires on drop if a worker never got
    /// to it (a discard), and is declared *after* `reply` so drop order
    /// guarantees the ticket channel already reports disconnection when
    /// the hook observes the job's fate.
    pub(crate) notify: CompletionNotify,
}

/// One model artifact's queued jobs (FIFO), with the group's effective
/// priority maintained incrementally: `max_priority` is the max over the
/// queued jobs and `max_count` how many carry it, so a pop only rescans
/// the group when the last max-priority job leaves. This keeps queue
/// selection O(#groups) per pop instead of O(#queued jobs).
struct Group {
    jobs: VecDeque<Job>,
    max_priority: i32,
    max_count: usize,
}

impl Group {
    fn new() -> Self {
        Group { jobs: VecDeque::new(), max_priority: i32::MIN, max_count: 0 }
    }

    fn push(&mut self, job: Job) {
        match job.priority.cmp(&self.max_priority) {
            std::cmp::Ordering::Greater => {
                self.max_priority = job.priority;
                self.max_count = 1;
            }
            std::cmp::Ordering::Equal => self.max_count += 1,
            std::cmp::Ordering::Less => {}
        }
        self.jobs.push_back(job);
    }

    fn remove_at(&mut self, idx: usize) -> Job {
        let job = self.jobs.remove(idx).expect("index in range");
        if job.priority == self.max_priority {
            self.max_count -= 1;
            if self.max_count == 0 {
                self.max_priority = self.jobs.iter().map(|j| j.priority).max().unwrap_or(i32::MIN);
                self.max_count =
                    self.jobs.iter().filter(|j| j.priority == self.max_priority).count();
            }
        }
        job
    }
}

/// A group's runnable work under coalescing: the first job a worker may
/// take (FIFO among runnable jobs) and the highest priority among the
/// runnable jobs — blocked duplicates must not inflate the group's
/// effective priority, or a low-priority candidate could preempt
/// another model's strictly higher-priority runnable job.
struct Candidate {
    index: usize,
    priority: i32,
    front_id: u64,
}

/// One tenant's queued jobs, grouped by model artifact, plus the lane's
/// deficit-round-robin state. Lanes are removed when drained (their
/// deficit dies with them, as in classic DRR).
struct Lane {
    /// Queued jobs grouped by model artifact fingerprint. Groups are
    /// removed when drained, so every stored group is non-empty.
    groups: HashMap<u64, Group>,
    queued: usize,
    weight: u32,
    /// Unspent serving credit in snapshot units (a job costs `t_len`).
    deficit: u64,
}

impl Lane {
    fn new(weight: u32) -> Lane {
        Lane { groups: HashMap::new(), queued: 0, weight: weight.max(1), deficit: 0 }
    }
}

/// The lane job [`QueueState::lane_best`] selected: which group, which
/// index within it, and the job's DRR cost.
struct LanePick {
    fp: u64,
    index: usize,
    cost: u64,
}

struct QueueState {
    /// Per-tenant lanes. Lanes are removed when drained, so every
    /// stored lane is non-empty.
    lanes: HashMap<TenantId, Lane>,
    /// DRR rotation order over the live lanes (insertion order; a
    /// re-created lane joins at the back).
    rotation: Vec<TenantId>,
    /// Keys currently generating on some worker (coalescing mode only):
    /// queued duplicates are held back until the key finishes, then pop
    /// as cache hits.
    busy: HashSet<CacheKey>,
    /// How many `busy` keys belong to each model fingerprint. Lets
    /// [`candidate`](QueueState::candidate) keep its O(1) fast path per
    /// group whenever *that group's* model has nothing in flight —
    /// without this, any busy key anywhere forced a full scan of every
    /// queued job on every pop, defeating the incremental group-max
    /// bookkeeping.
    busy_fps: HashMap<u64, usize>,
    /// Keys observed to finish without becoming cached (oversized for
    /// the byte budget, or failed): their duplicates can never be served
    /// by waiting, so they are exempt from coalescing and run in
    /// parallel exactly as with the cache disabled.
    uncacheable: HashSet<CacheKey>,
    /// Jobs currently executing on workers, per tenant (feeds the
    /// `max_inflight` quota, which caps queued + executing together).
    executing: HashMap<TenantId, usize>,
    queued: usize,
    closed: bool,
}

impl QueueState {
    /// Is this job free to run now? With coalescing, a duplicate of an
    /// in-flight key is held back — unless the key is already resident
    /// (it will be served by replay, which needs no exclusivity) or
    /// known uncacheable (waiting would buy nothing).
    fn runnable(&self, cache: Option<&SnapshotCache>, job: &Job) -> bool {
        let Some(cache) = cache else { return true };
        let key = job_cache_key(&job.handle, job.t_len, job.seed);
        !self.busy.contains(&key) || self.uncacheable.contains(&key) || cache.contains(&key)
    }

    /// The runnable candidate of `group` (keyed by model fingerprint
    /// `fp`), if any.
    fn candidate(
        &self,
        cache: Option<&SnapshotCache>,
        fp: u64,
        group: &Group,
    ) -> Option<Candidate> {
        if !self.busy_fps.contains_key(&fp) {
            // Fast path: coalescing only ever blocks a duplicate of an
            // in-flight key, and in-flight keys of *other* models cannot
            // collide with this group's jobs — nothing here is blocked,
            // the incrementally maintained group max holds.
            return group.jobs.front().map(|front| Candidate {
                index: 0,
                priority: group.max_priority,
                front_id: front.id.0,
            });
        }
        let mut first: Option<usize> = None;
        let mut priority = i32::MIN;
        for (i, job) in group.jobs.iter().enumerate() {
            if self.runnable(cache, job) {
                first.get_or_insert(i);
                priority = priority.max(job.priority);
            }
        }
        first.map(|index| Candidate { index, priority, front_id: group.jobs[index].id.0 })
    }

    /// Pick the best runnable job *within one lane*: the best group has
    /// the highest priority among runnable jobs, ties broken by oldest
    /// runnable job; a worker's `preferred` group wins whenever it
    /// matches the best priority, so affinity never starves a
    /// higher-priority model. `None` when everything in the lane is
    /// coalescing-blocked.
    fn lane_best(
        &self,
        cache: Option<&SnapshotCache>,
        lane: &Lane,
        preferred: Option<u64>,
    ) -> Option<LanePick> {
        let mut best: Option<(u64, Candidate)> = None;
        for (&fp, g) in &lane.groups {
            let Some(cand) = self.candidate(cache, fp, g) else { continue };
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    cand.priority > b.priority
                        || (cand.priority == b.priority && cand.front_id < b.front_id)
                }
            };
            if better {
                best = Some((fp, cand));
            }
        }
        let (best_fp, best_cand) = best?;
        let (fp, index) = match preferred {
            Some(pfp) if pfp != best_fp => match lane.groups.get(&pfp) {
                Some(g) => match self.candidate(cache, pfp, g) {
                    Some(c) if c.priority == best_cand.priority => (pfp, c.index),
                    _ => (best_fp, best_cand.index),
                },
                None => (best_fp, best_cand.index),
            },
            _ => (best_fp, best_cand.index),
        };
        let cost = lane.groups[&fp].jobs[index].t_len.max(1) as u64;
        Some(LanePick { fp, index, cost })
    }

    /// Pick the next runnable job: deficit-round-robin across tenant
    /// lanes, then the lane-local priority/affinity pick. Returns `None`
    /// when everything queued is coalescing-blocked (the caller waits
    /// for a finish notification).
    fn take_next(&mut self, preferred: Option<u64>, cache: Option<&SnapshotCache>) -> Option<Job> {
        // Runnable lanes in rotation order, with their lane-local pick.
        let mut runnable: Vec<(TenantId, LanePick)> = Vec::new();
        for tenant in &self.rotation {
            let lane = &self.lanes[tenant];
            if let Some(pick) = self.lane_best(cache, lane, preferred) {
                runnable.push((tenant.clone(), pick));
            }
        }
        if runnable.is_empty() {
            return None;
        }
        let (tenant, pick) = if runnable.len() == 1 {
            // No contention: serve immediately and pin the deficit to
            // zero — solo traffic neither pays for nor hoards credit.
            let (tenant, pick) = runnable.pop().expect("len checked");
            self.lanes.get_mut(&tenant).expect("lane exists").deficit = 0;
            (tenant, pick)
        } else {
            // DRR: the first lane in rotation order whose deficit covers
            // its job's cost serves. When none can afford it, advance
            // the minimal number of virtual rounds (each grants every
            // runnable lane `weight` snapshots) in one step — a single
            // huge SUB job fast-forwards instead of looping per round.
            let affordable =
                |lanes: &HashMap<TenantId, Lane>, t: &TenantId, cost: u64| lanes[t].deficit >= cost;
            if !runnable.iter().any(|(t, p)| affordable(&self.lanes, t, p.cost)) {
                let rounds = runnable
                    .iter()
                    .map(|(t, p)| {
                        let lane = &self.lanes[t];
                        let shortfall = p.cost - lane.deficit;
                        shortfall.div_ceil(lane.weight as u64)
                    })
                    .min()
                    .expect("runnable lanes is non-empty");
                for (t, _) in &runnable {
                    let lane = self.lanes.get_mut(t).expect("lane exists");
                    lane.deficit += rounds * lane.weight as u64;
                }
            }
            let pos = runnable
                .iter()
                .position(|(t, p)| affordable(&self.lanes, t, p.cost))
                .expect("rounds were advanced until a lane can afford its job");
            let (tenant, pick) = runnable.swap_remove(pos);
            let lane = self.lanes.get_mut(&tenant).expect("lane exists");
            lane.deficit -= pick.cost;
            (tenant, pick)
        };
        let lane = self.lanes.get_mut(&tenant).expect("chosen lane exists");
        let group = lane.groups.get_mut(&pick.fp).expect("chosen group exists");
        let job = group.remove_at(pick.index);
        if group.jobs.is_empty() {
            lane.groups.remove(&pick.fp);
        }
        lane.queued -= 1;
        if lane.groups.is_empty() {
            self.lanes.remove(&tenant);
            self.rotation.retain(|t| t != &tenant);
        }
        self.queued -= 1;
        Some(job)
    }
}

/// Point-in-time counters of one live tenant lane (see
/// [`JobQueue::lane_stats`]): feeds the `vrdag_tenant_queue_depth` and
/// `vrdag_tenant_lane_deficit` metric gauges.
#[derive(Clone, Debug)]
pub struct LaneStats {
    /// Tenant id the lane belongs to.
    pub tenant: String,
    /// Jobs queued in this lane.
    pub queued: usize,
    /// Fair-share weight (snapshots granted per DRR round).
    pub weight: u32,
    /// Unspent DRR serving credit, in snapshot units.
    pub deficit: u64,
}

/// Why [`JobQueue::push_checked`] refused a job.
pub(crate) enum PushRejected {
    /// The queue was closed (concurrently with the submit).
    Closed,
    /// The admission cap is reached; `depth` is the observed queue depth.
    Full { depth: usize },
    /// A per-tenant quota is exhausted (`quota` names which one).
    Quota { tenant: TenantId, quota: &'static str, cap: usize },
}

/// The shared work queue of the service core. Exported for observability
/// (`depth`, `max_in_flight`); submission goes through
/// [`ServeHandle`](crate::ServeHandle).
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// When set, identical queued requests are held back while one of
    /// them generates (they then complete as cache hits). `None`
    /// disables coalescing — without a cache, duplicates are
    /// independent work and run in parallel.
    cache: Option<SnapshotCache>,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

impl JobQueue {
    /// A queue that coalesces duplicates of in-flight requests against
    /// `cache` (when given).
    pub(crate) fn with_cache(cache: Option<SnapshotCache>) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: HashMap::new(),
                rotation: Vec::new(),
                busy: HashSet::new(),
                busy_fps: HashMap::new(),
                uncacheable: HashSet::new(),
                executing: HashMap::new(),
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cache,
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
        }
    }

    /// Enqueue `job`, enforcing the optional global admission cap and
    /// the job's tenant quotas atomically with the depth check
    /// (concurrent submitters cannot overshoot any cap between check and
    /// push), and refusing — not panicking — when a concurrent
    /// `close`/`abort` from another handle clone won the race against
    /// the submitter's pre-flight closed check.
    pub(crate) fn push_checked(&self, job: Job, cap: Option<usize>) -> Result<(), PushRejected> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushRejected::Closed);
        }
        if let Some(cap) = cap {
            if state.queued >= cap {
                return Err(PushRejected::Full { depth: state.queued });
            }
        }
        let tenant = Arc::clone(&job.tenant);
        let tenant_id = tenant.id().clone();
        let tenant_queued = state.lanes.get(&tenant_id).map_or(0, |l| l.queued);
        if let Some(max) = tenant.max_inflight {
            let executing = state.executing.get(&tenant_id).copied().unwrap_or(0);
            if tenant_queued + executing >= max {
                return Err(PushRejected::Quota {
                    tenant: tenant_id,
                    quota: "max_inflight",
                    cap: max,
                });
            }
        }
        if let (Some(share), Some(global_cap)) = (tenant.max_queue_share, cap) {
            let tenant_cap = ((share * global_cap as f64).floor() as usize).max(1);
            if tenant_queued >= tenant_cap {
                return Err(PushRejected::Quota {
                    tenant: tenant_id,
                    quota: "queue_share",
                    cap: tenant_cap,
                });
            }
        }
        {
            let state = &mut *state;
            let lane = match state.lanes.entry(tenant_id.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    state.rotation.push(tenant_id);
                    e.insert(Lane::new(tenant.weight))
                }
            };
            lane.groups.entry(job.handle.fingerprint()).or_insert_with(Group::new).push(job);
            lane.queued += 1;
            state.queued += 1;
        }
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a runnable job is available or the queue is closed
    /// and drained. `preferred` is the model-artifact fingerprint the
    /// calling worker already has instantiated (its affinity).
    pub(crate) fn pop(&self, preferred: Option<u64>) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.take_next(preferred, self.cache.as_ref()) {
                if self.cache.is_some() {
                    // Uncacheable-exempt duplicates may run the same key
                    // concurrently; count the fingerprint only when the
                    // key really entered the busy set.
                    let key = job_cache_key(&job.handle, job.t_len, job.seed);
                    if state.busy.insert(key) {
                        *state.busy_fps.entry(key.model_fingerprint).or_insert(0) += 1;
                    }
                }
                *state.executing.entry(job.tenant.id().clone()).or_insert(0) += 1;
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                return Some(job);
            }
            // Blocked duplicates (queued > 0 with nothing runnable) wait
            // for the in-flight twin's finish notification even after
            // close.
            if state.closed && state.queued == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    pub(crate) fn finish_one(&self, key: &CacheKey, tenant: &TenantId) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let mut state = self.state.lock().expect("queue lock poisoned");
        match state.executing.get_mut(tenant) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                state.executing.remove(tenant);
            }
        }
        if let Some(cache) = &self.cache {
            if state.busy.remove(key) {
                match state.busy_fps.get_mut(&key.model_fingerprint) {
                    Some(count) if *count > 1 => *count -= 1,
                    _ => {
                        state.busy_fps.remove(&key.model_fingerprint);
                    }
                }
            }
            if !cache.contains(key) {
                // Finished without becoming resident: duplicates gain
                // nothing by waiting, stop holding them back. Bounded
                // memory: the set is a heuristic, resetting it only
                // re-serializes one generation per key.
                if state.uncacheable.len() >= 4096 {
                    state.uncacheable.clear();
                }
                state.uncacheable.insert(*key);
            }
            drop(state);
            // Wake any worker parked on a duplicate of this key.
            self.ready.notify_all();
        }
    }

    /// No more submissions; wakes idle workers so they can exit after
    /// draining what is already queued.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Close *and* drop every queued job (abort semantics): in-flight
    /// jobs finish, queued ones never start. Returns how many jobs were
    /// discarded — the callers surface this as
    /// [`ServeStats::dropped_jobs`](crate::ServeStats::dropped_jobs), and
    /// each discarded job's `Ticket` observes the dropped reply channel.
    pub(crate) fn close_discard(&self) -> usize {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        let dropped = state.queued;
        state.lanes.clear();
        state.rotation.clear();
        state.queued = 0;
        drop(state);
        self.ready.notify_all();
        dropped
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").queued
    }

    /// Jobs queued for one tenant specifically.
    pub fn tenant_depth(&self, tenant: &TenantId) -> usize {
        self.state.lock().expect("queue lock poisoned").lanes.get(tenant).map_or(0, |l| l.queued)
    }

    /// Point-in-time view of every live tenant lane, in DRR rotation
    /// order. Empty when nothing is queued (lanes die when drained).
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        let state = self.state.lock().expect("queue lock poisoned");
        state
            .rotation
            .iter()
            .filter_map(|tenant| {
                state.lanes.get(tenant).map(|lane| LaneStats {
                    tenant: tenant.to_string(),
                    queued: lane.queued,
                    weight: lane.weight,
                    deficit: lane.deficit,
                })
            })
            .collect()
    }

    /// Jobs currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Highest observed number of simultaneously executing jobs.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight.load(Ordering::SeqCst)
    }
}

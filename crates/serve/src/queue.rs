//! The shared work queue drained by the service core's worker pool:
//! per-model-artifact FIFO groups with priority-first, affinity-aware
//! selection and in-flight coalescing of identical requests.
//!
//! **Model-affinity batching** — queued jobs are grouped by model
//! artifact (content fingerprint). A worker keeps draining its current
//! model's group before switching, so a batch of `k` jobs against one
//! model pays the deserialization cost once per worker *per batch*, and
//! mixed-model traffic does not thrash instances. Group selection is
//! priority-first: a group's effective priority is the highest
//! [`GenRequest::priority`](crate::GenRequest::priority) among its queued
//! jobs (ties broken by arrival), and a worker abandons its affinity when
//! a strictly higher-priority group is waiting.
//!
//! **Coalescing** — when a [`SnapshotCache`] is attached, a queued
//! duplicate of a `(model, t_len, seed)` key that is already generating
//! on another worker is held back until the key finishes, then pops as a
//! cache hit; keys observed to finish uncached are exempt.
//!
//! Jobs carry their own completion channel ([`Job::reply`]): workers push
//! results to the submitting caller instead of the queue owning a result
//! vector, which is what lets the service core stay long-lived — nothing
//! accumulates in the queue between `stats()` snapshots.

use crate::cache::{CacheKey, SnapshotCache};
use crate::core::{job_cache_key, CancelToken, GenSink, JobId, JobResult};
use crate::registry::ModelHandle;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// A queued unit of work: one generation request bound to its resolved
/// model handle and the channel its [`JobResult`] is delivered on.
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) handle: ModelHandle,
    pub(crate) t_len: usize,
    pub(crate) seed: u64,
    pub(crate) priority: i32,
    pub(crate) sink: GenSink,
    /// Cooperative cancellation flag. A token tripped while the job is
    /// still queued short-circuits it to a cancelled result the moment a
    /// worker pops it — no model instantiation, no generation.
    pub(crate) cancel: Option<CancelToken>,
    /// Per-job result channel; the worker that executes (or the core that
    /// discards) this job owns the send side, the caller's `Ticket` the
    /// receive side.
    pub(crate) reply: Sender<JobResult>,
}

/// One model artifact's queued jobs (FIFO), with the group's effective
/// priority maintained incrementally: `max_priority` is the max over the
/// queued jobs and `max_count` how many carry it, so a pop only rescans
/// the group when the last max-priority job leaves. This keeps queue
/// selection O(#groups) per pop instead of O(#queued jobs).
struct Group {
    jobs: VecDeque<Job>,
    max_priority: i32,
    max_count: usize,
}

impl Group {
    fn new() -> Self {
        Group { jobs: VecDeque::new(), max_priority: i32::MIN, max_count: 0 }
    }

    fn push(&mut self, job: Job) {
        match job.priority.cmp(&self.max_priority) {
            std::cmp::Ordering::Greater => {
                self.max_priority = job.priority;
                self.max_count = 1;
            }
            std::cmp::Ordering::Equal => self.max_count += 1,
            std::cmp::Ordering::Less => {}
        }
        self.jobs.push_back(job);
    }

    fn remove_at(&mut self, idx: usize) -> Job {
        let job = self.jobs.remove(idx).expect("index in range");
        if job.priority == self.max_priority {
            self.max_count -= 1;
            if self.max_count == 0 {
                self.max_priority = self.jobs.iter().map(|j| j.priority).max().unwrap_or(i32::MIN);
                self.max_count =
                    self.jobs.iter().filter(|j| j.priority == self.max_priority).count();
            }
        }
        job
    }
}

/// A group's runnable work under coalescing: the first job a worker may
/// take (FIFO among runnable jobs) and the highest priority among the
/// runnable jobs — blocked duplicates must not inflate the group's
/// effective priority, or a low-priority candidate could preempt
/// another model's strictly higher-priority runnable job.
struct Candidate {
    index: usize,
    priority: i32,
    front_id: u64,
}

struct QueueState {
    /// Queued jobs grouped by model artifact fingerprint. Groups are
    /// removed when drained, so every stored group is non-empty.
    groups: HashMap<u64, Group>,
    /// Keys currently generating on some worker (coalescing mode only):
    /// queued duplicates are held back until the key finishes, then pop
    /// as cache hits.
    busy: HashSet<CacheKey>,
    /// How many `busy` keys belong to each model fingerprint. Lets
    /// [`candidate`](QueueState::candidate) keep its O(1) fast path per
    /// group whenever *that group's* model has nothing in flight —
    /// without this, any busy key anywhere forced a full scan of every
    /// queued job on every pop, defeating the incremental group-max
    /// bookkeeping.
    busy_fps: HashMap<u64, usize>,
    /// Keys observed to finish without becoming cached (oversized for
    /// the byte budget, or failed): their duplicates can never be served
    /// by waiting, so they are exempt from coalescing and run in
    /// parallel exactly as with the cache disabled.
    uncacheable: HashSet<CacheKey>,
    queued: usize,
    closed: bool,
}

impl QueueState {
    /// Is this job free to run now? With coalescing, a duplicate of an
    /// in-flight key is held back — unless the key is already resident
    /// (it will be served by replay, which needs no exclusivity) or
    /// known uncacheable (waiting would buy nothing).
    fn runnable(&self, cache: Option<&SnapshotCache>, job: &Job) -> bool {
        let Some(cache) = cache else { return true };
        let key = job_cache_key(&job.handle, job.t_len, job.seed);
        !self.busy.contains(&key) || self.uncacheable.contains(&key) || cache.contains(&key)
    }

    /// The runnable candidate of `group` (keyed by model fingerprint
    /// `fp`), if any.
    fn candidate(
        &self,
        cache: Option<&SnapshotCache>,
        fp: u64,
        group: &Group,
    ) -> Option<Candidate> {
        if !self.busy_fps.contains_key(&fp) {
            // Fast path: coalescing only ever blocks a duplicate of an
            // in-flight key, and in-flight keys of *other* models cannot
            // collide with this group's jobs — nothing here is blocked,
            // the incrementally maintained group max holds.
            return group.jobs.front().map(|front| Candidate {
                index: 0,
                priority: group.max_priority,
                front_id: front.id.0,
            });
        }
        let mut first: Option<usize> = None;
        let mut priority = i32::MIN;
        for (i, job) in group.jobs.iter().enumerate() {
            if self.runnable(cache, job) {
                first.get_or_insert(i);
                priority = priority.max(job.priority);
            }
        }
        first.map(|index| Candidate { index, priority, front_id: group.jobs[index].id.0 })
    }

    /// Pick the next runnable job. The best group has the highest
    /// priority among *runnable* jobs, ties broken by oldest runnable
    /// job; a worker's `preferred` group wins whenever it matches the
    /// best priority, so affinity never starves a higher-priority model.
    /// Returns `None` when everything queued is coalescing-blocked (the
    /// caller waits for a finish notification).
    fn take_next(&mut self, preferred: Option<u64>, cache: Option<&SnapshotCache>) -> Option<Job> {
        let mut best: Option<(u64, Candidate)> = None;
        for (&fp, g) in &self.groups {
            let Some(cand) = self.candidate(cache, fp, g) else { continue };
            let better = match &best {
                None => true,
                Some((_, b)) => {
                    cand.priority > b.priority
                        || (cand.priority == b.priority && cand.front_id < b.front_id)
                }
            };
            if better {
                best = Some((fp, cand));
            }
        }
        let (best_fp, best_cand) = best?;
        let (chosen, idx) = match preferred {
            Some(fp) if fp != best_fp => match self.groups.get(&fp) {
                Some(g) => match self.candidate(cache, fp, g) {
                    Some(c) if c.priority == best_cand.priority => (fp, c.index),
                    _ => (best_fp, best_cand.index),
                },
                None => (best_fp, best_cand.index),
            },
            _ => (best_fp, best_cand.index),
        };
        let group = self.groups.get_mut(&chosen).expect("chosen group exists");
        let job = group.remove_at(idx);
        if group.jobs.is_empty() {
            self.groups.remove(&chosen);
        }
        self.queued -= 1;
        Some(job)
    }
}

/// Why [`JobQueue::push_checked`] refused a job.
pub(crate) enum PushRejected {
    /// The queue was closed (concurrently with the submit).
    Closed,
    /// The admission cap is reached; `depth` is the observed queue depth.
    Full { depth: usize },
}

/// The shared work queue of the service core. Exported for observability
/// (`depth`, `max_in_flight`); submission goes through
/// [`ServeHandle`](crate::ServeHandle).
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    /// When set, identical queued requests are held back while one of
    /// them generates (they then complete as cache hits). `None`
    /// disables coalescing — without a cache, duplicates are
    /// independent work and run in parallel.
    cache: Option<SnapshotCache>,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

impl JobQueue {
    /// A queue that coalesces duplicates of in-flight requests against
    /// `cache` (when given).
    pub(crate) fn with_cache(cache: Option<SnapshotCache>) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                groups: HashMap::new(),
                busy: HashSet::new(),
                busy_fps: HashMap::new(),
                uncacheable: HashSet::new(),
                queued: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            cache,
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
        }
    }

    /// Enqueue `job`, enforcing the optional admission cap atomically
    /// with the depth check (concurrent submitters cannot overshoot the
    /// cap between check and push), and refusing — not panicking — when
    /// a concurrent `close`/`abort` from another handle clone won the
    /// race against the submitter's pre-flight closed check.
    pub(crate) fn push_checked(&self, job: Job, cap: Option<usize>) -> Result<(), PushRejected> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(PushRejected::Closed);
        }
        if let Some(cap) = cap {
            if state.queued >= cap {
                return Err(PushRejected::Full { depth: state.queued });
            }
        }
        state.groups.entry(job.handle.fingerprint()).or_insert_with(Group::new).push(job);
        state.queued += 1;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a runnable job is available or the queue is closed
    /// and drained. `preferred` is the model-artifact fingerprint the
    /// calling worker already has instantiated (its affinity).
    pub(crate) fn pop(&self, preferred: Option<u64>) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.take_next(preferred, self.cache.as_ref()) {
                if self.cache.is_some() {
                    // Uncacheable-exempt duplicates may run the same key
                    // concurrently; count the fingerprint only when the
                    // key really entered the busy set.
                    let key = job_cache_key(&job.handle, job.t_len, job.seed);
                    if state.busy.insert(key) {
                        *state.busy_fps.entry(key.model_fingerprint).or_insert(0) += 1;
                    }
                }
                let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                self.max_in_flight.fetch_max(now, Ordering::SeqCst);
                return Some(job);
            }
            // Blocked duplicates (queued > 0 with nothing runnable) wait
            // for the in-flight twin's finish notification even after
            // close.
            if state.closed && state.queued == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    pub(crate) fn finish_one(&self, key: &CacheKey) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        if let Some(cache) = &self.cache {
            let mut state = self.state.lock().expect("queue lock poisoned");
            if state.busy.remove(key) {
                match state.busy_fps.get_mut(&key.model_fingerprint) {
                    Some(count) if *count > 1 => *count -= 1,
                    _ => {
                        state.busy_fps.remove(&key.model_fingerprint);
                    }
                }
            }
            if !cache.contains(key) {
                // Finished without becoming resident: duplicates gain
                // nothing by waiting, stop holding them back. Bounded
                // memory: the set is a heuristic, resetting it only
                // re-serializes one generation per key.
                if state.uncacheable.len() >= 4096 {
                    state.uncacheable.clear();
                }
                state.uncacheable.insert(*key);
            }
            drop(state);
            // Wake any worker parked on a duplicate of this key.
            self.ready.notify_all();
        }
    }

    /// No more submissions; wakes idle workers so they can exit after
    /// draining what is already queued.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Close *and* drop every queued job (abort semantics): in-flight
    /// jobs finish, queued ones never start. Returns how many jobs were
    /// discarded — the callers surface this as
    /// [`ServeStats::dropped_jobs`](crate::ServeStats::dropped_jobs), and
    /// each discarded job's `Ticket` observes the dropped reply channel.
    pub(crate) fn close_discard(&self) -> usize {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        let dropped = state.queued;
        state.groups.clear();
        state.queued = 0;
        drop(state);
        self.ready.notify_all();
        dropped
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").queued
    }

    /// Jobs currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Highest observed number of simultaneously executing jobs.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight.load(Ordering::SeqCst)
    }
}

//! The non-blocking event loop behind [`Frontend`](crate::Frontend).
//!
//! One reactor thread owns the listener, every connection, and a
//! [`vrdag_poll::Poller`]; nothing about a connection ever blocks it:
//!
//! * **Connections are explicit state machines** ([`Phase`]): greeting →
//!   auth gate → line parse → in-flight table → write mux. The reader
//!   side is an incremental [`LineScanner`] with the same capped-line
//!   semantics as the blocking reader it replaced; the writer side is a
//!   per-connection outbox ([`ConnShared`]) drained opportunistically
//!   and re-armed on write readiness.
//! * **Job completions drain through one completion pump.** Every
//!   `GEN`/`SUB` submission arms a completion hook
//!   ([`GenRequest::with_notify`]) that posts `(connection, slot)` on
//!   the reactor's channel and wakes the poller — no waiter thread per
//!   job, and per-connection bookkeeping is exactly the in-flight
//!   table, bounded by [`FrontendConfig::max_inflight_per_conn`].
//! * **Streaming backpressure is outbox-full → wait, not a blocked
//!   socket write.** A worker pushing `EVT` frames parks on the
//!   connection's bounded outbox (capacity [`FRAME_QUEUE`]) with the
//!   same escape hatches the threaded frontend had: the push aborts the
//!   moment the job's [`CancelToken`] trips or the connection dies, and
//!   gives the stream up as `cancelled` after [`SUB_STALL_LIMIT`] of a
//!   subscriber that is alive but not reading. The reactor additionally
//!   *pauses reading* from a connection whose outbox is full, so a
//!   pipelining client cannot grow the reply queue without consuming
//!   replies.
//! * **A slow or stalled connection costs one socket, nothing else.**
//!   Its worker parks on its own outbox; its socket stops being
//!   writable so it produces no events; every other connection's
//!   dispatch proceeds within the loop's per-wakeup fairness quantum
//!   ([`READ_QUANTUM`] bytes of reads per connection per wakeup).
//!
//! Teardown preserves the threaded frontend's observable contract:
//! `QUIT` stops reading and gives in-flight jobs [`QUIT_DRAIN`] to
//! finish before `OK BYE`; EOF or a transport failure trips every
//! in-flight token immediately but still delivers pending completion
//! frames for up to [`TEARDOWN_DRAIN`]; past a deadline the socket is
//! severed. A severed connection whose jobs are still in flight lingers
//! as a [`Phase::Zombie`] — invisible on the wire, it keeps its slot
//! until the completion pump has consumed every ticket, so a slot is
//! never reused while results could still be routed to it.

use crate::core::{CancelToken, GenRequest, GenSink, JobResult, ServeHandle, Ticket};
use crate::frontend::FrontendConfig;
use crate::protocol::{
    parse_request, EndStatus, ErrorCode, GenSpec, ProtocolError, ReplyHeader, Request, WireFormat,
    MAX_LINE_BYTES,
};
use crate::tenant::{Tenant, TenantId};
use crate::ServeError;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vrdag_graph::io::{BinaryStreamWriter, TsvStreamWriter};
use vrdag_graph::{DynamicGraph, Snapshot};
use vrdag_obs::{mint_trace_id, Counter, Gauge, Histogram, Logger, Span};
use vrdag_poll::{raw_fd, Event, Interest, Poller, Waker, WAKE_TOKEN};

/// Per-connection outbox depth, in frames. Bounded so a subscriber that
/// stops reading exerts backpressure all the way into the generating
/// worker (its `EVT` pushes park) instead of buffering an unbounded
/// stream in server memory; a connection at this depth also stops being
/// *read*, so pipelined requests cannot inflate the reply queue either.
pub(crate) const FRAME_QUEUE: usize = 64;

/// How long a `QUIT` waits for in-flight jobs to drain before the
/// connection's remaining work is cancelled and the socket severed. A
/// reading client drains long before this; the deadline only fires for
/// one that QUIT and then stopped consuming its own replies.
const QUIT_DRAIN: Duration = Duration::from_secs(60);

/// The same bound for abnormal teardown (EOF/transport failure), where
/// in-flight tokens are already tripped and jobs resolve within
/// snapshot-boundary latency — the deadline is a backstop for a peer
/// that half-closed and never reads its tail.
const TEARDOWN_DRAIN: Duration = Duration::from_secs(5);

/// How long a worker's `EVT` push may park on a full outbox before the
/// subscription is abandoned. A connection that is *alive but not
/// reading* (full TCP window + full outbox, no EOF, no CANCEL) would
/// otherwise pin a shared core worker indefinitely; past this deadline
/// the stream ends `status=cancelled` and the worker moves on, while
/// the connection itself stays open for a client that resumes.
pub(crate) const SUB_STALL_LIMIT: Duration = Duration::from_secs(30);

/// Bytes read from one connection per wakeup — the loop's fairness
/// quantum. A firehosing pipeliner gets requeued behind everyone else
/// after this much input instead of monopolizing the loop.
const READ_QUANTUM: usize = 64 * 1024;

/// Stack staging buffer for non-blocking socket reads.
const READ_CHUNK: usize = 8 * 1024;

/// Back-off before re-arming accepts after a non-transient accept error
/// (EMFILE under descriptor exhaustion): level-triggered readiness
/// would otherwise re-report the listener instantly and busy-spin.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(10);

/// Dispatch-latency histogram bounds: per-wakeup reactor work sits in
/// the microsecond-to-millisecond range, far below the serve stack's
/// default job-duration buckets.
const DISPATCH_BUCKETS: &[f64] = &[
    0.000_01, 0.000_025, 0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.0025, 0.005, 0.01, 0.05,
    0.25, 1.0,
];

/// Poller token of the listener; connection slot `n` polls as token
/// `n + 1` (and [`WAKE_TOKEN`] is the cross-thread waker).
const LISTENER_TOKEN: usize = 0;

/// One complete wire frame: a header line plus its payload bytes.
#[derive(Debug)]
pub(crate) struct Frame {
    header: ReplyHeader,
    payload: Vec<u8>,
}

impl Frame {
    fn header(header: ReplyHeader) -> Frame {
        Frame { header, payload: Vec::new() }
    }

    fn err(code: ErrorCode, tag: Option<String>, message: impl Into<String>) -> Frame {
        Frame::header(ReplyHeader::Err { code, tag, message: message.into() })
    }
}

/// Serialize `graph` in the requested wire format. TSV is byte-identical
/// to `vrdag_graph::io::write_tsv`; binary to the streaming writer — so
/// a TCP reply equals what a direct [`ServeHandle`] caller would encode.
fn encode_graph(graph: &DynamicGraph, fmt: WireFormat) -> Result<Vec<u8>, ServeError> {
    match fmt {
        WireFormat::Tsv => Ok(vrdag_graph::io::write_tsv(graph, Vec::new())?),
        WireFormat::Bin => Ok(vrdag_graph::io::encode_binary(graph).as_slice().to_vec()),
    }
}

/// A shared, append-only byte buffer the streaming writers write into;
/// the chunker drains it after every snapshot so each `EVT` frame
/// carries exactly the bytes that snapshot contributed to the encoding.
#[derive(Clone, Default)]
struct ChunkBuf(Arc<Mutex<Vec<u8>>>);

impl ChunkBuf {
    fn take(&self) -> Vec<u8> {
        std::mem::take(&mut *self.0.lock().expect("chunk buffer poisoned"))
    }
}

impl Write for ChunkBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("chunk buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Incremental per-snapshot encoder for a `SUB` stream, built on the
/// exact same streaming writers as the file sinks and the buffered
/// `GEN` encodings — which is what makes the concatenation of a
/// stream's `EVT` payloads byte-identical to the buffered reply (the
/// format headers land in the first chunk; `finish()` writes nothing).
enum WireChunker {
    Tsv(TsvStreamWriter<ChunkBuf>, ChunkBuf),
    Bin(BinaryStreamWriter<ChunkBuf>, ChunkBuf),
}

impl WireChunker {
    fn new(fmt: WireFormat, n: usize, f: usize, t_len: usize) -> Result<WireChunker, ServeError> {
        let buf = ChunkBuf::default();
        Ok(match fmt {
            WireFormat::Tsv => {
                WireChunker::Tsv(TsvStreamWriter::new(buf.clone(), n, f, t_len)?, buf)
            }
            WireFormat::Bin => {
                WireChunker::Bin(BinaryStreamWriter::new(buf.clone(), n, f, t_len)?, buf)
            }
        })
    }

    /// Encode one snapshot and return the bytes it contributed.
    fn encode(&mut self, s: &Snapshot) -> Result<Vec<u8>, ServeError> {
        match self {
            WireChunker::Tsv(w, buf) => {
                w.write_snapshot(s)?;
                Ok(buf.take())
            }
            WireChunker::Bin(w, buf) => {
                w.write_snapshot(s)?;
                Ok(buf.take())
            }
        }
    }
}

/// Translate a service error into its wire code; the message is the
/// error's display form except for `QueueFull`, which gets structured
/// `depth=… cap=…` fields a client can parse and back off on.
fn translate(err: &ServeError) -> (ErrorCode, String) {
    match err {
        ServeError::QueueFull { depth, cap } => {
            (ErrorCode::QueueFull, format!("depth={depth} cap={cap}"))
        }
        ServeError::QuotaExceeded { tenant, quota, cap } => {
            (ErrorCode::QuotaExceeded, format!("tenant={tenant} limit={quota} cap={cap}"))
        }
        ServeError::UnknownModel(name) => (ErrorCode::UnknownModel, format!("{name:?}")),
        ServeError::InvalidRequest(msg) => (ErrorCode::InvalidRequest, msg.clone()),
        ServeError::SchedulerClosed | ServeError::JobDropped => {
            (ErrorCode::Shutdown, err.to_string())
        }
        other => (ErrorCode::Internal, other.to_string()),
    }
}

fn translated_frame(err: &ServeError, tag: Option<String>) -> Frame {
    let (code, message) = translate(err);
    Frame::err(code, tag, message)
}

/// Best-effort recovery of a `tag=<valid>` token from a line that failed
/// to parse, so the `ERR` reply can still be demuxed to the request's
/// stream. Only a syntactically valid tag is echoed — never arbitrary
/// malformed input.
pub(crate) fn salvage_tag(line: &str) -> Option<String> {
    line.split_whitespace()
        .filter_map(|token| token.strip_prefix("tag="))
        .find(|raw| crate::protocol::valid_tag(raw))
        .map(str::to_string)
}

/// One complete line scanned off the wire (the incremental counterpart
/// of the blocking reader's `ReadLine`; EOF is the caller's to notice).
/// `pub(crate)` because the router's relay loop scans both hops with
/// the same splitter.
pub(crate) enum ScanLine {
    Line(Vec<u8>),
    /// The line blew past [`MAX_LINE_BYTES`]; `len` counts its bytes
    /// (newline excluded) and the connection keeps going.
    TooLong {
        len: usize,
    },
}

/// Incremental capped-line splitter with byte-for-byte the semantics of
/// the blocking `read_capped_line`: lines up to [`MAX_LINE_BYTES`] are
/// buffered, an over-long line is consumed (never buffered) and
/// reported with its true length, and a final unterminated line at EOF
/// still counts.
#[derive(Default)]
pub(crate) struct LineScanner {
    line: Vec<u8>,
    overflow: usize,
}

impl LineScanner {
    /// Feed one chunk of raw socket bytes; `emit` receives each
    /// completed line in order.
    pub(crate) fn feed(&mut self, mut chunk: &[u8], mut emit: impl FnMut(ScanLine)) {
        while let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            self.push_bytes(&chunk[..pos]);
            chunk = &chunk[pos + 1..];
            emit(self.take_line());
        }
        self.push_bytes(chunk);
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        if self.overflow > 0 {
            self.overflow += bytes.len();
        } else if self.line.len() + bytes.len() <= MAX_LINE_BYTES {
            self.line.extend_from_slice(bytes);
        } else {
            // Stop buffering the moment the cap is blown: the overflow
            // is counted, never stored.
            self.overflow = self.line.len() + bytes.len();
            self.line.clear();
        }
    }

    fn take_line(&mut self) -> ScanLine {
        if self.overflow > 0 {
            ScanLine::TooLong { len: std::mem::take(&mut self.overflow) }
        } else {
            ScanLine::Line(std::mem::take(&mut self.line))
        }
    }

    /// The final unterminated line at EOF, if any.
    pub(crate) fn finish(&mut self) -> Option<ScanLine> {
        if self.overflow > 0 || !self.line.is_empty() {
            Some(self.take_line())
        } else {
            None
        }
    }
}

/// Why a worker-side [`ConnShared::push_streaming`] failed.
enum SendFail {
    /// The connection is gone (transport failure or teardown).
    Disconnected,
    /// The job's cancel token tripped while the outbox was full.
    Cancelled,
    /// The outbox stayed full for [`SUB_STALL_LIMIT`]: the subscriber is
    /// alive but not reading, and the stream is abandoned to free the
    /// worker.
    Stalled,
}

/// Outbox guarded state: the frame queue plus the connection's liveness
/// bit (dead ⇒ pushes fail fast and parked workers unblock).
struct OutboxState {
    frames: VecDeque<Frame>,
    dead: bool,
}

/// How often a parked `EVT` push re-checks its cancel token. The token
/// can trip without anyone signalling the condvar (a `CANCEL` processed
/// by the reactor, a teardown deadline), so the park is a bounded nap,
/// not an unbounded wait.
const PUSH_RECHECK: Duration = Duration::from_millis(10);

/// The connection state shared with code running *off* the reactor
/// thread — the `SUB` callbacks inside core workers. Everything else
/// about a connection is reactor-private.
pub(crate) struct ConnShared {
    outbox: Mutex<OutboxState>,
    /// Signalled whenever the reactor pops frames (space for a parked
    /// worker) or the connection dies.
    space: Condvar,
    /// Coalesces worker → reactor "outbox went non-empty" signals: set
    /// by the pushing worker, cleared by the reactor before it drains.
    dirty: AtomicBool,
}

impl ConnShared {
    fn new() -> ConnShared {
        ConnShared {
            outbox: Mutex::new(OutboxState { frames: VecDeque::new(), dead: false }),
            space: Condvar::new(),
            dirty: AtomicBool::new(false),
        }
    }

    /// Reactor-side push (replies, completion frames, greetings). The
    /// reactor is also the consumer, so this side is unbounded —
    /// boundedness comes from the read pause at [`FRAME_QUEUE`] plus the
    /// in-flight cap. `false` when the connection is already dead.
    fn push(&self, frame: Frame) -> bool {
        let mut state = self.outbox.lock().expect("outbox poisoned");
        if state.dead {
            return false;
        }
        state.frames.push_back(frame);
        true
    }

    /// Worker-side push for `EVT` frames: parks while the outbox is at
    /// capacity, aborting on cancellation, death, or a
    /// [`SUB_STALL_LIMIT`] stall — the reactor-era `send_cancellable`.
    fn push_streaming(&self, token: &CancelToken, frame: Frame) -> Result<(), SendFail> {
        let stalled_at = Instant::now() + SUB_STALL_LIMIT;
        let mut state = self.outbox.lock().expect("outbox poisoned");
        loop {
            if state.dead {
                return Err(SendFail::Disconnected);
            }
            if state.frames.len() < FRAME_QUEUE {
                state.frames.push_back(frame);
                return Ok(());
            }
            if token.is_cancelled() {
                return Err(SendFail::Cancelled);
            }
            if Instant::now() >= stalled_at {
                return Err(SendFail::Stalled);
            }
            let (guard, _) = self
                .space
                .wait_timeout(state, PUSH_RECHECK)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Reactor-side pop; wakes one parked worker when space opens.
    fn pop(&self) -> Option<Frame> {
        let mut state = self.outbox.lock().expect("outbox poisoned");
        let frame = state.frames.pop_front();
        if frame.is_some() {
            self.space.notify_one();
        }
        frame
    }

    fn len(&self) -> usize {
        self.outbox.lock().expect("outbox poisoned").frames.len()
    }

    /// Kill the connection's shared side: pushes fail from here on and
    /// every parked worker unblocks with `Disconnected`.
    fn mark_dead(&self) {
        let mut state = self.outbox.lock().expect("outbox poisoned");
        state.dead = true;
        state.frames.clear();
        self.space.notify_all();
    }
}

/// Key of one in-flight job in a connection's table: the client's tag,
/// or a connection-internal counter for untagged jobs (no wire syntax
/// can name those, but teardown still cancels them).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum SlotKey {
    Tag(String),
    Untagged(u64),
}

/// What a completion for an in-flight slot should be turned into.
enum PendingKind {
    /// Buffered `GEN`: encode the result, answer `OK GEN …` + payload.
    Gen { tag: Option<String>, fmt: WireFormat, trace: TraceCtx },
    /// `SUB` stream: terminate with `END …` carrying the frames actually
    /// handed to the connection (see `dispatch_sub`).
    Sub { tag: String, sent: Arc<AtomicUsize>, trace: TraceCtx },
}

/// Trace identity of one in-flight request: the id echoed on its
/// terminal frame and keyed into the span ring, plus whether it was
/// propagated by an upstream router hop (as opposed to minted here —
/// the recorded span's `parent` field derives from this).
#[derive(Clone)]
struct TraceCtx {
    id: String,
    propagated: bool,
}

impl TraceCtx {
    /// The upstream tier that minted a propagated id. The only tier
    /// that stamps `trace=` on the internal hop today is the router.
    fn parent(&self) -> Option<&'static str> {
        self.propagated.then_some("route")
    }
}

/// One in-flight job on one connection.
struct Pending {
    kind: PendingKind,
    token: CancelToken,
    ticket: Ticket,
}

/// A completion-pump message: the job keyed `key` on connection slot
/// `conn` has a consumable ticket.
pub(crate) struct Completion {
    conn: usize,
    key: SlotKey,
}

/// Connection lifecycle (the explicit state machine).
enum Phase {
    /// Reading, dispatching, writing.
    Active,
    /// `QUIT` received: reading stopped; in-flight jobs get until
    /// `deadline` to drain. When the table empties in time, `OK BYE`
    /// goes out and the phase advances to [`Phase::FlushClose`]; at the
    /// deadline the remaining work is cancelled and the socket severed
    /// with no `BYE` (the client stopped reading long ago).
    Draining { bye_tag: Option<String>, deadline: Instant },
    /// EOF / fatal protocol rejection / transport failure: every
    /// in-flight token is tripped; pending completion frames still
    /// deliver until `deadline`, then the socket is severed.
    Closing { deadline: Instant },
    /// All work done: flush the outbox tail, then half-close and linger.
    FlushClose,
    /// Lingering close: the write side is shut (FIN sent) and incoming
    /// bytes are read and discarded until the peer closes or `deadline`
    /// passes. Closing abruptly instead would send an RST whenever
    /// pipelined input was still unread — and a client mid-burst (say a
    /// `GEN` right behind a failing `AUTH`) would then see its *write*
    /// fail with a broken pipe before it ever read the error frame.
    Linger { deadline: Instant },
    /// Socket severed with jobs still in flight: holds the slot (so it
    /// cannot be reused while completions could still route here) until
    /// the completion pump consumes every ticket.
    Zombie,
}

/// One connection, reactor-private except for [`Conn::shared`].
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    scanner: LineScanner,
    pending: HashMap<SlotKey, Pending>,
    phase: Phase,
    /// Counter for server-assigned `~<n>` tags (untagged `SUB`s).
    auto_tag: u64,
    /// Counter keying untagged in-flight jobs.
    next_untagged: u64,
    /// The tenant every job on this connection runs as — the anonymous
    /// tenant until a successful `AUTH` rebinds it.
    tenant: Arc<Tenant>,
    /// Has this connection presented a valid token yet?
    authed: bool,
    /// Serialized bytes of the frame currently being written, and the
    /// write cursor into it. Reactor-only.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Whether the socket is still registered and open (false once
    /// severed; the slot may outlive the socket as a [`Phase::Zombie`]).
    socket_open: bool,
    /// Counted against `max_connections` and the open-connections gauge
    /// (false for over-cap greeting rejections).
    accepted: bool,
}

impl Conn {
    /// Is this connection still reading request lines?
    fn reading(&self) -> bool {
        matches!(self.phase, Phase::Active) && self.socket_open
    }

    /// The poller interest this connection currently wants: read while
    /// active and below the outbox pause threshold (or lingering, to
    /// notice the peer's close), write while output is queued.
    fn desired_interest(&self) -> Interest {
        let outbox_len = self.shared.len();
        let readable = match self.phase {
            Phase::Active => outbox_len < FRAME_QUEUE,
            Phase::Linger { .. } => true,
            _ => false,
        };
        Interest {
            readable: readable && self.socket_open,
            writable: self.socket_open && (self.wpos < self.wbuf.len() || outbox_len > 0),
        }
    }

    /// Trip every in-flight token, tagged or not (teardown: free the
    /// workers instead of letting them generate for a peer that is
    /// gone).
    fn cancel_all(&self) {
        for pending in self.pending.values() {
            pending.token.cancel();
        }
    }

    /// The teardown deadline this connection is running against, if any.
    fn deadline(&self) -> Option<Instant> {
        match self.phase {
            Phase::Draining { deadline, .. }
            | Phase::Closing { deadline }
            | Phase::Linger { deadline } => Some(deadline),
            _ => None,
        }
    }
}

/// What the dispatch of one request means for the connection.
enum Flow {
    Continue,
    /// Drain in-flight work, say `OK BYE [tag=…]`, close.
    Quit {
        tag: Option<String>,
    },
    /// A protocol-level rejection that closes the connection (failed or
    /// missing authentication): the error frame is already in the
    /// outbox, it gets flushed, no `OK BYE` follows.
    Fatal,
}

/// Everything the dispatch path needs besides the connection itself —
/// split out of [`Reactor`] so a `&mut Conn` (borrowed from the slab)
/// and the environment can be used together.
struct Env {
    handle: ServeHandle,
    cfg: FrontendConfig,
    /// Does the service demand `AUTH` as the first line
    /// ([`TenantRegistry::auth_enabled`](crate::TenantRegistry::auth_enabled))?
    auth_required: bool,
    completions_tx: Sender<Completion>,
    dirty_tx: Sender<usize>,
    waker: Waker,
    logger: Logger,
    evt_frames: Counter,
    evt_bytes: Counter,
    sub_stalls: Counter,
}

impl Env {
    /// Count one `AUTH` outcome into `vrdag_auth_total{outcome=…}`.
    fn auth_outcome(&self, outcome: &str) {
        self.handle.metrics().counter("vrdag_auth_total", &[("outcome", outcome)]).inc();
    }

    /// The completion hook a submission arms: post the pump message and
    /// kick the poller awake. Also fires when `submit` *rejects* the
    /// request (the hook drops with it) — the pump ignores the unknown
    /// key, and a key re-used by a later job is disambiguated by its
    /// ticket still being unresolved.
    fn completion_hook(&self, idx: usize, key: SlotKey) -> impl FnOnce() + Send + 'static {
        let tx = self.completions_tx.clone();
        let waker = self.waker.clone();
        move || {
            let _ = tx.send(Completion { conn: idx, key });
            waker.wake();
        }
    }

    /// Record the serve-tier span of one finished job into the
    /// frontend's span ring ([`FrontendConfig::spans`]): the trace id
    /// keys it against the router's relay span of the same request.
    fn record_span(&self, trace: &TraceCtx, result: &JobResult, outcome: &'static str) {
        let model_fp = self.handle.registry().get(&result.model).map(|h| h.fingerprint());
        self.cfg.spans.record(Span {
            trace: trace.id.clone(),
            tier: "serve",
            parent: trace.parent(),
            tenant: Some(result.tenant.to_string()),
            model: result.model.clone(),
            model_fp,
            seed: result.seed,
            outcome,
            backend: None,
            stages_ms: Span::stages_from(&result.stages),
        });
    }
}

/// Construction bundle for [`Reactor::new`] — everything
/// [`Frontend`](crate::Frontend) wires up before spawning the loop
/// thread.
pub(crate) struct ReactorConfig {
    pub handle: ServeHandle,
    pub cfg: FrontendConfig,
    pub listener: TcpListener,
    pub poller: Box<dyn Poller>,
    pub stop: Arc<AtomicBool>,
    pub open: Arc<AtomicUsize>,
    pub completions_tx: Sender<Completion>,
    pub completions_rx: Receiver<Completion>,
    pub dirty_tx: Sender<usize>,
    pub dirty_rx: Receiver<usize>,
}

/// The event loop itself; constructed by [`Frontend`](crate::Frontend)
/// and consumed by [`Reactor::run`] on the reactor thread.
pub(crate) struct Reactor {
    env: Env,
    listener: TcpListener,
    poller: Box<dyn Poller>,
    /// Connection slab; a slot's poller token is its index + 1.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Accepted live connections (shared with
    /// [`Frontend::open_connections`](crate::Frontend::open_connections)).
    open: Arc<AtomicUsize>,
    open_gauge: Gauge,
    completions_rx: Receiver<Completion>,
    dirty_rx: Receiver<usize>,
    stop: Arc<AtomicBool>,
    accepted: Counter,
    rejected_cap: Counter,
    wakeups: Counter,
    dispatch_seconds: Histogram,
    /// The previous iteration's dispatch duration, published into
    /// [`dispatch_seconds`](Self::dispatch_seconds) at the *start* of
    /// the next wakeup. Deferring by one wakeup keeps a `METRICS`
    /// render (which happens mid-dispatch) consistent: it reflects
    /// every completed dispatch and the wakeup serving it, so an HTTP
    /// `/metrics` scrape of the then-idle reactor sees identical bytes.
    pending_dispatch: Option<f64>,
    /// Listener re-arm time after an accept error (see [`ACCEPT_BACKOFF`]).
    accept_backoff: Option<Instant>,
    events: Vec<Event>,
}

impl Reactor {
    pub(crate) fn new(rc: ReactorConfig) -> Reactor {
        let metrics = rc.handle.metrics();
        let accepted = metrics.counter("vrdag_connections_total", &[("outcome", "accepted")]);
        let rejected_cap =
            metrics.counter("vrdag_connections_total", &[("outcome", "rejected_cap")]);
        let open_gauge = metrics.gauge("vrdag_open_connections", &[]);
        let wakeups = metrics.counter("vrdag_reactor_wakeups_total", &[]);
        let dispatch_seconds =
            metrics.histogram_with("vrdag_reactor_dispatch_seconds", &[], DISPATCH_BUCKETS);
        let env = Env {
            // An internal frontend (behind a router that already
            // terminated AUTH) keeps its tenant registry for quota and
            // weight lookups but never demands tokens on the hop.
            auth_required: rc.handle.tenants().auth_enabled() && !rc.cfg.trust_tenant_assertion,
            completions_tx: rc.completions_tx,
            dirty_tx: rc.dirty_tx,
            waker: rc.poller.waker(),
            logger: rc.handle.logger().clone(),
            evt_frames: metrics.counter("vrdag_evt_frames_total", &[]),
            evt_bytes: metrics.counter("vrdag_evt_bytes_total", &[]),
            sub_stalls: metrics.counter("vrdag_sub_stalls_total", &[]),
            cfg: rc.cfg,
            handle: rc.handle.clone(),
        };
        Reactor {
            env,
            listener: rc.listener,
            poller: rc.poller,
            conns: Vec::new(),
            free: Vec::new(),
            open: rc.open,
            open_gauge,
            completions_rx: rc.completions_rx,
            dirty_rx: rc.dirty_rx,
            stop: rc.stop,
            accepted,
            rejected_cap,
            wakeups,
            dispatch_seconds,
            pending_dispatch: None,
            accept_backoff: None,
            events: Vec::new(),
        }
    }

    /// The loop. Returns once the stop flag is observed (after a waker
    /// nudge); tears down every connection on the way out.
    pub(crate) fn run(mut self) {
        if self.poller.register(raw_fd(&self.listener), LISTENER_TOKEN, Interest::READABLE).is_err()
        {
            return;
        }
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.poll_timeout();
            let mut events = std::mem::take(&mut self.events);
            if self.poller.poll(&mut events, timeout).is_err() {
                events.clear();
            }
            self.wakeups.inc();
            if let Some(elapsed) = self.pending_dispatch.take() {
                self.dispatch_seconds.observe(elapsed);
            }
            let started = Instant::now();
            if self.stop.load(Ordering::SeqCst) {
                self.events = events;
                break;
            }
            for ev in &events {
                match ev.token {
                    WAKE_TOKEN => {}
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token - 1, ev.readable),
                }
            }
            self.events = events;
            // The completion pump: one drain per wakeup covers every job
            // that finished since, regardless of which worker ran it —
            // this is where the old per-job waiter threads collapsed to.
            while let Ok(done) = self.completions_rx.try_recv() {
                self.handle_completion(done.conn, done.key);
            }
            // Outboxes that workers pushed EVT frames into since the
            // last wakeup.
            while let Ok(idx) = self.dirty_rx.try_recv() {
                if let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) {
                    conn.shared.dirty.store(false, Ordering::SeqCst);
                }
                self.flush(idx);
            }
            self.check_deadlines();
            // Measured now, published at the next wakeup (see the
            // `pending_dispatch` field docs).
            self.pending_dispatch = Some(started.elapsed().as_secs_f64());
        }
        self.teardown_all();
    }

    /// Next timer the loop must honour: teardown deadlines and the
    /// accept re-arm. `None` blocks until IO or a wakeup.
    fn poll_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = self.accept_backoff;
        for conn in self.conns.iter().flatten() {
            if let Some(deadline) = conn.deadline() {
                next = Some(next.map_or(deadline, |cur| cur.min(deadline)));
            }
        }
        next.map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Accept every pending connection (the listener is level-triggered,
    /// so anything left un-accepted re-reports immediately).
    fn accept_ready(&mut self) {
        if self.accept_backoff.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: park accepts briefly instead of
                // busy-spinning on a perpetually-readable listener.
                Err(_) => {
                    self.accept_backoff = Some(Instant::now() + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    /// Register one just-accepted stream. Over the cap it becomes a
    /// greeting-rejection connection whose `ERR too-many-connections`
    /// flushes through the same event loop as everything else — the
    /// threaded frontend wrote this greeting *blocking on the accept
    /// path*, so one unreadable rejected client could stall all accepts.
    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Replies are written frame-at-a-time; without TCP_NODELAY,
        // Nagle holds each small frame for the peer's delayed ACK
        // (~40ms) and a lock-step client crawls. Best effort — a socket
        // that rejects the option still works, just slower.
        let _ = stream.set_nodelay(true);
        let over_cap =
            self.env.cfg.max_connections.is_some_and(|cap| self.open.load(Ordering::SeqCst) >= cap);
        let accepted = !over_cap;
        let conn = Conn {
            stream,
            shared: Arc::new(ConnShared::new()),
            scanner: LineScanner::default(),
            pending: HashMap::new(),
            phase: if accepted { Phase::Active } else { Phase::FlushClose },
            auto_tag: 0,
            next_untagged: 0,
            tenant: self.env.handle.tenants().anonymous(),
            authed: false,
            wbuf: Vec::new(),
            wpos: 0,
            interest: Interest { readable: false, writable: false },
            socket_open: true,
            accepted,
        };
        if accepted {
            self.accepted.inc();
            self.set_open(self.open.load(Ordering::SeqCst) + 1);
        } else {
            self.rejected_cap.inc();
            let cap = self.env.cfg.max_connections.expect("over_cap implies a cap");
            conn.shared.push(Frame::err(ErrorCode::TooManyConnections, None, format!("cap={cap}")));
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.update_interest(idx, true);
        // A rejection usually flushes (and frees the slot) right here.
        self.flush(idx);
    }

    fn set_open(&self, n: usize) {
        self.open.store(n, Ordering::SeqCst);
        self.open_gauge.set(n as u64);
    }

    /// IO readiness on connection slot `idx`. Stale tokens (a slot freed
    /// or reused earlier in the same event batch) are harmless: all IO
    /// is non-blocking, so a spurious read/flush observes `WouldBlock`
    /// and moves on — the same advisory-readiness contract the scan
    /// backend relies on.
    fn conn_event(&mut self, idx: usize, readable: bool) {
        if self.conns.get(idx).and_then(Option::as_ref).is_none() {
            return;
        }
        if readable {
            self.conn_readable(idx);
        }
        if self.conns.get(idx).and_then(Option::as_ref).is_some() {
            self.flush(idx);
        }
    }

    /// Drain up to [`READ_QUANTUM`] bytes of request input, dispatching
    /// complete lines as they fall out of the scanner. A lingering
    /// connection drains and *discards* instead, watching for the peer's
    /// close.
    fn conn_readable(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].as_ref() {
            if matches!(conn.phase, Phase::Linger { .. }) {
                self.linger_readable(idx);
                return;
            }
        }
        let mut consumed = 0usize;
        let mut eof = false;
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if !conn.reading() || conn.shared.len() >= FRAME_QUEUE || consumed >= READ_QUANTUM {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    consumed += n;
                    self.feed_bytes(idx, &buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A read transport failure tears down like EOF.
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        if eof {
            // The final unterminated line still counts (a client that
            // wrote `PING` and shut down its write side gets its PONG).
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if let Some(last) = conn.scanner.finish() {
                self.handle_scan_line(idx, last);
            }
            if let Some(conn) = self.conns[idx].as_ref() {
                if matches!(conn.phase, Phase::Active) {
                    self.begin_close(idx);
                }
            }
        } else {
            // Quantum or pause hit with the socket possibly still
            // readable: level-triggered readiness (or the scan rotation)
            // brings us back next wakeup as long as interest says read.
            self.update_interest(idx, false);
        }
    }

    /// Read-and-discard on a [`Phase::Linger`] connection until the peer
    /// closes (EOF fully releases the slot) or the socket would block.
    fn linger_readable(&mut self, idx: usize) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.sever(idx);
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.sever(idx);
                    return;
                }
            }
        }
    }

    /// Split a raw chunk into lines and dispatch each; lines buffered
    /// behind a phase change (e.g. pipelined input after `QUIT`) are
    /// discarded, exactly like the threaded reader discarded its buffer.
    fn feed_bytes(&mut self, idx: usize, bytes: &[u8]) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let mut lines = Vec::new();
        conn.scanner.feed(bytes, |line| lines.push(line));
        for line in lines {
            let Some(conn) = self.conns[idx].as_ref() else { return };
            if !matches!(conn.phase, Phase::Active) {
                break;
            }
            self.handle_scan_line(idx, line);
        }
    }

    /// Parse and dispatch one scanned line, applying the auth gate and
    /// the flow transitions — the reactor port of the threaded
    /// frontend's per-line block, answer-for-answer.
    fn handle_scan_line(&mut self, idx: usize, raw: ScanLine) {
        enum Parsed {
            Req(Request),
            Error(Frame),
            Empty,
        }
        let parsed = match raw {
            ScanLine::TooLong { len } => Parsed::Error(Frame::err(
                ErrorCode::LineTooLong,
                None,
                ProtocolError::LineTooLong { len }.to_string(),
            )),
            ScanLine::Line(raw) => match String::from_utf8(raw) {
                Err(_) => Parsed::Error(Frame::err(
                    ErrorCode::BadRequest,
                    None,
                    ProtocolError::NotUtf8.to_string(),
                )),
                Ok(line) => match parse_request(&line) {
                    // An empty line is a keep-alive no-op, not an error.
                    Err(ProtocolError::Empty) => Parsed::Empty,
                    // Echo a recoverable tag even on parse failures, so
                    // a pipelining client can terminate that tag's
                    // stream instead of waiting forever on it.
                    Err(e) => {
                        Parsed::Error(Frame::err(e.code(), salvage_tag(&line), e.to_string()))
                    }
                    Ok(req) => Parsed::Req(req),
                },
            },
        };
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let needs_auth = self.env.auth_required && !conn.authed;
        let flow = match parsed {
            Parsed::Empty => Flow::Continue,
            // AUTH is the one command an unauthenticated connection may
            // issue; anything else (malformed lines included) on an
            // auth-enabled frontend is answered `ERR auth-required` and
            // the connection is closed — unauthenticated input never
            // reaches the scheduler.
            Parsed::Req(Request::Auth { token, tag }) => {
                Self::dispatch_auth(conn, &self.env, token, tag)
            }
            Parsed::Req(_) | Parsed::Error(_) if needs_auth => {
                self.env.auth_outcome("required");
                conn.shared.push(Frame::err(
                    ErrorCode::AuthRequired,
                    None,
                    "authenticate first: AUTH token=<token>",
                ));
                Flow::Fatal
            }
            Parsed::Req(req) => Self::dispatch(conn, &self.env, idx, req),
            Parsed::Error(frame) => {
                conn.shared.push(frame);
                Flow::Continue
            }
        };
        match flow {
            Flow::Continue => {}
            Flow::Quit { tag } => self.begin_quit(idx, tag),
            Flow::Fatal => self.begin_close(idx),
        }
    }

    /// Handle `AUTH token=…`. On an auth-off service the greeting is
    /// optional and acknowledged as the anonymous tenant; on an
    /// auth-enabled one a valid token binds the connection to its
    /// tenant and an invalid token closes the connection.
    fn dispatch_auth(conn: &mut Conn, env: &Env, token: String, tag: Option<String>) -> Flow {
        if !env.auth_required {
            let tenant = conn.tenant.id().to_string();
            conn.shared.push(Frame::header(ReplyHeader::Auth { tag, tenant }));
            return Flow::Continue;
        }
        if conn.authed {
            conn.shared.push(Frame::err(
                ErrorCode::BadRequest,
                tag,
                "connection is already authenticated",
            ));
            return Flow::Continue;
        }
        match env.handle.tenants().authenticate(&token) {
            Some(tenant) => {
                let id = tenant.id().to_string();
                env.auth_outcome("ok");
                env.logger.info(
                    "serve.frontend",
                    "connection authenticated",
                    &[("tenant", id.clone())],
                );
                conn.tenant = tenant;
                conn.authed = true;
                conn.shared.push(Frame::header(ReplyHeader::Auth { tag, tenant: id }));
                Flow::Continue
            }
            None => {
                env.auth_outcome("failed");
                env.logger.warn("serve.frontend", "auth failed: invalid token", &[]);
                conn.shared.push(Frame::err(ErrorCode::AuthFailed, tag, "invalid token"));
                Flow::Fatal
            }
        }
    }

    /// Dispatch one parsed request (the reactor port of the threaded
    /// `ConnDriver::dispatch`).
    fn dispatch(conn: &mut Conn, env: &Env, idx: usize, req: Request) -> Flow {
        match req {
            // Normally intercepted before the auth gate; kept as a
            // delegation to the same single handler so dispatch stays
            // total over Request.
            Request::Auth { token, tag } => Self::dispatch_auth(conn, env, token, tag),
            Request::Gen(spec) => Self::dispatch_gen(conn, env, idx, spec),
            Request::Sub(spec) => Self::dispatch_sub(conn, env, idx, spec),
            Request::Cancel { tag } => {
                let found = match conn.pending.get(&SlotKey::Tag(tag.clone())) {
                    Some(pending) => {
                        pending.token.cancel();
                        true
                    }
                    None => false,
                };
                conn.shared.push(Frame::header(ReplyHeader::Cancel { tag, found }));
                Flow::Continue
            }
            Request::Stats { tag } => {
                let payload = env.handle.stats().render().into_bytes();
                let header = ReplyHeader::Stats { tag, bytes: payload.len() };
                conn.shared.push(Frame { header, payload });
                Flow::Continue
            }
            Request::Metrics { tag } => {
                let payload = env.handle.metrics_text().into_bytes();
                let header = ReplyHeader::Metrics { tag, bytes: payload.len() };
                conn.shared.push(Frame { header, payload });
                Flow::Continue
            }
            Request::Models { tag } => {
                let mut listing = String::new();
                for h in env.handle.registry().handles() {
                    use std::fmt::Write as _;
                    let _ = writeln!(
                        listing,
                        "{} nodes={} attrs={} size={} fingerprint={:016x}",
                        h.name(),
                        h.n_nodes(),
                        h.n_attrs(),
                        h.size_bytes(),
                        h.fingerprint(),
                    );
                }
                let payload = listing.into_bytes();
                let header = ReplyHeader::Models { tag, bytes: payload.len() };
                conn.shared.push(Frame { header, payload });
                Flow::Continue
            }
            Request::Ping { tag } => {
                conn.shared.push(Frame::header(ReplyHeader::Pong { tag }));
                Flow::Continue
            }
            Request::Quit { tag } => Flow::Quit { tag },
        }
    }

    /// Resolve the tenant a GEN/SUB submission runs as: the
    /// connection's authenticated tenant, unless the request carries an
    /// internal-hop `tenant=` assertion *and* this frontend was
    /// configured to trust the hop
    /// ([`FrontendConfig::trust_tenant_assertion`]). On an untrusted
    /// hop the assertion is rejected outright — a client can never
    /// impersonate a tenant by stamping the field itself.
    fn resolve_tenant(
        conn: &Conn,
        env: &Env,
        asserted: Option<String>,
        tag: Option<&str>,
    ) -> Result<TenantId, Box<Frame>> {
        match asserted {
            None => Ok(conn.tenant.id().clone()),
            Some(id) if env.cfg.trust_tenant_assertion => match TenantId::new(&id) {
                Some(tenant) => Ok(tenant),
                // Parsing already enforced the shared alphabet; kept
                // defensive so a grammar drift can't panic the loop.
                None => Err(Box::new(Frame::err(
                    ErrorCode::InvalidRequest,
                    tag.map(str::to_string),
                    format!("invalid tenant id {id:?}"),
                ))),
            },
            Some(_) => Err(Box::new(Frame::err(
                ErrorCode::InvalidRequest,
                tag.map(str::to_string),
                "tenant= is an internal-hop assertion; this frontend does not trust it",
            ))),
        }
    }

    /// Resolve the trace id a GEN/SUB runs under: a propagated
    /// internal-hop `trace=` assertion when this frontend trusts the
    /// hop (the router already minted the id upstream), or a freshly
    /// minted id otherwise — this frontend is then the first tier to
    /// see the request. Like `tenant=`, the assertion is rejected
    /// outright on an untrusted hop so a client can never forge a
    /// trace id into the fleet's span rings.
    fn resolve_trace(
        env: &Env,
        asserted: Option<String>,
        tag: Option<&str>,
    ) -> Result<TraceCtx, Box<Frame>> {
        match asserted {
            None => Ok(TraceCtx { id: mint_trace_id(), propagated: false }),
            Some(id) if env.cfg.trust_tenant_assertion => Ok(TraceCtx { id, propagated: true }),
            Some(_) => Err(Box::new(Frame::err(
                ErrorCode::InvalidRequest,
                tag.map(str::to_string),
                "trace= is an internal-hop assertion; this frontend does not trust it",
            ))),
        }
    }

    /// Claim an in-flight slot. A duplicate tag is the more specific
    /// failure: report it even when the connection is also at its
    /// in-flight cap.
    fn reserve(conn: &mut Conn, env: &Env, tag: Option<&String>) -> Result<SlotKey, Box<Frame>> {
        if let Some(tag) = tag {
            if conn.pending.contains_key(&SlotKey::Tag(tag.clone())) {
                return Err(Box::new(Frame::err(
                    ErrorCode::DuplicateTag,
                    Some(tag.clone()),
                    format!("tag {tag} is already in flight on this connection"),
                )));
            }
        }
        let inflight = conn.pending.len();
        let cap = env.cfg.max_inflight_per_conn;
        if inflight >= cap {
            return Err(Box::new(Frame::err(
                ErrorCode::TooManyInflight,
                tag.cloned(),
                format!("inflight={inflight} cap={cap}"),
            )));
        }
        Ok(match tag {
            Some(tag) => SlotKey::Tag(tag.clone()),
            None => {
                let key = conn.next_untagged;
                conn.next_untagged += 1;
                SlotKey::Untagged(key)
            }
        })
    }

    /// Buffered generation: submit with an `InMemory` sink and park the
    /// slot in the in-flight table; the completion pump answers
    /// `OK GEN [tag=…] …` + payload when the ticket resolves — out of
    /// submission order whenever a later job finishes first.
    fn dispatch_gen(conn: &mut Conn, env: &Env, idx: usize, spec: GenSpec) -> Flow {
        let GenSpec { model, t_len, seed, fmt, priority, tag, tenant, trace } = spec;
        let run_as = match Self::resolve_tenant(conn, env, tenant, tag.as_deref()) {
            Ok(id) => id,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        let trace = match Self::resolve_trace(env, trace, tag.as_deref()) {
            Ok(ctx) => ctx,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        let key = match Self::reserve(conn, env, tag.as_ref()) {
            Ok(key) => key,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        let token = CancelToken::new();
        let req = GenRequest::new(model, t_len, seed, GenSink::InMemory)
            .with_priority(priority)
            .with_cancel(token.clone())
            .with_tenant(run_as)
            .with_notify(env.completion_hook(idx, key.clone()));
        match env.handle.submit(req) {
            Err(e) => {
                // Nothing was parked, so the hook the rejected request
                // fired on its way out finds no pending entry and the
                // pump ignores it.
                conn.shared.push(translated_frame(&e, tag));
            }
            Ok(ticket) => {
                conn.pending.insert(
                    key,
                    Pending { kind: PendingKind::Gen { tag, fmt, trace }, token, ticket },
                );
            }
        }
        Flow::Continue
    }

    /// Streaming generation: acknowledge with `OK SUB tag=…`, submit
    /// with a callback sink that pushes one `EVT` frame per snapshot
    /// into the connection's outbox straight from the worker (cold and
    /// cache-hit paths both go through it), and park the slot; the
    /// completion pump terminates the stream with
    /// `END … status=ok|cancelled` (or `ERR … tag=…`).
    fn dispatch_sub(conn: &mut Conn, env: &Env, idx: usize, spec: GenSpec) -> Flow {
        let GenSpec { model, t_len, seed, fmt, priority, tag, tenant, trace } = spec;
        // The assertions are checked before the ack so a rejected hop
        // never opens a stream.
        let run_as = match Self::resolve_tenant(conn, env, tenant, tag.as_deref()) {
            Ok(id) => id,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        let trace = match Self::resolve_trace(env, trace, tag.as_deref()) {
            Ok(ctx) => ctx,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        // Server-assigned tags skip any `~<n>` a client chose to put in
        // flight itself (the grammar permits `~`), so an untagged SUB is
        // never spuriously rejected as a duplicate.
        let tag = tag.unwrap_or_else(|| loop {
            conn.auto_tag += 1;
            let candidate = format!("~{}", conn.auto_tag);
            if !conn.pending.contains_key(&SlotKey::Tag(candidate.clone())) {
                break candidate;
            }
        });
        let key = match Self::reserve(conn, env, Some(&tag)) {
            Ok(key) => key,
            Err(frame) => {
                conn.shared.push(*frame);
                return Flow::Continue;
            }
        };
        let token = CancelToken::new();
        // The ack must precede the first EVT frame, and EVT frames are
        // pushed by a worker the moment the job starts — so ack before
        // submitting. If admission then fails (including unknown model
        // names — submit resolves the registry), the stream terminates
        // with `ERR <code> tag=…` like any other failed subscription.
        let ack = ReplyHeader::Sub { tag: tag.clone(), model: model.clone(), t_len, seed, fmt };
        conn.shared.push(Frame::header(ack));
        // EVT frames actually handed to the connection: the END frame
        // reports this count (not the core's generated count), so the
        // stream stays self-consistent even when cancellation races a
        // snapshot that was generated but never framed.
        let sent = Arc::new(AtomicUsize::new(0));
        let sink = {
            let shared = Arc::clone(&conn.shared);
            let tag = tag.clone();
            let token = token.clone();
            let sent = Arc::clone(&sent);
            let logger = env.logger.clone();
            let evt_frames = env.evt_frames.clone();
            let evt_bytes = env.evt_bytes.clone();
            let sub_stalls = env.sub_stalls.clone();
            let dirty_tx = env.dirty_tx.clone();
            let waker = env.waker.clone();
            // Built lazily from the first snapshot's own shape, so the
            // stream header can never disagree with the stream (a
            // pre-submit registry lookup could race a concurrent
            // re-register of the model under a different shape).
            let mut chunker: Option<WireChunker> = None;
            GenSink::Callback(Box::new(move |snap, s| {
                let chunker = match &mut chunker {
                    Some(chunker) => chunker,
                    None => match WireChunker::new(fmt, s.n_nodes(), s.n_attrs(), t_len) {
                        Ok(built) => chunker.insert(built),
                        Err(_) => {
                            token.cancel();
                            return;
                        }
                    },
                };
                match chunker.encode(s) {
                    Ok(payload) => {
                        let bytes = payload.len();
                        let header = ReplyHeader::Evt { tag: tag.clone(), snap, of: t_len, bytes };
                        // This push runs inside a core worker: it parks
                        // while the outbox is full but aborts the moment
                        // the token trips or the connection dies, so a
                        // stalled subscriber can never pin the worker
                        // past a CANCEL.
                        match shared.push_streaming(&token, Frame { header, payload }) {
                            Ok(()) => {
                                sent.fetch_add(1, Ordering::SeqCst);
                                evt_frames.inc();
                                evt_bytes.add(bytes as u64);
                                // Tell the reactor the outbox has work;
                                // the dirty flag coalesces a burst of
                                // frames into one signal.
                                if !shared.dirty.swap(true, Ordering::SeqCst) {
                                    let _ = dirty_tx.send(idx);
                                    waker.wake();
                                }
                            }
                            Err(fail) => {
                                if matches!(fail, SendFail::Stalled) {
                                    sub_stalls.inc();
                                    logger.warn(
                                        "serve.frontend",
                                        "SUB stall: subscriber stopped reading, stream abandoned",
                                        &[
                                            ("tag", tag.clone()),
                                            ("snap", snap.to_string()),
                                            ("of", t_len.to_string()),
                                        ],
                                    );
                                }
                                token.cancel();
                            }
                        }
                    }
                    // The chunker writes into memory; a failure here is
                    // a shape bug, not transport — abandon the stream.
                    Err(_) => token.cancel(),
                }
            }))
        };
        let req = GenRequest::new(model, t_len, seed, sink)
            .with_priority(priority)
            .with_cancel(token.clone())
            .with_tenant(run_as)
            .with_notify(env.completion_hook(idx, key.clone()));
        match env.handle.submit(req) {
            Err(e) => {
                conn.shared.push(translated_frame(&e, Some(tag)));
            }
            Ok(ticket) => {
                conn.pending.insert(
                    key,
                    Pending { kind: PendingKind::Sub { tag, sent, trace }, token, ticket },
                );
            }
        }
        Flow::Continue
    }

    /// One pump message: turn the finished job's ticket into its
    /// completion frame. Unknown `(conn, key)` pairs are ignored — they
    /// are the hooks of requests `submit` rejected, or completions for
    /// a connection already fully gone.
    fn handle_completion(&mut self, idx: usize, key: SlotKey) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        let Some(pending) = conn.pending.remove(&key) else { return };
        // The slot is released *before* the frame is pushed (same
        // ordering as the threaded frontend): a well-behaved client can
        // only reuse the tag after *reading* the reply, and the table
        // must not still report duplicate-tag by then.
        let Pending { kind, token, mut ticket } = pending;
        let frame = match kind {
            PendingKind::Gen { tag, fmt, trace } => {
                let id = ticket.id();
                match ticket.try_wait() {
                    Err(e) => Some(translated_frame(&e, tag)),
                    // The hook fires strictly after the result lands on
                    // the ticket channel, so an empty poll can only mean
                    // this is a *stale* pump message whose key was
                    // re-used by a still-running job — put it back and
                    // wait for that job's own completion.
                    Ok(None) => {
                        conn.pending.insert(
                            key,
                            Pending { kind: PendingKind::Gen { tag, fmt, trace }, token, ticket },
                        );
                        None
                    }
                    Ok(Some(result)) => Some(if result.cancelled {
                        self.env.record_span(&trace, &result, "cancelled");
                        Frame::err(
                            ErrorCode::Cancelled,
                            tag,
                            "job cancelled before its reply was produced",
                        )
                    } else if let Some(error) = &result.error {
                        self.env.record_span(&trace, &result, "error");
                        Frame::err(ErrorCode::Internal, tag, error.clone())
                    } else {
                        let graph =
                            result.graph.as_deref().expect("InMemory success carries the graph");
                        match encode_graph(graph, fmt) {
                            Err(e) => {
                                self.env.record_span(&trace, &result, "error");
                                Frame::err(ErrorCode::Internal, tag, e.to_string())
                            }
                            Ok(payload) => {
                                self.env.record_span(&trace, &result, "ok");
                                Frame {
                                    header: ReplyHeader::Gen {
                                        tag,
                                        id: id.0,
                                        model: result.model.clone(),
                                        t_len: result.t_len,
                                        seed: result.seed,
                                        fmt,
                                        snapshots: result.snapshots,
                                        edges: result.edges,
                                        cache_hit: result.cache_hit,
                                        bytes: payload.len(),
                                        trace: Some(trace.id),
                                    },
                                    payload,
                                }
                            }
                        }
                    }),
                }
            }
            PendingKind::Sub { tag, sent, trace } => match ticket.try_wait() {
                Err(e) => Some(translated_frame(&e, Some(tag))),
                Ok(None) => {
                    conn.pending.insert(
                        key,
                        Pending { kind: PendingKind::Sub { tag, sent, trace }, token, ticket },
                    );
                    None
                }
                Ok(Some(result)) => Some(if let Some(error) = &result.error {
                    self.env.record_span(&trace, &result, "error");
                    Frame::err(ErrorCode::Internal, Some(tag), error.clone())
                } else {
                    let delivered = sent.load(Ordering::SeqCst);
                    // A stream is only `ok` when every frame was
                    // delivered; a cancellation (client CANCEL, or a
                    // push aborted by a dead/stalled connection) reports
                    // exactly the frames that made it into the outbox.
                    let status = if result.cancelled || delivered < result.t_len {
                        EndStatus::Cancelled
                    } else {
                        EndStatus::Ok
                    };
                    let outcome = if matches!(status, EndStatus::Ok) { "ok" } else { "cancelled" };
                    self.env.record_span(&trace, &result, outcome);
                    Frame::header(ReplyHeader::End {
                        tag,
                        snapshots: delivered,
                        edges: result.edges,
                        status,
                        qms: result.stages.queue_wait_ms(),
                        genms: result.stages.generation_ms(),
                        trace: Some(trace.id),
                    })
                }),
            },
        };
        let Some(frame) = frame else { return };
        conn.shared.push(frame);
        self.after_pending_change(idx);
        self.flush(idx);
    }

    /// Advance teardown phases that wait on the in-flight table.
    fn after_pending_change(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if !conn.pending.is_empty() {
            return;
        }
        match &conn.phase {
            Phase::Draining { bye_tag, .. } => {
                conn.shared.push(Frame::header(ReplyHeader::Bye { tag: bye_tag.clone() }));
                conn.phase = Phase::FlushClose;
            }
            Phase::Closing { .. } => conn.phase = Phase::FlushClose,
            Phase::Zombie => self.release_slot(idx),
            Phase::Active | Phase::FlushClose | Phase::Linger { .. } => {}
        }
    }

    /// `QUIT`: stop reading, give in-flight jobs a bounded window to
    /// drain so every tagged reply lands before `OK BYE` (cancel yours
    /// first if you are in a hurry).
    fn begin_quit(&mut self, idx: usize, tag: Option<String>) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        conn.phase = Phase::Draining { bye_tag: tag, deadline: Instant::now() + QUIT_DRAIN };
        self.after_pending_change(idx);
        self.update_interest(idx, false);
        self.flush(idx);
    }

    /// EOF / fatal rejection / transport failure: trip every in-flight
    /// token immediately (no worker keeps generating for a peer that is
    /// gone), but keep the write side up so pending completion frames
    /// still deliver — bounded by [`TEARDOWN_DRAIN`].
    fn begin_close(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        conn.cancel_all();
        conn.phase = Phase::Closing { deadline: Instant::now() + TEARDOWN_DRAIN };
        self.after_pending_change(idx);
        self.update_interest(idx, false);
        self.flush(idx);
    }

    /// Serialize-and-write the connection's output until the socket
    /// would block or there is nothing left; moves a finished
    /// [`Phase::FlushClose`] connection into its lingering close.
    fn flush(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if !conn.socket_open {
            return;
        }
        let mut broken = false;
        loop {
            if conn.wpos >= conn.wbuf.len() {
                let Some(frame) = conn.shared.pop() else { break };
                conn.wbuf.clear();
                conn.wpos = 0;
                conn.wbuf.extend_from_slice(frame.header.to_line().as_bytes());
                conn.wbuf.push(b'\n');
                conn.wbuf.extend_from_slice(&frame.payload);
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken {
            self.sever(idx);
            return;
        }
        let flushed = conn.wpos >= conn.wbuf.len() && conn.shared.len() == 0;
        if flushed && matches!(conn.phase, Phase::FlushClose) {
            // Graceful finish: everything written, half-close (FIN) and
            // linger — see [`Phase::Linger`] for why not a hard close.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.phase = Phase::Linger { deadline: Instant::now() + TEARDOWN_DRAIN };
            self.update_interest(idx, false);
            // Any input that raced the close is pending discard; the
            // peer may even have closed already.
            self.linger_readable(idx);
            return;
        }
        self.update_interest(idx, false);
    }

    /// Re-register the connection's poller interest when it changed.
    fn update_interest(&mut self, idx: usize, fresh: bool) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if !conn.socket_open {
            return;
        }
        let want = conn.desired_interest();
        if fresh {
            conn.interest = want;
            let _ = self.poller.register(raw_fd(&conn.stream), idx + 1, want);
        } else if want != conn.interest {
            conn.interest = want;
            let _ = self.poller.reregister(raw_fd(&conn.stream), idx + 1, want);
        }
    }

    /// Hard-close the socket. The slot itself is only released once no
    /// in-flight job can still complete into it; until then it lingers
    /// as a [`Phase::Zombie`].
    fn sever(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else { return };
        if conn.socket_open {
            let _ = self.poller.deregister(raw_fd(&conn.stream), idx + 1);
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.socket_open = false;
        }
        conn.shared.mark_dead();
        conn.cancel_all();
        if conn.pending.is_empty() {
            self.release_slot(idx);
        } else {
            conn.phase = Phase::Zombie;
        }
    }

    /// Free a slot for reuse (and the connection count, if it held one).
    fn release_slot(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        if conn.accepted {
            self.set_open(self.open.load(Ordering::SeqCst).saturating_sub(1));
        }
        self.free.push(idx);
    }

    /// Enforce teardown deadlines and the accept back-off.
    fn check_deadlines(&mut self) {
        let now = Instant::now();
        if self.accept_backoff.is_some_and(|at| now >= at) {
            self.accept_backoff = None;
            self.accept_ready();
        }
        let expired: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, conn)| {
                conn.as_ref().and_then(Conn::deadline).filter(|&at| now >= at).map(|_| idx)
            })
            .collect();
        for idx in expired {
            // Past the drain deadline the remaining tokens are tripped
            // and the socket severed, which also unblocks any parked
            // worker (no BYE — the client stopped reading long ago).
            self.sever(idx);
        }
    }

    /// Reactor exit: sever everything. Marking every outbox dead and
    /// dropping the pending tickets unblocks all workers (their pushes
    /// fail, their reply sends land on dropped channels); the service
    /// core itself stays up for other handles.
    fn teardown_all(&mut self) {
        for idx in 0..self.conns.len() {
            if self.conns[idx].is_some() {
                self.sever(idx);
                // A zombie's pending tickets die with the slot: the pump
                // is gone, nothing can route to it anymore.
                if self.conns[idx].is_some() {
                    self.release_slot(idx);
                }
            }
        }
        self.set_open(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_translates_to_structured_backpressure() {
        let (code, message) = translate(&ServeError::QueueFull { depth: 7, cap: 8 });
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(message, "depth=7 cap=8");
    }

    #[test]
    fn line_scanner_splits_lines_and_reports_overflow() {
        let mut scanner = LineScanner::default();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"PING\n");
        input.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"STATS"); // unterminated final line
        let mut lines = Vec::new();
        // Awkward chunk sizes exercise the cross-chunk carry state.
        for chunk in input.chunks(16) {
            scanner.feed(chunk, |l| lines.push(l));
        }
        if let Some(last) = scanner.finish() {
            lines.push(last);
        }
        assert_eq!(lines.len(), 3);
        match &lines[0] {
            ScanLine::Line(l) => assert_eq!(l, b"PING"),
            ScanLine::TooLong { .. } => panic!("expected a line"),
        }
        match &lines[1] {
            ScanLine::TooLong { len } => assert_eq!(*len, MAX_LINE_BYTES + 10),
            ScanLine::Line(_) => panic!("expected overflow"),
        }
        match &lines[2] {
            ScanLine::Line(l) => assert_eq!(l, b"STATS"),
            ScanLine::TooLong { .. } => panic!("expected the unterminated tail"),
        }
        assert!(scanner.finish().is_none());
    }

    #[test]
    fn line_scanner_line_exactly_at_cap_is_accepted() {
        let mut scanner = LineScanner::default();
        let mut input = vec![b'a'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut lines = Vec::new();
        scanner.feed(&input, |l| lines.push(l));
        match lines.as_slice() {
            [ScanLine::Line(l)] => assert_eq!(l.len(), MAX_LINE_BYTES),
            _ => panic!("cap is inclusive"),
        }
    }

    #[test]
    fn push_streaming_aborts_on_a_full_outbox_when_cancelled() {
        // Capacity-full outbox that nobody drains: a plain push would
        // park forever. push_streaming must fail once the token trips,
        // freeing the (worker) thread.
        let shared = ConnShared::new();
        for _ in 0..FRAME_QUEUE {
            assert!(shared.push(Frame::header(ReplyHeader::Pong { tag: None })));
        }
        let token = CancelToken::new();
        let cancel_from = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel_from.cancel();
        });
        let delivered =
            shared.push_streaming(&token, Frame::header(ReplyHeader::Pong { tag: None }));
        assert!(
            matches!(delivered, Err(SendFail::Cancelled)),
            "push must abort once the token trips"
        );
        canceller.join().unwrap();
        // Dead connection: immediate failure, no parked workers left
        // behind, and reactor-side pushes fail too.
        shared.mark_dead();
        assert!(matches!(
            shared.push_streaming(
                &CancelToken::new(),
                Frame::header(ReplyHeader::Pong { tag: None })
            ),
            Err(SendFail::Disconnected)
        ));
        assert!(!shared.push(Frame::header(ReplyHeader::Pong { tag: None })));
    }

    #[test]
    fn outbox_pop_makes_space_for_parked_pushes() {
        let shared = Arc::new(ConnShared::new());
        for _ in 0..FRAME_QUEUE {
            assert!(shared.push(Frame::header(ReplyHeader::Pong { tag: None })));
        }
        let token = CancelToken::new();
        let pusher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                shared.push_streaming(&token, Frame::header(ReplyHeader::Pong { tag: None }))
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(shared.pop().is_some(), "outbox holds frames");
        let pushed = pusher.join().unwrap();
        assert!(matches!(pushed, Ok(())), "push must land once space opens");
        assert_eq!(shared.len(), FRAME_QUEUE);
    }
}

//! Named, thread-safe registry of trained model artifacts.
//!
//! The registry stores the *serialized* form of each model (the
//! `vrdag::persist` binary format) behind an `Arc`, because the in-memory
//! `Vrdag` is intentionally single-threaded (`Rc`-based autograd
//! tensors). A [`ModelHandle`] is therefore `Send + Sync` and cheap to
//! clone; workers call [`ModelHandle::instantiate`] once and reuse the
//! instance for every subsequent request against the same artifact
//! (see `scheduler::Worker`'s thread-local cache).

use crate::{ServeError, SnapshotStream};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};
use vrdag::Vrdag;

/// A cheap shared handle to a registered model artifact.
///
/// Cloning copies two `Arc`s. The handle pins the artifact bytes alive
/// even if the model is later [`remove`](ModelRegistry::remove)d or
/// re-registered, so in-flight jobs are never invalidated.
#[derive(Clone)]
pub struct ModelHandle {
    name: Arc<str>,
    bytes: Arc<Vec<u8>>,
    fingerprint: u64,
    n_nodes: usize,
    n_attrs: usize,
}

impl ModelHandle {
    /// The name the artifact was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the serialized artifact in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Stable content fingerprint of the artifact
    /// (`vrdag::artifact_fingerprint` over the serialized bytes, computed
    /// once at registration). Equal fingerprints mean byte-identical
    /// artifacts — the identity the snapshot cache keys on, so identical
    /// bytes registered under different names share cache entries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Node universe size of the trained model.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Attribute dimensionality of the trained model.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The raw serialized artifact.
    pub fn bytes(&self) -> &Arc<Vec<u8>> {
        &self.bytes
    }

    /// Two handles are the same artifact iff they share bytes. Used by
    /// worker-side instance caches to detect re-registration.
    pub fn same_artifact(&self, other: &ModelHandle) -> bool {
        Arc::ptr_eq(&self.bytes, &other.bytes)
    }

    /// Deserialize a private, generation-ready [`Vrdag`] instance.
    pub fn instantiate(&self) -> Result<Vrdag, ServeError> {
        Ok(Vrdag::from_bytes(&self.bytes)?)
    }

    /// Start a seed-addressed streaming generation run against a fresh
    /// instance of this artifact.
    pub fn stream(&self, t_len: usize, seed: u64) -> Result<SnapshotStream, ServeError> {
        SnapshotStream::new(self.instantiate()?, t_len, seed)
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHandle")
            .field("name", &self.name)
            .field("fingerprint", &self.fingerprint)
            .field("size_bytes", &self.bytes.len())
            .field("n_nodes", &self.n_nodes)
            .field("n_attrs", &self.n_attrs)
            .finish()
    }
}

/// Thread-safe map from model name to [`ModelHandle`].
///
/// Clone the registry freely: clones share the underlying map (the
/// registry itself is an `Arc` around a `RwLock`ed table).
#[derive(Clone, Default)]
pub struct ModelRegistry {
    inner: Arc<RwLock<HashMap<String, ModelHandle>>>,
}

impl ModelRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn insert_validated(&self, name: &str, bytes: Vec<u8>) -> Result<ModelHandle, ServeError> {
        // Validate eagerly: a corrupt artifact should fail at registration,
        // not inside a worker thread mid-batch. The probe instance also
        // supplies the shape metadata and is dropped immediately.
        let probe = Vrdag::from_bytes(&bytes)?;
        let fingerprint = vrdag::artifact_fingerprint(&bytes);
        let handle = ModelHandle {
            name: Arc::from(name),
            bytes: Arc::new(bytes),
            fingerprint,
            n_nodes: probe.n_nodes().unwrap_or(0),
            n_attrs: probe.n_attrs().unwrap_or(0),
        };
        self.inner
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    /// Register a fitted model under `name` (serializes it once).
    /// Re-registering a name atomically replaces the artifact; existing
    /// handles keep the old bytes alive.
    pub fn register(&self, name: &str, model: &Vrdag) -> Result<ModelHandle, ServeError> {
        self.insert_validated(name, model.to_bytes()?)
    }

    /// Register an already-serialized artifact (validated eagerly).
    pub fn register_bytes(&self, name: &str, bytes: Vec<u8>) -> Result<ModelHandle, ServeError> {
        self.insert_validated(name, bytes)
    }

    /// Load a `.vrdg` file saved by [`Vrdag::save`] and register it.
    pub fn load_file(&self, name: &str, path: impl AsRef<Path>) -> Result<ModelHandle, ServeError> {
        let bytes = std::fs::read(path)?;
        self.insert_validated(name, bytes)
    }

    /// Look up a handle by name.
    pub fn get(&self, name: &str) -> Option<ModelHandle> {
        self.inner.read().expect("registry lock poisoned").get(name).cloned()
    }

    /// Like [`get`](Self::get) but with a typed error for schedulers.
    pub fn resolve(&self, name: &str) -> Result<ModelHandle, ServeError> {
        self.get(name).ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Drop a model from the registry. In-flight handles stay valid.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.write().expect("registry lock poisoned").remove(name).is_some()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.inner.read().expect("registry lock poisoned").keys().cloned().collect();
        names.sort();
        names
    }

    /// All registered handles, sorted by name — one consistent snapshot
    /// of the table, so wire-protocol listings (`MODELS`) cannot race a
    /// concurrent `register`/`remove` between a name lookup and its
    /// handle fetch.
    pub fn handles(&self) -> Vec<ModelHandle> {
        let mut handles: Vec<ModelHandle> =
            self.inner.read().expect("registry lock poisoned").values().cloned().collect();
        handles.sort_by(|a, b| a.name().cmp(b.name()));
        handles
    }

    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vrdag::VrdagConfig;

    fn fitted() -> Vrdag {
        let g = vrdag_datasets::generate(&vrdag_datasets::tiny(), 3);
        let mut cfg = VrdagConfig::test_small();
        cfg.epochs = 2;
        let mut m = Vrdag::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        m.fit(&g, &mut rng).unwrap();
        m
    }

    #[test]
    fn register_get_instantiate_round_trip() {
        let registry = ModelRegistry::new();
        let model = fitted();
        let handle = registry.register("tiny", &model).unwrap();
        assert_eq!(handle.name(), "tiny");
        assert!(handle.size_bytes() > 0);
        assert_eq!(handle.n_nodes(), model.n_nodes().unwrap());
        assert_eq!(registry.names(), vec!["tiny".to_string()]);

        let inst = registry.get("tiny").unwrap().instantiate().unwrap();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(model.generate(2, &mut r1).unwrap(), inst.generate(2, &mut r2).unwrap());
    }

    #[test]
    fn unknown_and_removed_models_resolve_to_errors() {
        let registry = ModelRegistry::new();
        assert!(matches!(registry.resolve("nope"), Err(ServeError::UnknownModel(_))));
        let model = fitted();
        registry.register("m", &model).unwrap();
        assert!(registry.remove("m"));
        assert!(!registry.remove("m"));
        assert!(registry.get("m").is_none());
    }

    #[test]
    fn reregistration_replaces_but_old_handles_survive() {
        let registry = ModelRegistry::new();
        let model = fitted();
        let old = registry.register("m", &model).unwrap();
        let new = registry.register("m", &model).unwrap();
        assert!(!old.same_artifact(&new));
        // The old handle still instantiates fine.
        old.instantiate().unwrap();
        // Serialization is deterministic, so re-registering the same model
        // keeps the content fingerprint even though the Arc differs.
        assert_eq!(old.fingerprint(), new.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_models_but_not_names() {
        let registry = ModelRegistry::new();
        let model = fitted();
        let bytes = model.to_bytes().unwrap();
        let a = registry.register_bytes("a", bytes.clone()).unwrap();
        let b = registry.register_bytes("b", bytes).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same bytes, same identity");
        assert_eq!(a.fingerprint(), model.fingerprint().unwrap());
    }

    #[test]
    fn corrupt_bytes_rejected_at_registration() {
        let registry = ModelRegistry::new();
        assert!(registry.register_bytes("bad", b"not a model".to_vec()).is_err());
        assert!(registry.is_empty());
    }
}
